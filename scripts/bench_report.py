#!/usr/bin/env python
"""Pipeline bench report: throughput read from run manifests.

Each measurement runs inside an observability session
(:func:`repro.obs.session`) and writes a run manifest; the report then
reads walks/sec, per-epoch timings, and the host description *from the
manifests* instead of re-measuring with its own stopwatch — the bench
and the telemetry can no longer disagree. The summary is written as a
schema-versioned JSON (default ``BENCH_PR7.json``); CI runs this on a
tiny corpus as a smoke step and uploads the JSON plus the manifests,
and ``scripts/perf_guard.py`` compares a fresh run against the
committed baseline.

The host block always carries ``cpu_affinity`` (container CPU pinning
is the usual reason parallel numbers look wrong), and every row records
``effective_workers`` — the count the run actually used after
:func:`repro.parallel.pool.resolve_workers` — next to the requested
one. Training rows also record the batch kernel the config resolved to
(``reference`` float64 vs the PR 7 fused float32 kernel).

Since PR 6 the report also records ``lifecycle_overhead``: the measured
cost of the per-batch cooperative cancel poll (``scope.check()`` against
a fully-armed token + deadline) relative to a serial training epoch —
the run-lifecycle counterpart of the disabled-telemetry guard, budgeted
at < 1% (``benchmarks/test_perf_lifecycle_overhead.py`` enforces it).

Since PR 10 it also records ``shard_walks``: out-of-core walk
throughput over a memory-mapped :class:`~repro.graph.store.GraphStore`
at each shard × worker combination, with a hard bitwise-identity check
against the single-shard corpus (shard layout is runtime policy, never
model identity) and the frontier-exchange shape (rounds, boundary
crossings) alongside the timings.

Since PR 9 it also records ``guard_overhead``: one watchdog
``poll_once()`` tick (a /proc RSS read plus two ``statvfs`` calls)
relative to its sample interval, plus the one-shot preflight footprint
estimate charged to a single epoch — the resource-guard counterpart,
same < 1% budget (``benchmarks/test_perf_guard_overhead.py``).

Throughput depends on the host — single-core containers used to show
parallel *slowdown* (documented in docs/PERFORMANCE.md) — so the report
records the manifest's host block alongside the numbers and never fails
on a regression, only on a crash or an invalid manifest (regression
policy lives in ``scripts/perf_guard.py``).

Run:  PYTHONPATH=src python scripts/bench_report.py [--workers 1 2 4]
          [--n 1200] [--epochs 10] [--output BENCH_PR7.json]
          [--manifest-dir bench_manifests]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import ExperimentRecord, format_table
from repro.core.trainer import TrainConfig, resolve_kernel, train_embeddings
from repro.datasets.synthetic import community_benchmark
from repro.obs.manifest import SCHEMA_VERSION, host_info, load_manifest
from repro.obs.recorder import ObsConfig, session
from repro.obs.resources import ResourceSnapshot, resource_delta
from repro.parallel.pool import resolve_workers
from repro.walks.engine import RandomWalkConfig, generate_walks

# Still v2: PR 10's `shard_walks` section is purely additive, and
# scripts/perf_guard.py refuses to compare reports across schema
# versions — a bump would orphan the committed BENCH_PR7.json baseline.
BENCH_SCHEMA_VERSION = 2


def _observed(manifest_path: Path, run_config: dict):
    """A quiet observability session writing ``manifest_path``."""
    return session(
        ObsConfig(log_level="error", metrics_out=str(manifest_path)),
        run_config=run_config,
    )


def measure(
    worker_counts: list[int],
    *,
    n: int,
    groups: int,
    walks_per_vertex: int,
    walk_length: int,
    dim: int,
    epochs: int,
    seed: int,
    manifest_dir: Path,
    warmup: int = 1,
    repeats: int = 3,
    bench_name: str = "pr7_parallel_payoff",
) -> dict:
    graph = community_benchmark(
        0.5, n=n, groups=groups, inter_edges=n // 5, seed=seed
    )
    walk_cfg = RandomWalkConfig(
        walks_per_vertex=walks_per_vertex, walk_length=walk_length, seed=seed
    )

    walk_rows = []
    for workers in worker_counts:
        # Unmeasured warm-up: the persistent pool forks its workers on
        # the first map of a run; the bench reports steady-state
        # throughput, which is what every map after the first one sees.
        for _ in range(warmup):
            generate_walks(graph, walk_cfg, workers=workers)
        mpath = manifest_dir / f"walks_w{workers}.manifest.json"
        with _observed(mpath, {"stage": "walks", "workers": workers, "n": n}):
            for _ in range(max(repeats, 1)):
                walks = generate_walks(graph, walk_cfg, workers=workers)
        manifest = load_manifest(mpath)  # validates REQUIRED_KEYS
        metrics = manifest["metrics"]
        hist = metrics["histograms"]["walks.generate_seconds"]
        # Best-of-N: a walk wave is milliseconds-long, so on a shared
        # (and often single-CPU) host the min is the honest signal.
        best = hist["min"]
        walk_rows.append(
            {
                "workers": workers,
                "effective_workers": resolve_workers(workers),
                "seconds": round(best, 4),
                "walks_per_sec": round(walks.num_walks / max(best, 1e-9), 1),
                "repeats": int(hist["count"]),
                "manifest": mpath.name,
            }
        )

    shard_rows = _shard_walks(
        graph, walk_cfg, worker_counts, manifest_dir,
        seed=seed, warmup=warmup, repeats=repeats,
    )

    corpus = generate_walks(graph, walk_cfg)
    train_rows = []
    serial_seconds = None
    # host_info() (not just the manifest copy) so cpu_affinity is always
    # present even if a future manifest schema trims its host block.
    host = host_info()
    for workers in worker_counts:
        cfg = TrainConfig(
            dim=dim, epochs=epochs, seed=seed, early_stop=False, workers=workers
        )
        mpath = manifest_dir / f"train_w{workers}.manifest.json"
        before = ResourceSnapshot.capture()
        with _observed(mpath, {"stage": "train", "workers": workers, "n": n}):
            result = train_embeddings(corpus, cfg)
        resources = resource_delta(before, ResourceSnapshot.capture())
        if not np.all(np.isfinite(result.vectors)):
            raise RuntimeError(f"non-finite vectors at workers={workers}")
        manifest = load_manifest(mpath)
        host = {**host, **manifest["host"]}
        metrics = manifest["metrics"]
        epoch_hist = metrics["histograms"]["train.epoch_seconds"]
        epochs_run = int(metrics["counters"]["train.epochs_run"])
        seconds = epoch_hist["sum"]
        if serial_seconds is None:
            serial_seconds = seconds
        train_rows.append(
            {
                "workers": workers,
                "effective_workers": resolve_workers(workers),
                "kernel": resolve_kernel(cfg),
                "seconds": round(seconds, 4),
                "epochs_per_sec": round(epochs_run / max(seconds, 1e-9), 3),
                "words_per_sec": round(
                    metrics["gauges"]["train.words_per_sec"], 1
                ),
                "speedup_vs_serial": round(
                    serial_seconds / max(seconds, 1e-9), 3
                ),
                "final_loss": round(result.loss_history[-1], 6),
                # Parent-process resource ledger for the whole measured
                # run (repro.obs.resources): effective parallelism and
                # the memory high-water mark ride along with throughput.
                "cpu_utilization": resources["cpu_utilization"],
                "peak_rss_kb": resources["peak_rss_kb"],
                "manifest": mpath.name,
            }
        )

    serial_cfg = TrainConfig(
        dim=dim, epochs=epochs, seed=seed, early_stop=False, workers=1
    )
    serial_epoch_seconds = serial_seconds / max(epochs, 1)
    lifecycle = _lifecycle_overhead(
        corpus, serial_cfg, serial_epoch_seconds=serial_epoch_seconds
    )
    guard = _guard_overhead(
        graph, walk_cfg, serial_cfg, manifest_dir,
        serial_epoch_seconds=serial_epoch_seconds,
    )

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "manifest_schema_version": SCHEMA_VERSION,
        "bench": bench_name,
        "host": host,
        "corpus": {
            "n": n,
            "groups": groups,
            "walks": corpus.num_walks,
            "tokens": corpus.num_tokens,
            "walk_length": walk_length,
            "warmup_runs": warmup,
        },
        "train_config": {"dim": dim, "epochs": epochs, "seed": seed},
        "walk_generation": walk_rows,
        "shard_walks": shard_rows,
        "training": train_rows,
        "lifecycle_overhead": lifecycle,
        "guard_overhead": guard,
    }


def _shard_walks(
    graph, walk_cfg, worker_counts: list[int], manifest_dir: Path, *,
    seed: int, warmup: int, repeats: int, shard_counts: tuple[int, ...] = (1, 4),
) -> list[dict]:
    """Out-of-core walk throughput (PR 10): mmap'd store, per-shard tasks.

    Measures :func:`repro.walks.sharded.generate_walks_sharded` over the
    same graph and walk config as the in-memory rows, at each shard ×
    worker combination, and asserts every corpus is bitwise-identical to
    the single-shard one — a bench run that silently broke shard
    invariance would poison every number after it. Each row carries the
    exchange-loop shape (``rounds``, boundary crossings ``exchanged``)
    so throughput regressions can be told apart from partition-quality
    regressions.
    """
    from repro.graph.store import GraphStore
    from repro.pipeline import ExecutionContext
    from repro.walks.sharded import generate_walks_sharded

    rows = []
    reference = None
    with tempfile.TemporaryDirectory(prefix="bench_stores_") as tmp:
        for shards in shard_counts:
            store = GraphStore.build(
                graph, Path(tmp) / f"s{shards}", shards=shards, seed=seed
            )
            for workers in worker_counts:
                ctx = ExecutionContext(workers=workers)
                for _ in range(warmup):
                    generate_walks_sharded(store, walk_cfg, context=ctx)
                mpath = (
                    manifest_dir / f"shard_s{shards}_w{workers}.manifest.json"
                )
                run_config = {
                    "stage": "shard_walks", "shards": shards, "workers": workers
                }
                with _observed(mpath, run_config):
                    for _ in range(max(repeats, 1)):
                        walks = generate_walks_sharded(
                            store, walk_cfg, context=ctx
                        )
                if reference is None:
                    reference = walks.walks
                identical = bool(np.array_equal(reference, walks.walks))
                if not identical:
                    raise RuntimeError(
                        f"shard invariance broken at shards={shards} "
                        f"workers={workers}"
                    )
                manifest = load_manifest(mpath)
                metrics = manifest["metrics"]
                hist = metrics["histograms"]["walks.generate_seconds"]
                best = hist["min"]
                reps = max(repeats, 1)
                rows.append(
                    {
                        "shards": shards,
                        "workers": workers,
                        "effective_workers": resolve_workers(workers),
                        "seconds": round(best, 4),
                        "walks_per_sec": round(
                            walks.num_walks / max(best, 1e-9), 1
                        ),
                        "rounds": int(
                            metrics["counters"]["shard.rounds"] // reps
                        ),
                        "exchanged": int(
                            metrics["counters"].get("shard.exchanged", 0)
                            // reps
                        ),
                        "identical_to_single_shard": identical,
                        "repeats": int(hist["count"]),
                        "manifest": mpath.name,
                    }
                )
    return rows


def _lifecycle_overhead(
    corpus, config: TrainConfig, *, serial_epoch_seconds: float
) -> dict:
    """Cancel-poll cost per batch vs one serial epoch (< 1% budget).

    Microbenches the exact ``scope.check()`` the dense batch loop runs,
    against the worst-case scope (live token *and* deadline), and scales
    it by the loop's batches per epoch. The measured serial epoch time
    already contains the real polls, so the fraction is an upper bound.
    """
    from repro.resilience.lifecycle import (
        CancellationToken,
        Deadline,
        cancel_scope,
        current_cancel_scope,
    )

    iters = 200_000
    with cancel_scope(CancellationToken(), Deadline(3600.0)):
        scope = current_cancel_scope()
        start = time.perf_counter()
        for _ in range(iters):
            scope.check()
        check_seconds = (time.perf_counter() - start) / iters
    batches_per_epoch = max(
        1,
        int(np.ceil(corpus.num_examples(config.window) / config.batch_size)),
    )
    fraction = check_seconds * batches_per_epoch / max(serial_epoch_seconds, 1e-12)
    return {
        "check_seconds": check_seconds,
        "batches_per_epoch": batches_per_epoch,
        "serial_epoch_seconds": round(serial_epoch_seconds, 6),
        "overhead_fraction": fraction,
        "budget_fraction": 0.01,
        "within_budget": fraction < 0.01,
    }


def _guard_overhead(
    graph, walk_cfg, train_cfg, manifest_dir: Path, *,
    serial_epoch_seconds: float,
) -> dict:
    """Resource-guard cost: watchdog tick vs interval + one-shot preflight.

    Microbenches the exact watchdog ``poll_once()`` the daemon thread
    runs (a /proc RSS read plus ``statvfs`` on /dev/shm and the
    checkpoint dir) against a never-breaching budget, and the
    :func:`~repro.resilience.guard.preflight` footprint estimate over
    the real stage configs. ``poll_cost / interval`` is the fraction of
    one core the sampler can steal; preflight is charged in full to a
    single epoch — both upper bounds.
    """
    from types import SimpleNamespace

    from repro.obs.recorder import Recorder, use
    from repro.pipeline import ExecutionContext
    from repro.resilience.guard import (
        PressureWatchdog,
        ResourceBudget,
        preflight,
        reset_guard,
    )

    iters = 2_000
    budget = ResourceBudget(memory_bytes=1 << 50, disk_bytes=1 << 50)
    reset_guard()
    try:
        dog = PressureWatchdog(budget, checkpoint_dir=manifest_dir)
        with use(Recorder()):
            start = time.perf_counter()
            for _ in range(iters):
                dog.poll_once()
            poll_seconds = (time.perf_counter() - start) / iters
    finally:
        reset_guard()
    ctx = ExecutionContext(workers=1, budget=budget)
    stages = [
        SimpleNamespace(config=walk_cfg), SimpleNamespace(config=train_cfg)
    ]
    with use(Recorder()):
        start = time.perf_counter()
        for _ in range(iters):
            preflight(ctx, stages, graph)
        preflight_seconds = (time.perf_counter() - start) / iters
    poll_fraction = poll_seconds / budget.interval
    preflight_fraction = preflight_seconds / max(serial_epoch_seconds, 1e-12)
    fraction = poll_fraction + preflight_fraction
    return {
        "poll_seconds": poll_seconds,
        "interval_seconds": budget.interval,
        "preflight_seconds": preflight_seconds,
        "serial_epoch_seconds": round(serial_epoch_seconds, 6),
        "overhead_fraction": fraction,
        "budget_fraction": 0.01,
        "within_budget": fraction < 0.01,
    }


def render(report: dict) -> str:
    records = [
        ExperimentRecord(
            params={"stage": "walks", "workers": row["workers"]},
            values={
                k: v for k, v in row.items() if k not in ("workers", "manifest")
            },
        )
        for row in report["walk_generation"]
    ] + [
        ExperimentRecord(
            params={
                "stage": f"shard[{row['shards']}]", "workers": row["workers"]
            },
            values={
                k: v
                for k, v in row.items()
                if k not in ("shards", "workers", "manifest")
            },
        )
        for row in report.get("shard_walks", [])
    ] + [
        ExperimentRecord(
            params={"stage": "train", "workers": row["workers"]},
            values={
                k: v for k, v in row.items() if k not in ("workers", "manifest")
            },
        )
        for row in report["training"]
    ]
    lifecycle = report.get("lifecycle_overhead")
    if lifecycle:
        records.append(
            ExperimentRecord(
                params={"stage": "lifecycle", "workers": 1},
                values={
                    "check_us": round(lifecycle["check_seconds"] * 1e6, 3),
                    "batches_per_epoch": lifecycle["batches_per_epoch"],
                    "overhead_fraction": round(
                        lifecycle["overhead_fraction"], 6
                    ),
                    "within_budget": lifecycle["within_budget"],
                },
            )
        )
    guard = report.get("guard_overhead")
    if guard:
        records.append(
            ExperimentRecord(
                params={"stage": "guard", "workers": 1},
                values={
                    "poll_us": round(guard["poll_seconds"] * 1e6, 3),
                    "preflight_us": round(guard["preflight_seconds"] * 1e6, 3),
                    "overhead_fraction": round(guard["overhead_fraction"], 6),
                    "within_budget": guard["within_budget"],
                },
            )
        )
    host = report["host"]
    return format_table(
        records,
        title=(
            f"{report.get('bench', 'pipeline')} bench "
            f"(cpus={host['cpu_count']}, affinity={host['cpu_affinity']}, "
            f"python={host['python']})"
        ),
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", nargs="*", type=int, default=[1, 2, 4])
    parser.add_argument("--n", type=int, default=1200, help="graph vertices")
    parser.add_argument("--groups", type=int, default=8)
    parser.add_argument("--walks", type=int, default=12, help="walks per vertex")
    parser.add_argument("--length", type=int, default=40, help="walk length")
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        help="unmeasured walk runs per worker count (pool fork amortization)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="measured walk runs per worker count; the best is reported",
    )
    parser.add_argument("--output", default="BENCH_PR7.json")
    parser.add_argument(
        "--bench-name",
        default="pr7_parallel_payoff",
        help="the report's `bench` identity; scripts/perf_guard.py only "
        "compares reports whose names match",
    )
    parser.add_argument(
        "--manifest-dir",
        default=None,
        help="keep per-run manifests here (default: a temp dir, discarded)",
    )
    args = parser.parse_args()

    if args.manifest_dir is not None:
        manifest_dir = Path(args.manifest_dir)
        manifest_dir.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="bench_manifests_")
        manifest_dir = Path(cleanup.name)

    try:
        report = measure(
            args.workers,
            n=args.n,
            groups=args.groups,
            walks_per_vertex=args.walks,
            walk_length=args.length,
            dim=args.dim,
            epochs=args.epochs,
            seed=args.seed,
            manifest_dir=manifest_dir,
            warmup=args.warmup,
            repeats=args.repeats,
            bench_name=args.bench_name,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
