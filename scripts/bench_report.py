#!/usr/bin/env python
"""PR 2 bench report: parallel training / walk-transfer throughput.

Runs the same measurement as ``benchmarks/test_perf_parallel_training.py``
standalone and writes a machine-readable summary (default
``BENCH_PR2.json``): walks/sec per walk-worker count, epochs/sec per
trainer-worker count, and speedup relative to the serial trainer. CI runs
this on a tiny corpus as a smoke step and uploads the JSON; the committed
``BENCH_PR2.json`` records a local run.

Throughput depends on the host — single-core containers show parallel
*slowdown* (documented in docs/PERFORMANCE.md) — so the report always
records ``cpu_count`` alongside the numbers and never fails on a
regression, only on a crash.

Run:  PYTHONPATH=src python scripts/bench_report.py [--workers 1 2 4]
          [--n 400] [--epochs 10] [--output BENCH_PR2.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path

import numpy as np

from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.core.trainer import TrainConfig, train_embeddings
from repro.datasets.synthetic import community_benchmark
from repro.walks.engine import RandomWalkConfig, generate_walks


def measure(
    worker_counts: list[int],
    *,
    n: int,
    groups: int,
    walks_per_vertex: int,
    walk_length: int,
    dim: int,
    epochs: int,
    seed: int,
) -> dict:
    graph = community_benchmark(
        0.5, n=n, groups=groups, inter_edges=n // 5, seed=seed
    )
    walk_cfg = RandomWalkConfig(
        walks_per_vertex=walks_per_vertex, walk_length=walk_length, seed=seed
    )

    walk_rows = []
    for workers in worker_counts:
        with Timer() as t:
            corpus = generate_walks(graph, walk_cfg, workers=workers)
        walk_rows.append(
            {
                "workers": workers,
                "seconds": round(t.seconds, 4),
                "walks_per_sec": round(corpus.num_walks / max(t.seconds, 1e-9), 1),
            }
        )

    corpus = generate_walks(graph, walk_cfg)
    train_rows = []
    serial_seconds = None
    for workers in worker_counts:
        cfg = TrainConfig(
            dim=dim, epochs=epochs, seed=seed, early_stop=False, workers=workers
        )
        with Timer() as t:
            result = train_embeddings(corpus, cfg)
        if not np.all(np.isfinite(result.vectors)):
            raise RuntimeError(f"non-finite vectors at workers={workers}")
        if serial_seconds is None:
            serial_seconds = t.seconds
        train_rows.append(
            {
                "workers": workers,
                "seconds": round(t.seconds, 4),
                "epochs_per_sec": round(result.epochs_run / max(t.seconds, 1e-9), 3),
                "speedup_vs_serial": round(serial_seconds / max(t.seconds, 1e-9), 3),
                "final_loss": round(result.loss_history[-1], 6),
            }
        )

    return {
        "bench": "pr2_parallel_training",
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "corpus": {
            "n": n,
            "groups": groups,
            "walks": corpus.num_walks,
            "tokens": corpus.num_tokens,
            "walk_length": walk_length,
        },
        "train_config": {"dim": dim, "epochs": epochs, "seed": seed},
        "walk_generation": walk_rows,
        "training": train_rows,
    }


def render(report: dict) -> str:
    records = [
        ExperimentRecord(
            params={"stage": "walks", "workers": row["workers"]},
            values={k: v for k, v in row.items() if k != "workers"},
        )
        for row in report["walk_generation"]
    ] + [
        ExperimentRecord(
            params={"stage": "train", "workers": row["workers"]},
            values={k: v for k, v in row.items() if k != "workers"},
        )
        for row in report["training"]
    ]
    host = report["host"]
    return format_table(
        records,
        title=(
            f"PR 2 parallel training bench "
            f"(cpus={host['cpu_count']}, python={host['python']})"
        ),
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", nargs="*", type=int, default=[1, 2, 4])
    parser.add_argument("--n", type=int, default=400, help="graph vertices")
    parser.add_argument("--groups", type=int, default=8)
    parser.add_argument("--walks", type=int, default=6, help="walks per vertex")
    parser.add_argument("--length", type=int, default=30, help="walk length")
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_PR2.json")
    args = parser.parse_args()

    report = measure(
        args.workers,
        n=args.n,
        groups=args.groups,
        walks_per_vertex=args.walks,
        walk_length=args.length,
        dim=args.dim,
        epochs=args.epochs,
        seed=args.seed,
    )
    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
