#!/usr/bin/env python
"""Paper-scale spot check for EXPERIMENTS.md.

Runs the headline experiments at the published sizes (n = 1000 community
benchmark; 3000-airport flights graph) for a few representative points,
so EXPERIMENTS.md can quote paper-scale numbers alongside the fast-scale
bench output. Exact Girvan–Newman is hours at this scale even sampled
(that is Table I's own point), so the graph baselines here are CNM and
Louvain.

Run:  python scripts/paper_scale_spotcheck.py [--alphas 0.1 0.5 1.0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.community import cnm_communities, louvain_communities
from repro.datasets.openflights import OpenFlightsSpec, synthetic_openflights
from repro.datasets.synthetic import community_benchmark
from repro.ml import KMeans, cross_validate_knn, pairwise_precision_recall


def community_spotcheck(alphas: list[float], seed: int, objective: str) -> None:
    records = []
    for alpha in alphas:
        graph = community_benchmark(alpha, seed=seed)  # paper defaults: n=1000
        truth = graph.vertex_labels("community")
        cfg = V2VConfig(
            dim=10, walks_per_vertex=10, walk_length=80,
            epochs=10, tol=1e-2, patience=2, seed=seed,
            objective=objective,
        )
        model = V2V(cfg)
        with Timer() as t_train:
            model.fit(graph)
        with Timer() as t_cluster:
            km = KMeans(10, n_init=100, seed=seed).fit(model.vectors)
        p, r = pairwise_precision_recall(truth, km.labels)
        with Timer() as t_cnm:
            cnm = cnm_communities(graph, target_communities=10)
        cnm_p, cnm_r = pairwise_precision_recall(truth, cnm)
        with Timer() as t_louvain:
            lv = louvain_communities(graph, seed=seed)
        lv_p, lv_r = pairwise_precision_recall(truth, lv)
        records.append(
            ExperimentRecord(
                params={"alpha": alpha, "edges": graph.num_edges},
                values={
                    "v2v_precision": p,
                    "v2v_recall": r,
                    "v2v_train_s": t_train.seconds,
                    "v2v_cluster_s": t_cluster.seconds,
                    "epochs": float(model.result.epochs_run),
                    "cnm_precision": cnm_p,
                    "cnm_recall": cnm_r,
                    "cnm_s": t_cnm.seconds,
                    "louvain_precision": lv_p,
                    "louvain_s": t_louvain.seconds,
                },
            )
        )
        print(format_table(records, title="Table I spot check @ paper scale (n=1000, V2V dim=10)"))
        print()


def flights_spotcheck(seed: int) -> None:
    graph = synthetic_openflights(
        OpenFlightsSpec(num_airports=3000, countries_per_continent=12, seed=seed)
    )
    countries = graph.vertex_labels("country")
    cfg = V2VConfig(
        dim=50, walks_per_vertex=10, walk_length=80, epochs=5,
        tol=1e-2, patience=2, seed=seed,
    )
    model = V2V(cfg)
    with Timer() as t:
        model.fit(graph)
    acc = cross_validate_knn(
        model.vectors, countries, k=3, n_splits=10, seed=seed
    )
    print(
        f"Fig 9 spot check @ 3000 airports, dim=50, k=3: "
        f"accuracy {acc:.3f} (train {t.seconds:.1f}s, "
        f"{model.result.epochs_run} epochs, "
        f"{len(set(countries.tolist()))} countries)"
    )


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--alphas", nargs="*", type=float, default=[0.1, 0.5, 1.0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--objective",
        choices=["cbow", "skipgram"],
        default="cbow",
        help=(
            "cbow is the paper's objective; at alpha=0.1 with the scaled "
            "walk budget it under-fits (P≈0.5) where skipgram reaches 1.0 "
            "— see EXPERIMENTS.md"
        ),
    )
    parser.add_argument("--skip-flights", action="store_true")
    args = parser.parse_args()
    community_spotcheck(args.alphas, args.seed, args.objective)
    if not args.skip_flights:
        flights_spotcheck(args.seed)


if __name__ == "__main__":
    main()
