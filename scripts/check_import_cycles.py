#!/usr/bin/env python
"""Layering lint: fail CI when a module imports against the layer order.

The architecture (docs/architecture.md) is a DAG:

    graph (view/store/partition) → walks → core → pipeline → cli
                                     ↑________tasks/community/viz

``repro.graph.store`` / ``repro.graph.partition`` may depend on the
graph core and on ``repro.resilience`` (integrity records), but never on
``repro.walks`` or ``repro.pipeline`` — the out-of-core substrate must
stay consumable by every engine above it.

Two classes of violation are checked, on *module-level* imports only
(``import x`` / ``from x import y`` at the top of the file, outside
``if TYPE_CHECKING:`` blocks). Function-local imports are exempt by
design — that is exactly how the deprecation shims in ``walks.engine``
and ``core.trainer`` reach ``repro.pipeline`` without a cycle.

1. ``repro.pipeline`` must not import ``repro.cli`` — the pipeline is a
   library layer; the CLI sits on top of it.
2. ``repro.core``, ``repro.walks``, and ``repro.parallel`` must not
   import ``repro.pipeline`` — the engines sit *below* the runtime that
   orchestrates them.
3. Nothing under ``repro`` imports ``repro.cli`` at module level.

Run from the repo root: ``python scripts/check_import_cycles.py``.
Exits 1 with one line per violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

# (package prefix of the importing module, forbidden import prefix, why)
RULES = [
    (
        "repro.pipeline",
        "repro.cli",
        "the pipeline layer must not depend on the CLI",
    ),
    (
        "repro.core",
        "repro.pipeline",
        "engines sit below the pipeline runtime (use function-local imports in shims)",
    ),
    (
        "repro.walks",
        "repro.pipeline",
        "engines sit below the pipeline runtime (use function-local imports in shims)",
    ),
    (
        "repro.parallel",
        "repro.pipeline",
        "engines sit below the pipeline runtime (use function-local imports in shims)",
    ),
    (
        "repro.graph.store",
        "repro.walks",
        "the graph store is substrate; walk engines consume it, never the reverse",
    ),
    (
        "repro.graph.store",
        "repro.pipeline",
        "the graph store is substrate; the pipeline runtime sits far above it",
    ),
    (
        "repro.graph.partition",
        "repro.walks",
        "partitioning is substrate; walk engines consume it, never the reverse",
    ),
    (
        "repro.graph.partition",
        "repro.pipeline",
        "partitioning is substrate; the pipeline runtime sits far above it",
    ),
    (
        "repro.graph",
        "repro.community",
        "graph is the bottom layer; community algorithms build on it "
        "(partition's label-propagation hook is a function-local import)",
    ),
    (
        "repro",
        "repro.cli",
        "repro.cli is the top of the stack; no library module may import it",
    ),
]


def module_name(path: Path) -> str:
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_type_checking_guard(node: ast.If) -> bool:
    test = node.test
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def module_level_imports(tree: ast.Module) -> list[tuple[int, str]]:
    """(lineno, imported module) pairs for top-level imports, skipping
    ``if TYPE_CHECKING:`` bodies (annotations don't create runtime deps)."""
    found: list[tuple[int, str]] = []
    for node in tree.body:
        if isinstance(node, ast.If) and _is_type_checking_guard(node):
            continue
        if isinstance(node, ast.Import):
            found.extend((node.lineno, alias.name) for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            found.append((node.lineno, node.module))
    return found


def _in_layer(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


# Entry points whose whole job is to invoke the CLI.
EXEMPT = {"repro.__main__"}


def check() -> list[str]:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        mod = module_name(path)
        if mod in EXEMPT:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, imported in module_level_imports(tree):
            for layer, forbidden, why in RULES:
                if _in_layer(mod, layer) and _in_layer(imported, forbidden):
                    violations.append(
                        f"{path.relative_to(SRC.parent)}:{lineno}: "
                        f"{mod} imports {imported} ({why})"
                    )
                    break
    return violations


def main() -> int:
    violations = check()
    for line in violations:
        print(line, file=sys.stderr)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print("import layering OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
