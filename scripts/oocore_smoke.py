#!/usr/bin/env python
"""Out-of-core smoke for CI: the graph store must beat the memory wall.

End-to-end proof that the mmap-backed store actually changes the
admission decision, not just the code path:

1. ``repro generate`` writes a synthetic community graph.
2. ``repro shard build`` turns it into a 4-shard store;
   ``repro shard verify`` re-hashes every array.
3. A memory budget is computed *between* the two preflight estimates —
   above what the store needs (one shard of CSR resident), below what
   the in-memory graph needs. The gap exists because
   ``estimate_footprint`` knows mmap'd structure is disk, not RSS.
4. ``repro embed`` WITHOUT the store under that budget must be refused
   up front (exit 2, ``status: failed`` / ``budget_exceeded``).
5. ``repro embed --graph-store`` under the SAME budget must complete
   (exit 0) with ``shard.*`` metrics in its run manifest, which
   ``repro report`` must validate.

The budget watchdog interval is set far past the run length so only the
*preflight estimate* decides admission — CI runner RSS baselines are
noisy and are not what this smoke is about.

Usage:
    PYTHONPATH=src python scripts/oocore_smoke.py --output-dir oocore_artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SHARDS = 4
EMBED_FLAGS = [
    "--dim", "16", "--walks", "2", "--length", "20",
    "--epochs", "1", "--seed", "5",
]


def run(argv: list[str], *, expect: int = 0) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    print(f"$ {' '.join(argv)}", flush=True)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != expect:
        raise SystemExit(
            f"FAIL: `repro {argv[0]}` exited {proc.returncode}, expected {expect}"
        )
    return proc


def pick_budget(graph_path: Path, store_path: Path) -> int:
    """A memory budget the store fits under and the heap graph does not."""
    from repro.core.model import V2VConfig
    from repro.graph.io import read_edge_list
    from repro.graph.store import GraphStore
    from repro.pipeline import TrainStage, WalkStage
    from repro.resilience.guard import estimate_footprint

    cfg = V2VConfig(dim=16, walks_per_vertex=2, walk_length=20, epochs=1, seed=5)
    stages = [WalkStage(cfg.walk_config()), TrainStage(cfg.train_config())]
    mem_rss = estimate_footprint(stages, read_edge_list(graph_path)).rss_bytes
    store_rss = estimate_footprint(stages, GraphStore.open(store_path)).rss_bytes
    print(
        f"preflight estimates: in-memory {mem_rss} B, "
        f"store {store_rss} B ({SHARDS} shards)"
    )
    if not store_rss < mem_rss:
        raise SystemExit(
            "FAIL: store footprint estimate is not below the in-memory one — "
            "estimate_footprint has lost its mmap awareness"
        )
    return (store_rss + mem_rss) // 2


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", type=Path, default=Path("oocore_artifacts"))
    args = parser.parse_args()
    out = args.output_dir.resolve()
    out.mkdir(parents=True, exist_ok=True)

    graph = out / "graph.txt"
    store = out / "store"
    run(["generate", "-o", str(graph), "--n", "400", "--groups", "4", "--seed", "0"])
    run([
        "shard", "build", str(graph), "-o", str(store),
        "--shards", str(SHARDS), "--method", "bfs", "--seed", "3",
    ])
    run(["shard", "verify", str(store)])

    sys.path.insert(0, str(REPO / "src"))
    budget = pick_budget(graph, store)
    print(f"memory budget for both runs: {budget} B")
    budget_flags = [
        "--memory-budget", str(budget),
        "--strict-budget",
        "--budget-interval", "600",
    ]

    # In-memory run: preflight must refuse admission before any work.
    mem_manifest = out / "mem_manifest.json"
    run(
        [
            "embed", str(graph), "-o", str(out / "mem_vectors.npz"),
            *EMBED_FLAGS, *budget_flags,
            "--metrics-out", str(mem_manifest),
        ],
        expect=2,
    )
    failed = json.loads(mem_manifest.read_text())
    if failed.get("status") != "failed":
        raise SystemExit(
            f"FAIL: refused run recorded status {failed.get('status')!r}, "
            "expected 'failed'"
        )

    # Same budget, store-backed: must complete.
    manifest = out / "store_manifest.json"
    run(
        [
            "embed", str(graph), "-o", str(out / "store_vectors.npz"),
            "--graph-store", str(store),
            *EMBED_FLAGS, *budget_flags,
            "--metrics-out", str(manifest),
        ],
        expect=0,
    )
    run(["report", str(manifest)])

    recorded = json.loads(manifest.read_text())
    counters = recorded["metrics"]["counters"]
    gauges = recorded["metrics"]["gauges"]
    missing = [k for k in ("shard.walks", "shard.rounds") if k not in counters]
    if gauges.get("shard.shards") != float(SHARDS):
        missing.append("shard.shards")
    if missing:
        raise SystemExit(f"FAIL: manifest missing shard metrics: {missing}")
    print(
        f"OK: store run finished under a budget the in-memory run was "
        f"refused at (shard.walks={counters['shard.walks']:.0f}, "
        f"shard.rounds={counters['shard.rounds']:.0f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
