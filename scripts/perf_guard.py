#!/usr/bin/env python
"""Perf-regression guard: does parallelism still pay?

Compares a freshly measured bench report (``scripts/bench_report.py``
output) against the committed baseline (``BENCH_PR7.json``) and fails
when the *parallel payoff* regresses — the ratio of serial to
multi-worker seconds for walk generation and for training. Ratios, not
absolute times: CI runners differ wildly in raw speed, but "workers=N
is X times faster than workers=1 on the same box" transfers, which is
exactly the property PR 7's fused kernel + persistent pool + frontier
batching exist to provide.

Policy:

- For each stage (``walk_generation``, ``training``), the guard takes
  the speedup of the highest worker count over workers=1, in both the
  baseline and the current report, and requires::

      current_speedup >= baseline_speedup * (1 - tolerance)

- The default ``--tolerance 0.5`` is deliberately loose — walk waves
  are milliseconds long and shared runners are noisy — so the guard
  trips on "parallelism stopped paying" (a serialization bug, a pool
  that re-forks per map, a kernel falling back to the reference path),
  not on jitter.
- Schema/tag mismatches fail loudly: comparing reports produced by
  different bench definitions is meaningless.

Escape hatch: set ``PERF_GUARD_SKIP=1`` to turn the guard into a no-op
(exit 0 with a notice). Use it when landing a change that knowingly
moves the trade-off (e.g. a correctness fix inside the kernel) — and
regenerate the committed baseline in the same PR:

    PYTHONPATH=src python scripts/bench_report.py --output BENCH_PR7.json

Run:  PYTHONPATH=src python scripts/perf_guard.py \
          --baseline BENCH_PR7.json --current bench_current.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

GUARDED_STAGES = ("walk_generation", "training")


class PerfGuardError(SystemExit):
    pass


def _load(path: Path) -> dict:
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise PerfGuardError(f"perf-guard: cannot read {path}: {exc}")
    for key in ("schema_version", "bench", *GUARDED_STAGES):
        if key not in report:
            raise PerfGuardError(f"perf-guard: {path} is missing {key!r}")
    return report


def _speedup(report: dict, stage: str) -> tuple[float, int]:
    """(serial_seconds / best-parallel seconds, worker count used)."""
    rows = {row["workers"]: float(row["seconds"]) for row in report[stage]}
    if 1 not in rows:
        raise PerfGuardError(f"perf-guard: no workers=1 row in {stage}")
    top = max(rows)
    if top == 1:
        raise PerfGuardError(f"perf-guard: no multi-worker row in {stage}")
    return rows[1] / max(rows[top], 1e-12), top


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Human-readable failures (empty means the guard passes)."""
    failures = []
    if baseline["bench"] != current["bench"]:
        failures.append(
            f"bench tag mismatch: baseline {baseline['bench']!r} vs "
            f"current {current['bench']!r}"
        )
        return failures
    if baseline["schema_version"] != current["schema_version"]:
        failures.append(
            f"schema mismatch: baseline v{baseline['schema_version']} vs "
            f"current v{current['schema_version']}"
        )
        return failures
    for stage in GUARDED_STAGES:
        base, base_w = _speedup(baseline, stage)
        cur, cur_w = _speedup(current, stage)
        floor = base * (1.0 - tolerance)
        verdict = "ok" if cur >= floor else "REGRESSED"
        print(
            f"  {stage}: speedup w{cur_w} vs w1 = {cur:.3f} "
            f"(baseline {base:.3f} @ w{base_w}, floor {floor:.3f}) {verdict}"
        )
        if cur < floor:
            failures.append(
                f"{stage}: parallel speedup {cur:.3f} fell below "
                f"{floor:.3f} (baseline {base:.3f} minus {tolerance:.0%})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline", default="BENCH_PR7.json")
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.5)
    args = parser.parse_args()

    if os.environ.get("PERF_GUARD_SKIP") == "1":
        print(
            "perf-guard: skipped (PERF_GUARD_SKIP=1). If this lands a "
            "deliberate trade-off, regenerate the baseline in the same PR."
        )
        return 0
    if not 0.0 <= args.tolerance < 1.0:
        raise PerfGuardError("perf-guard: tolerance must be in [0, 1)")

    baseline = _load(Path(args.baseline))
    current = _load(Path(args.current))
    print(f"perf-guard: {args.current} vs baseline {args.baseline}")
    failures = check(baseline, current, args.tolerance)
    if failures:
        for failure in failures:
            print(f"perf-guard: FAIL: {failure}", file=sys.stderr)
        print(
            "perf-guard: override with PERF_GUARD_SKIP=1 (see module "
            "docstring) and refresh BENCH_PR7.json if intentional.",
            file=sys.stderr,
        )
        return 1
    print("perf-guard: pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
