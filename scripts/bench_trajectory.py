#!/usr/bin/env python
"""Merge committed ``BENCH_PR*.json`` files into one bench trajectory.

Each PR that touches performance commits a ``BENCH_PR<N>.json`` written
by ``scripts/bench_report.py``; the files span several schema
generations (PR 2 predates ``schema_version`` entirely), so this script
reads them tolerantly, extracts one comparable headline row per PR, and
writes:

- ``BENCH_TRAJECTORY.json`` — the merged machine-readable history;
- a markdown table spliced into ``docs/PERFORMANCE.md`` between the
  ``<!-- bench-trajectory:start/end -->`` markers (appended to the end
  of the file when the markers do not exist yet).

Headline columns per PR: serial walk throughput, serial training
throughput (words/sec when recorded, epochs/sec as the PR 2 fallback),
and the best parallel speedup. Numbers across PRs
compare like-for-like only when the corpus matches — the corpus column
is there so a reader can tell (PR 7 grew the bench corpus 3×).

Run:  python scripts/bench_trajectory.py [--repo-root .] [--check]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any

START_MARK = "<!-- bench-trajectory:start -->"
END_MARK = "<!-- bench-trajectory:end -->"

_PR_RE = re.compile(r"BENCH_PR(\d+)\.json$")


def _row_for(rows: list[dict], workers: int) -> dict | None:
    for row in rows or []:
        if row.get("workers") == workers:
            return row
    return None


def _best_parallel(rows: list[dict]) -> dict | None:
    parallel = [r for r in rows or [] if (r.get("workers") or 1) > 1]
    if not parallel:
        return None
    return max(parallel, key=lambda r: r.get("speedup_vs_serial") or 0.0)


def summarize_bench(pr: int, report: dict) -> dict[str, Any]:
    """One trajectory entry from one bench JSON (schema-tolerant)."""
    corpus = report.get("corpus") or {}
    walks = report.get("walk_generation") or []
    training = report.get("training") or []
    serial_walk = _row_for(walks, 1) or {}
    serial_train = _row_for(training, 1) or {}
    best = _best_parallel(training) or {}
    host = report.get("host") or {}
    # PR 10+: out-of-core rows; headline is the best multi-shard rate.
    shard_rows = [
        r for r in report.get("shard_walks") or [] if (r.get("shards") or 1) > 1
    ]
    best_shard = max(
        shard_rows, key=lambda r: r.get("walks_per_sec") or 0.0, default={}
    )
    return {
        "pr": pr,
        "bench": report.get("bench", f"pr{pr}"),
        "schema_version": report.get("schema_version", 0),
        "corpus_n": corpus.get("n"),
        "corpus_tokens": corpus.get("tokens"),
        "walks_per_sec_serial": serial_walk.get("walks_per_sec"),
        "train_words_per_sec_serial": serial_train.get("words_per_sec"),
        "train_epochs_per_sec_serial": serial_train.get("epochs_per_sec"),
        "train_kernel": serial_train.get("kernel"),
        "best_parallel_workers": best.get("workers"),
        "best_parallel_speedup": best.get("speedup_vs_serial"),
        "shard_walks_per_sec": best_shard.get("walks_per_sec"),
        "shard_count": best_shard.get("shards"),
        "cpu_affinity": host.get("cpu_affinity", host.get("cpu_count")),
    }


def build_trajectory(repo_root: Path) -> dict[str, Any]:
    entries = []
    for path in sorted(repo_root.glob("BENCH_PR*.json")):
        match = _PR_RE.search(path.name)
        if not match:
            continue
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path.name}: {exc}", file=sys.stderr)
            continue
        entries.append(summarize_bench(int(match.group(1)), report))
    entries.sort(key=lambda e: e["pr"])
    return {"kind": "repro-bench-trajectory", "entries": entries}


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.0f}" if abs(value) >= 100 else f"{value:.2f}"
    return str(value)


def render_markdown(trajectory: dict) -> str:
    lines = [
        START_MARK,
        "",
        "| PR | bench | corpus n | walks/s (serial) | walks/s (sharded) "
        "| train words/s (serial) | kernel | best ∥ speedup |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for entry in trajectory["entries"]:
        words = entry.get("train_words_per_sec_serial")
        train = (
            _fmt(words)
            if words is not None
            else f"{_fmt(entry.get('train_epochs_per_sec_serial'))} ep/s"
        )
        speedup = entry.get("best_parallel_speedup")
        speedup_cell = (
            f"{speedup:.2f}x @ {entry.get('best_parallel_workers')}w"
            if speedup is not None
            else "-"
        )
        sharded = entry.get("shard_walks_per_sec")
        sharded_cell = (
            f"{_fmt(sharded)} @ {entry.get('shard_count')}sh"
            if sharded is not None
            else "-"
        )
        lines.append(
            f"| {entry['pr']} | {entry['bench']} "
            f"| {_fmt(entry.get('corpus_n'))} "
            f"| {_fmt(entry.get('walks_per_sec_serial'))} "
            f"| {sharded_cell} "
            f"| {train} "
            f"| {entry.get('train_kernel') or '-'} "
            f"| {speedup_cell} |"
        )
    lines += [
        "",
        "Regenerate with `python scripts/bench_trajectory.py`. Corpora "
        "differ across PRs (see `corpus n`); compare within matching "
        "corpora only.",
        END_MARK,
    ]
    return "\n".join(lines)


def splice_markdown(doc: str, table: str) -> str:
    if START_MARK in doc and END_MARK in doc:
        before = doc.split(START_MARK, 1)[0]
        after = doc.split(END_MARK, 1)[1]
        return before + table + after
    suffix = "" if doc.endswith("\n") else "\n"
    return doc + suffix + "\n## Bench trajectory\n\n" + table + "\n"


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo-root", default=".", type=Path)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the committed outputs are out of date (CI mode)",
    )
    args = parser.parse_args()
    root = args.repo_root

    trajectory = build_trajectory(root)
    if not trajectory["entries"]:
        print("no BENCH_PR*.json files found", file=sys.stderr)
        return 1
    out_json = json.dumps(trajectory, indent=2) + "\n"
    table = render_markdown(trajectory)

    traj_path = root / "BENCH_TRAJECTORY.json"
    perf_path = root / "docs" / "PERFORMANCE.md"
    new_doc = splice_markdown(
        perf_path.read_text(encoding="utf-8") if perf_path.is_file() else "",
        table,
    )

    if args.check:
        stale = []
        if not traj_path.is_file() or traj_path.read_text() != out_json:
            stale.append(str(traj_path))
        if not perf_path.is_file() or perf_path.read_text() != new_doc:
            stale.append(str(perf_path))
        if stale:
            print(
                "bench trajectory out of date, regenerate with "
                f"scripts/bench_trajectory.py: {', '.join(stale)}",
                file=sys.stderr,
            )
            return 1
        print("bench trajectory up to date")
        return 0

    traj_path.write_text(out_json, encoding="utf-8")
    perf_path.write_text(new_doc, encoding="utf-8")
    print(
        f"merged {len(trajectory['entries'])} bench files -> "
        f"{traj_path.name}; table spliced into {perf_path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
