#!/usr/bin/env python
"""Validate an exported Chrome trace against its run manifest.

CI's bench-smoke job runs a profiled embed, exports the event stream
with ``repro report --trace-export``, and then calls this script to
enforce the structural contract: the trace must be well-formed JSON in
Chrome Trace Event format with at least one complete (``ph="X"``) event
per pipeline stage the manifest's ``stage_reports`` name. Exit 1 with
one line per problem otherwise.

Run:  PYTHONPATH=src python scripts/validate_trace.py MANIFEST TRACE
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import validate_chrome_trace
from repro.obs.manifest import ManifestError, load_manifest


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("manifest", help="run manifest (--metrics-out)")
    parser.add_argument("trace", help="Chrome trace JSON (--trace-export)")
    args = parser.parse_args()

    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as exc:
        print(f"invalid manifest: {exc}", file=sys.stderr)
        return 1
    try:
        trace = json.loads(Path(args.trace).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"invalid trace JSON: {exc}", file=sys.stderr)
        return 1

    stages = [
        str(report.get("stage"))
        for report in manifest.get("stage_reports") or []
        if report.get("stage")
    ]
    problems = validate_chrome_trace(trace, stage_names=stages)
    if problems:
        for problem in problems:
            print(f"trace problem: {problem}", file=sys.stderr)
        return 1

    events = trace["traceEvents"]
    complete = sum(1 for e in events if e.get("ph") == "X")
    print(
        f"trace ok: {len(events)} events ({complete} complete), "
        f"stages covered: {', '.join(stages) or '(none listed)'}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
