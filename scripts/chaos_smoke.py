#!/usr/bin/env python
"""Deterministic chaos smoke for CI: supervised self-healing end to end.

Runs three scripted failure scenarios against a tiny corpus and fails
loudly (non-zero exit) if any recovery path did not actually fire:

1. **kill** — a Hogwild worker hard-exits mid-epoch under supervision;
   the run must complete all epochs and record ``supervisor.respawns``.
2. **hang** — a Hogwild worker sleeps "forever" mid-epoch; the watchdog
   must kill it within the deadline budget and finish via respawn.
3. **corrupt** — a completed trainer checkpoint is torn on disk; a
   resuming run must quarantine it (``*.corrupt.<ts>``) and restart the
   phase cleanly, reproducing the uncorrupted result bitwise.
4. **interrupt** — a real ``python -m repro embed`` subprocess is
   SIGTERMed mid-training; it must exit 130 with a valid
   ``status: interrupted`` manifest (checked via ``repro report``), leak
   no ``/dev/shm`` segments, and a ``--resume`` run must finish with
   embeddings bitwise-identical to an uninterrupted reference run.
5. **deadline** — the same run under ``--deadline 0`` must exit 124 with
   ``interrupt_reason: deadline`` in its manifest.

Artifacts (JSONL event streams + run manifests) land in ``--output-dir``
for upload; the manifests are the machine-readable proof of healing.

Usage:
    PYTHONPATH=src python scripts/chaos_smoke.py --output-dir chaos_artifacts
"""

import argparse
import io
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.obs.manifest import load_manifest
from repro.obs.recorder import ObsConfig, session
from repro.parallel.hogwild import (
    hogwild_epoch_task,
    hogwild_supported,
    train_hogwild,
)
from repro.pipeline import ExecutionContext
from repro.resilience.chaos import FaultInjector
from repro.resilience.supervisor import SupervisorConfig
from repro.walks.engine import RandomWalkConfig, generate_walks

SUPERVISED = SupervisorConfig(
    worker_deadline=2.0, max_respawns=5, poll_interval=0.05
)


def _train_config() -> TrainConfig:
    return TrainConfig(
        dim=12,
        epochs=3,
        batch_size=128,
        seed=3,
        early_stop=False,
        workers=2,
        supervisor=SUPERVISED,
    )


def _run_scenario(name, corpus, out_dir, scratch, **fault_kwargs):
    """One supervised Hogwild run with an injected worker fault."""
    events = out_dir / f"{name}.events.jsonl"
    manifest = out_dir / f"{name}.manifest.json"
    marker = scratch / f"{name}.fired"
    injector = FaultInjector(
        hogwild_epoch_task,
        only_in_subprocess=True,
        once_marker=marker,
        **fault_kwargs,
    )
    cfg = ObsConfig(
        log_level="error", log_json=str(events), metrics_out=str(manifest)
    )
    with session(cfg, run_config={"chaos": name}, stream=io.StringIO()):
        result = train_hogwild(corpus, _train_config(), task_fn=injector)

    failures = []
    if not marker.exists():
        failures.append(f"{name}: fault never fired")
    if result.epochs_run != 3:
        failures.append(f"{name}: expected 3 epochs, ran {result.epochs_run}")
    if not np.all(np.isfinite(result.vectors)):
        failures.append(f"{name}: non-finite vectors")
    counters = load_manifest(manifest)["metrics"]["counters"]
    respawns = counters.get("supervisor.respawns", 0)
    if respawns < 1:
        failures.append(f"{name}: supervisor.respawns == 0 (no healing)")
    print(f"[chaos-smoke] {name}: epochs={result.epochs_run} respawns={respawns}")
    return failures


def _corrupt_checkpoint_scenario(corpus, out_dir, scratch):
    """Torn trainer checkpoint → quarantine → bitwise-clean restart."""
    failures = []
    fresh = train_embeddings(
        corpus, TrainConfig(dim=8, epochs=2, seed=1, early_stop=False)
    )
    ckpt_dir = scratch / "ckpt"
    train_embeddings(
        corpus,
        TrainConfig(dim=8, epochs=2, seed=1, early_stop=False),
        context=ExecutionContext(checkpoint_dir=ckpt_dir),
    )
    victim = ckpt_dir / "trainer.ckpt.npz"
    FaultInjector(lambda: None, corrupt_on_calls={1}, corrupt_path=victim)()
    resumed = train_embeddings(
        corpus,
        TrainConfig(dim=8, epochs=2, seed=1, early_stop=False),
        context=ExecutionContext(checkpoint_dir=ckpt_dir, resume=True),
    )
    quarantined = [p.name for p in ckpt_dir.iterdir() if ".corrupt." in p.name]
    if not quarantined:
        failures.append("corrupt: checkpoint was not quarantined")
    if not np.array_equal(resumed.vectors, fresh.vectors):
        failures.append("corrupt: restarted result differs from fresh run")
    print(f"[chaos-smoke] corrupt: quarantined={quarantined}")
    (out_dir / "corrupt.summary.json").write_text(
        json.dumps({"quarantined": quarantined, "bitwise_identical": True})
    )
    return failures


def _shm_names() -> set:
    shm = Path("/dev/shm")
    if not shm.is_dir():  # non-Linux runner
        return set()
    return {p.name for p in shm.iterdir()}


def _cli_env() -> dict:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    return env


def _interrupt_resume_scenario(graph, out_dir, scratch):
    """SIGTERM a live ``repro embed`` run, then resume to completion."""
    from repro.graph.io import write_edge_list

    failures = []
    env = _cli_env()
    edges = scratch / "graph.edges"
    write_edge_list(graph, edges)
    common = [
        sys.executable, "-m", "repro", "embed", str(edges),
        "--dim", "12", "--walks", "4", "--length", "20",
        "--epochs", "12", "--seed", "3", "--log-level", "error",
    ]

    ref_out = scratch / "ref.npz"
    rc = subprocess.run(
        common + ["-o", str(ref_out), "--checkpoint-dir", str(scratch / "ref")],
        env=env,
    ).returncode
    if rc != 0:
        return [f"interrupt: reference run failed (exit {rc})"]

    before = _shm_names()
    ckpt = scratch / "interrupted"
    manifest = out_dir / "interrupt.manifest.json"
    events = out_dir / "interrupt.events.jsonl"
    proc = subprocess.Popen(
        common
        + [
            "-o", str(scratch / "interrupted.npz"),
            "--checkpoint-dir", str(ckpt),
            "--metrics-out", str(manifest),
            "--log-json", str(events),
        ],
        env=env,
    )
    # SIGTERM once the first epoch snapshot is durable: the run is then
    # provably mid-training, and resume has a real boundary to restart
    # from. Escalate to kill only if something wedges (test bug).
    trainer_ckpt = ckpt / "trainer.ckpt.npz"
    give_up = time.monotonic() + 120
    while (
        not trainer_ckpt.exists()
        and proc.poll() is None
        and time.monotonic() < give_up
    ):
        time.sleep(0.02)
    if proc.poll() is not None:
        failures.append(
            f"interrupt: run finished (exit {proc.returncode}) before "
            "SIGTERM could be delivered mid-training"
        )
    else:
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            proc.kill()
            return ["interrupt: run did not wind down after SIGTERM"]
        if rc != 130:
            failures.append(f"interrupt: expected exit 130, got {rc}")
    leaked = _shm_names() - before
    if leaked:
        failures.append(f"interrupt: leaked /dev/shm segments: {sorted(leaked)}")

    report = subprocess.run(
        [sys.executable, "-m", "repro", "report", str(manifest)],
        env=env, capture_output=True, text=True,
    )
    if report.returncode != 0:
        failures.append("interrupt: `repro report` rejected the manifest")
    elif "status: interrupted (reason: signal)" not in report.stdout:
        failures.append("interrupt: report does not show interrupted status")

    resumed_out = scratch / "resumed.npz"
    rc = subprocess.run(
        common + ["-o", str(resumed_out), "--checkpoint-dir", str(ckpt), "--resume"],
        env=env,
    ).returncode
    if rc != 0:
        failures.append(f"interrupt: resume run failed (exit {rc})")
    else:
        with np.load(ref_out) as ref, np.load(resumed_out) as res:
            if not np.array_equal(ref["vectors"], res["vectors"]):
                failures.append(
                    "interrupt: resumed embedding differs from the "
                    "uninterrupted reference run"
                )
    print(f"[chaos-smoke] interrupt: exit=130 resume_identical={not failures}")

    dl_manifest = out_dir / "deadline.manifest.json"
    rc = subprocess.run(
        common
        + [
            "-o", str(scratch / "deadline.npz"),
            "--checkpoint-dir", str(scratch / "deadline"),
            "--deadline", "0",
            "--metrics-out", str(dl_manifest),
        ],
        env=env,
    ).returncode
    if rc != 124:
        failures.append(f"deadline: expected exit 124, got {rc}")
    recorded = load_manifest(dl_manifest)
    if recorded["status"] != "interrupted":
        failures.append(f"deadline: manifest status {recorded['status']!r}")
    if recorded.get("interrupt_reason") != "deadline":
        failures.append(
            f"deadline: interrupt_reason {recorded.get('interrupt_reason')!r}"
        )
    print(f"[chaos-smoke] deadline: exit={rc} status={recorded['status']}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir",
        default="chaos_artifacts",
        help="where JSONL event streams and manifests are written",
    )
    args = parser.parse_args(argv)

    if not hogwild_supported():
        print("[chaos-smoke] no shared memory on this platform; skipping")
        return 0

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    graph = planted_partition(n=90, groups=3, alpha=0.7, inter_edges=10, seed=0)
    corpus = generate_walks(
        graph, RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=5)
    )

    failures = []
    with tempfile.TemporaryDirectory() as scratch_str:
        scratch = Path(scratch_str)
        failures += _run_scenario(
            "kill", corpus, out_dir, scratch, exit_on_calls={1}
        )
        failures += _run_scenario(
            "hang", corpus, out_dir, scratch, hang_on_calls={1}, hang_seconds=3600.0
        )
        failures += _corrupt_checkpoint_scenario(corpus, out_dir, scratch)
        failures += _interrupt_resume_scenario(graph, out_dir, scratch)

    if failures:
        for failure in failures:
            print(f"[chaos-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[chaos-smoke] all recovery paths fired")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
