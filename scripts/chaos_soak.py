#!/usr/bin/env python
"""Randomized chaos soak: every fault kind, every seed, one invariant.

For each ``--seeds`` seed a fresh graph/config is drawn and seven fault
scenarios run against it. The single invariant: **every run either
completes, or is interrupted and resumes to a result bitwise-identical
to an uninterrupted reference run** — and no scenario may leak a
``/dev/shm`` segment or a ``*.tmp.*`` file.

Subprocess scenarios (a real ``python -m repro embed`` per run):

- **kill** — SIGKILL mid-training (OOM-killer analog: no handler, no
  atexit). ``repro runs list`` must fold the dead run to ``orphaned``
  and sweep its debris; ``repro runs resume --latest`` must finish the
  job bitwise.
- **signal** — SIGTERM mid-training → exit 130 + ``interrupted``
  manifest; ``repro runs resume --latest`` finishes bitwise.
- **deadline** — ``--deadline 0`` → exit 124 with
  ``interrupt_reason: deadline``; an explicit ``--resume`` run (without
  the deadline) finishes bitwise.
- **mem_pressure** — the run is given a memory budget *below its own
  baseline RSS*: the pressure watchdog hard-breaches, walks the
  degradation ladder to the cancel rung, and the run exits 130 with
  ``interrupt_reason: resource_pressure``. ``repro runs resume --latest
  --memory-budget <bigger>`` — the raised-ceiling override — recovers
  it bitwise.

In-process scenarios (fault injection inside this interpreter):

- **hang** — a supervised Hogwild worker sleeps forever; the watchdog
  respawns it and all epochs complete.
- **corrupt** — a finished trainer checkpoint is torn on disk; resume
  quarantines it and reproduces the clean result bitwise.
- **enospc** — the first checkpoint fsync raises ``OSError(ENOSPC)``;
  the reclaim-and-retry path must finish the run bitwise with
  ``checkpoint.enospc`` recorded.

Manifests and event streams land in ``--output-dir`` for CI upload and
``repro report`` validation.

Usage:
    PYTHONPATH=src python scripts/chaos_soak.py --seeds 3 --output-dir soak_artifacts
"""

import argparse
import io
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.graph.io import write_edge_list
from repro.obs.manifest import load_manifest
from repro.obs.recorder import ObsConfig, session
from repro.parallel.hogwild import (
    hogwild_epoch_task,
    hogwild_supported,
    train_hogwild,
)
from repro.pipeline import ExecutionContext
from repro.resilience.chaos import FaultInjector
from repro.resilience.supervisor import SupervisorConfig
from repro.walks.engine import RandomWalkConfig, generate_walks

SUPERVISED = SupervisorConfig(
    worker_deadline=2.0, max_respawns=5, poll_interval=0.05
)


def _env():
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    return env


def _shm_names():
    shm = Path("/dev/shm")
    if not shm.is_dir():  # non-Linux
        return set()
    return {p.name for p in shm.iterdir()}


def _tmp_survivors(root):
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(str(p) for p in root.rglob("*") if ".tmp." in p.name)


def _probe_baseline_rss():
    """VmRSS (bytes) of a bare interpreter with the stack imported.

    The mem_pressure scenario budgets *below* this, so the watchdog's
    very first sample is a hard breach regardless of machine or Python
    version — no tuning constant to rot.
    """
    code = (
        "import re, numpy, repro.cli\n"
        "print(re.search(r'VmRSS:\\s+(\\d+)',"
        " open('/proc/self/status').read()).group(1))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=_env(), capture_output=True, text=True
    )
    return int(out.stdout.strip()) * 1024


def _embed_argv(edges, out, ckpt, seed, manifest=None, extra=()):
    argv = [
        "embed", str(edges),
        "--dim", "12", "--walks", "4", "--length", "20",
        "--epochs", "32", "--seed", str(seed), "--log-level", "error",
        "-o", str(out), "--checkpoint-dir", str(ckpt),
    ]
    if manifest is not None:
        argv += ["--metrics-out", str(manifest)]
    return argv + list(extra)


def _run(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv], env=_env(), **kwargs
    )


def _kill_when_checkpointed(proc, ckpt, signum, jitter):
    """Deliver ``signum`` once the first trainer checkpoint is durable."""
    trainer_ckpt = Path(ckpt) / "trainer.ckpt.npz"
    give_up = time.monotonic() + 120
    while (
        not trainer_ckpt.exists()
        and proc.poll() is None
        and time.monotonic() < give_up
    ):
        time.sleep(0.005)
    if proc.poll() is not None:
        return f"run finished (exit {proc.returncode}) before the fault landed"
    time.sleep(jitter)
    if proc.poll() is None:
        proc.send_signal(signum)
    try:
        proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        return "run did not wind down after the signal"
    return None


def _assert_bitwise(ref_out, out, label, failures):
    try:
        with np.load(ref_out) as ref, np.load(out) as res:
            if not np.array_equal(ref["vectors"], res["vectors"]):
                failures.append(f"{label}: result differs from reference")
    except (OSError, KeyError) as exc:
        failures.append(f"{label}: unreadable output ({exc!r})")


def _check_no_debris(label, ckpt, shm_before, failures):
    leaked = _shm_names() - shm_before
    if leaked:
        failures.append(f"{label}: leaked /dev/shm segments {sorted(leaked)}")
    survivors = _tmp_survivors(ckpt)
    if survivors:
        failures.append(f"{label}: tmp files survived: {survivors}")


def _kill_scenario(seed, edges, ref_out, scratch, out_dir, rng):
    """SIGKILL mid-checkpoint → sweep → `runs resume --latest` → bitwise."""
    failures = []
    label = f"seed{seed}.kill"
    ckpt = scratch / f"kill{seed}"
    out = scratch / f"kill{seed}.npz"
    shm_before = _shm_names()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"]
        + _embed_argv(edges, out, ckpt, seed),
        env=_env(),
    )
    err = _kill_when_checkpointed(
        proc, ckpt, signal.SIGKILL, jitter=float(rng.uniform(0, 0.05))
    )
    if err:
        return [f"{label}: {err}"]

    listing = _run(
        ["runs", "list", str(ckpt)], capture_output=True, text=True
    )
    if listing.returncode != 0 or "orphaned" not in listing.stdout:
        failures.append(f"{label}: sweep did not orphan the killed run")
    rc = _run(["runs", "resume", str(ckpt), "--latest"]).returncode
    if rc != 0:
        failures.append(f"{label}: runs resume --latest exited {rc}")
    else:
        _assert_bitwise(ref_out, out, label, failures)
    _check_no_debris(label, ckpt, shm_before, failures)
    print(f"[chaos-soak] {label}: resumed={'ok' if not failures else 'FAIL'}")
    return failures


def _signal_scenario(seed, edges, ref_out, scratch, out_dir, rng):
    """SIGTERM → 130 + interrupted manifest → resume bitwise."""
    failures = []
    label = f"seed{seed}.signal"
    ckpt = scratch / f"signal{seed}"
    out = scratch / f"signal{seed}.npz"
    manifest = out_dir / f"seed{seed}.signal.manifest.json"
    shm_before = _shm_names()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"]
        + _embed_argv(edges, out, ckpt, seed, manifest=manifest),
        env=_env(),
    )
    err = _kill_when_checkpointed(
        proc, ckpt, signal.SIGTERM, jitter=float(rng.uniform(0, 0.05))
    )
    if err:
        return [f"{label}: {err}"]
    if proc.returncode != 130:
        failures.append(f"{label}: expected exit 130, got {proc.returncode}")
    recorded = load_manifest(manifest)
    if recorded["status"] != "interrupted":
        failures.append(f"{label}: manifest status {recorded['status']!r}")
    rc = _run(["runs", "resume", str(ckpt), "--latest"]).returncode
    if rc != 0:
        failures.append(f"{label}: runs resume --latest exited {rc}")
    else:
        _assert_bitwise(ref_out, out, label, failures)
    _check_no_debris(label, ckpt, shm_before, failures)
    print(f"[chaos-soak] {label}: exit=130 resumed={'ok' if not failures else 'FAIL'}")
    return failures


def _deadline_scenario(seed, edges, ref_out, scratch, out_dir, rng):
    """--deadline 0 → 124 → explicit --resume run finishes bitwise."""
    failures = []
    label = f"seed{seed}.deadline"
    ckpt = scratch / f"deadline{seed}"
    out = scratch / f"deadline{seed}.npz"
    manifest = out_dir / f"seed{seed}.deadline.manifest.json"
    shm_before = _shm_names()
    rc = _run(
        _embed_argv(
            edges, out, ckpt, seed, manifest=manifest, extra=["--deadline", "0"]
        )
    ).returncode
    if rc != 124:
        failures.append(f"{label}: expected exit 124, got {rc}")
    recorded = load_manifest(manifest)
    if recorded.get("interrupt_reason") != "deadline":
        failures.append(
            f"{label}: interrupt_reason {recorded.get('interrupt_reason')!r}"
        )
    rc = _run(
        _embed_argv(edges, out, ckpt, seed, extra=["--resume"])
    ).returncode
    if rc != 0:
        failures.append(f"{label}: resume exited {rc}")
    else:
        _assert_bitwise(ref_out, out, label, failures)
    _check_no_debris(label, ckpt, shm_before, failures)
    print(f"[chaos-soak] {label}: exit=124 resumed={'ok' if not failures else 'FAIL'}")
    return failures


def _mem_pressure_scenario(
    seed, edges, ref_out, scratch, out_dir, rng, baseline_rss
):
    """Budget below baseline RSS → watchdog cancels → raised-budget resume."""
    failures = []
    label = f"seed{seed}.mem_pressure"
    ckpt = scratch / f"mem{seed}"
    out = scratch / f"mem{seed}.npz"
    manifest = out_dir / f"seed{seed}.mem_pressure.manifest.json"
    shm_before = _shm_names()
    tight = max(baseline_rss // 2, 16 * 1024 * 1024)
    rc = _run(
        _embed_argv(
            edges, out, ckpt, seed, manifest=manifest,
            extra=["--memory-budget", str(tight), "--budget-interval", "0.02"],
        )
    ).returncode
    if rc != 130:
        failures.append(f"{label}: expected exit 130, got {rc}")
    recorded = load_manifest(manifest)
    if recorded.get("interrupt_reason") != "resource_pressure":
        failures.append(
            f"{label}: interrupt_reason {recorded.get('interrupt_reason')!r}"
        )
    if not recorded.get("pressure"):
        failures.append(f"{label}: no pressure timeline in manifest")
    counters = recorded["metrics"]["counters"]
    if counters.get("guard.breaches", 0) < 1:
        failures.append(f"{label}: guard.breaches never incremented")
    rc = _run(
        [
            "runs", "resume", str(ckpt), "--latest",
            "--memory-budget", str(baseline_rss * 8),
        ]
    ).returncode
    if rc != 0:
        failures.append(f"{label}: raised-budget resume exited {rc}")
    else:
        _assert_bitwise(ref_out, out, label, failures)
    _check_no_debris(label, ckpt, shm_before, failures)
    print(
        f"[chaos-soak] {label}: exit=130 budget={tight >> 20}M "
        f"resumed={'ok' if not failures else 'FAIL'}"
    )
    return failures


def _hang_scenario(seed, corpus, scratch, out_dir):
    """Supervised Hogwild worker hangs; the watchdog respawns it."""
    if not hogwild_supported():
        print(f"[chaos-soak] seed{seed}.hang: no shared memory; skipped")
        return []
    failures = []
    label = f"seed{seed}.hang"
    manifest = out_dir / f"seed{seed}.hang.manifest.json"
    marker = scratch / f"hang{seed}.fired"
    injector = FaultInjector(
        hogwild_epoch_task,
        only_in_subprocess=True,
        once_marker=marker,
        hang_on_calls={1},
        hang_seconds=3600.0,
    )
    cfg = ObsConfig(log_level="error", metrics_out=str(manifest))
    shm_before = _shm_names()
    with session(cfg, run_config={"chaos": label}, stream=io.StringIO()):
        result = train_hogwild(
            corpus,
            TrainConfig(
                dim=12, epochs=3, batch_size=128, seed=seed,
                early_stop=False, workers=2, supervisor=SUPERVISED,
            ),
            task_fn=injector,
        )
    if not marker.exists():
        failures.append(f"{label}: fault never fired")
    if result.epochs_run != 3:
        failures.append(f"{label}: ran {result.epochs_run}/3 epochs")
    respawns = load_manifest(manifest)["metrics"]["counters"].get(
        "supervisor.respawns", 0
    )
    if respawns < 1:
        failures.append(f"{label}: no respawn recorded")
    _check_no_debris(label, scratch, shm_before, failures)
    print(f"[chaos-soak] {label}: respawns={respawns}")
    return failures


def _corrupt_scenario(seed, corpus, scratch, out_dir):
    """Torn trainer checkpoint → quarantine → bitwise-clean restart."""
    failures = []
    label = f"seed{seed}.corrupt"
    cfg = TrainConfig(dim=8, epochs=2, seed=seed, early_stop=False)
    fresh = train_embeddings(corpus, cfg)
    ckpt_dir = scratch / f"corrupt{seed}"
    train_embeddings(
        corpus, cfg, context=ExecutionContext(checkpoint_dir=ckpt_dir)
    )
    victim = ckpt_dir / "trainer.ckpt.npz"
    FaultInjector(lambda: None, corrupt_on_calls={1}, corrupt_path=victim)()
    resumed = train_embeddings(
        corpus, cfg, context=ExecutionContext(checkpoint_dir=ckpt_dir, resume=True)
    )
    quarantined = [p.name for p in ckpt_dir.iterdir() if ".corrupt." in p.name]
    if not quarantined:
        failures.append(f"{label}: checkpoint was not quarantined")
    if not np.array_equal(resumed.vectors, fresh.vectors):
        failures.append(f"{label}: restarted result differs from fresh run")
    print(f"[chaos-soak] {label}: quarantined={len(quarantined)}")
    return failures


def _enospc_scenario(seed, corpus, scratch, out_dir):
    """First checkpoint fsync hits ENOSPC; reclaim-and-retry finishes."""
    failures = []
    label = f"seed{seed}.enospc"
    manifest = out_dir / f"seed{seed}.enospc.manifest.json"
    cfg = TrainConfig(dim=8, epochs=2, seed=seed, early_stop=False)
    fresh = train_embeddings(corpus, cfg)
    ckpt_dir = scratch / f"enospc{seed}"
    obs = ObsConfig(log_level="error", metrics_out=str(manifest))
    real_fsync = os.fsync
    os.fsync = FaultInjector(real_fsync, enospc_on_calls={1})
    try:
        with session(obs, run_config={"chaos": label}, stream=io.StringIO()):
            result = train_embeddings(
                corpus, cfg, context=ExecutionContext(checkpoint_dir=ckpt_dir)
            )
    finally:
        os.fsync = real_fsync
    if not np.array_equal(result.vectors, fresh.vectors):
        failures.append(f"{label}: result differs after ENOSPC retry")
    counters = load_manifest(manifest)["metrics"]["counters"]
    if counters.get("checkpoint.enospc", 0) < 1:
        failures.append(f"{label}: checkpoint.enospc never incremented")
    survivors = _tmp_survivors(ckpt_dir)
    if survivors:
        failures.append(f"{label}: tmp files survived: {survivors}")
    print(f"[chaos-soak] {label}: enospc_retries={counters.get('checkpoint.enospc')}")
    return failures


def _soak_one_seed(seed, scratch, out_dir, baseline_rss):
    rng = np.random.default_rng(seed)
    graph = planted_partition(
        n=60, groups=3, alpha=0.7, inter_edges=8, seed=100 + seed
    )
    edges = scratch / f"graph{seed}.edges"
    write_edge_list(graph, edges)

    # One uninterrupted reference per seed; every subprocess scenario
    # must reproduce it bitwise after its fault + resume.
    ref_out = scratch / f"ref{seed}.npz"
    rc = _run(
        _embed_argv(edges, ref_out, scratch / f"ref{seed}", seed)
    ).returncode
    if rc != 0:
        return [f"seed{seed}: reference run failed (exit {rc})"]

    corpus = generate_walks(
        graph, RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=seed)
    )
    failures = []
    failures += _kill_scenario(seed, edges, ref_out, scratch, out_dir, rng)
    failures += _signal_scenario(seed, edges, ref_out, scratch, out_dir, rng)
    failures += _deadline_scenario(seed, edges, ref_out, scratch, out_dir, rng)
    failures += _mem_pressure_scenario(
        seed, edges, ref_out, scratch, out_dir, rng, baseline_rss
    )
    failures += _hang_scenario(seed, corpus, scratch, out_dir)
    failures += _corrupt_scenario(seed, corpus, scratch, out_dir)
    failures += _enospc_scenario(seed, corpus, scratch, out_dir)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=3, help="seed count")
    parser.add_argument(
        "--output-dir",
        default="soak_artifacts",
        help="where run manifests land (uploaded as CI artifacts)",
    )
    args = parser.parse_args(argv)

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    baseline_rss = _probe_baseline_rss()
    print(f"[chaos-soak] baseline rss ~{baseline_rss >> 20}M")

    failures = []
    with tempfile.TemporaryDirectory() as scratch_str:
        scratch = Path(scratch_str)
        for seed in range(args.seeds):
            failures += _soak_one_seed(seed, scratch, out_dir, baseline_rss)

    elapsed = time.monotonic() - started
    summary = {
        "seeds": args.seeds,
        "elapsed_seconds": round(elapsed, 1),
        "failures": failures,
    }
    (out_dir / "soak_summary.json").write_text(json.dumps(summary, indent=2))
    if failures:
        for failure in failures:
            print(f"[chaos-soak] FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[chaos-soak] all scenarios held the invariant ({elapsed:.0f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
