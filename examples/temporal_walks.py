#!/usr/bin/env python
"""Constrained walks: temporal (time-respecting) walks vs unconstrained.

Section II-A motivates constrained walks with a service-request network:
each request traces a timestamped path client -> frontend -> backend, and
a vertex's "context" should be the other nodes serving *the same
request*. This example builds that network and measures how often each
walk variant reproduces a real request path — the property that makes the
temporal constraint matter.

Run:  python examples/temporal_walks.py
"""

from __future__ import annotations

import numpy as np

from repro import RandomWalkConfig, WalkMode, generate_walks
from repro.graph.core import EdgeList, Graph

NUM_CLIENTS, NUM_FRONTENDS, NUM_BACKENDS = 10, 5, 5


def build_request_network(seed: int = 0) -> tuple[Graph, set[tuple[int, int, int]]]:
    """Timestamped request paths through two service tiers.

    Returns the graph and the set of true (client, frontend, backend)
    request triples. Each request's two hops are 1 time unit apart;
    distinct requests are 2 units apart, so a time window of 1.5 admits
    only same-request continuations.
    """
    rng = np.random.default_rng(seed)
    src, dst, t = [], [], []
    triples: set[tuple[int, int, int]] = set()
    stamp = 0.0
    for _request in range(80):
        client = int(rng.integers(0, NUM_CLIENTS))
        frontend = NUM_CLIENTS + int(rng.integers(0, NUM_FRONTENDS))
        backend = NUM_CLIENTS + NUM_FRONTENDS + int(rng.integers(0, NUM_BACKENDS))
        src += [client, frontend]
        dst += [frontend, backend]
        t += [stamp, stamp + 1.0]
        triples.add((client, frontend, backend))
        stamp += 2.0
    n = NUM_CLIENTS + NUM_FRONTENDS + NUM_BACKENDS
    graph = Graph(
        n,
        EdgeList(
            np.asarray(src), np.asarray(dst), np.ones(len(src)), np.asarray(t)
        ),
        directed=True,
    )
    return graph, triples


def request_path_fidelity(corpus, triples) -> float:
    """Fraction of 3-vertex walks from a client that are real requests."""
    total = hits = 0
    for walk in corpus.sentences():
        if walk.shape[0] != 3 or walk[0] >= NUM_CLIENTS:
            continue
        total += 1
        if (int(walk[0]), int(walk[1]), int(walk[2])) in triples:
            hits += 1
    return hits / total if total else float("nan")


def main() -> None:
    graph, triples = build_request_network()
    print(f"request network: {graph}; {len(triples)} distinct request paths\n")

    configs = [
        ("uniform (unconstrained)", WalkMode.UNIFORM, None),
        ("temporal", WalkMode.TEMPORAL, None),
        ("temporal + window 1.5", WalkMode.TEMPORAL, 1.5),
    ]
    print(f"{'walk variant':<26}{'request-path fidelity':>24}")
    print("-" * 50)
    for label, mode, window in configs:
        cfg = RandomWalkConfig(
            walks_per_vertex=50,
            walk_length=3,
            seed=0,
            mode=mode,
            time_window=window,
            start_vertices=np.arange(NUM_CLIENTS),
        )
        corpus = generate_walks(graph, cfg)
        fidelity = request_path_fidelity(corpus, triples)
        print(f"{label:<26}{fidelity:>24.3f}")

    print(
        "\nThe unconstrained walk pairs a request's frontend with an\n"
        "arbitrary backend; plain temporal walks forbid going back in\n"
        "time; the windowed temporal walk reproduces real request paths\n"
        "(fidelity 1.0) — exactly the 'context = nodes serving the same\n"
        "request' construction from the paper's Section II."
    )


if __name__ == "__main__":
    main()
