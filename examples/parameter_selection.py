#!/usr/bin/env python
"""Principled parameter selection (paper §VII open question, answered).

Demonstrates the label-free procedures: diagnose the walk corpus, search
the walk budget for stability, select the embedding dimension by
silhouette (optionally trading against training time), and verify the
chosen parameters against ground truth the selector never saw.

Run:  python examples/parameter_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import V2V, V2VConfig, generate_walks, RandomWalkConfig
from repro.core.selection import select_dimension, select_walk_budget
from repro.datasets.synthetic import community_benchmark
from repro.ml import KMeans, pairwise_precision_recall
from repro.walks.stats import corpus_stats, crossing_rate

K = 6


def main() -> None:
    graph = community_benchmark(alpha=0.4, n=300, groups=K, inter_edges=60, seed=5)
    truth = graph.vertex_labels("community")
    print(f"graph: {graph}\n")

    # --- 1. corpus diagnostics -----------------------------------------
    corpus = generate_walks(
        graph, RandomWalkConfig(walks_per_vertex=8, walk_length=30, seed=0)
    )
    stats = corpus_stats(corpus)
    print(
        f"corpus: {stats.num_tokens} tokens, coverage {stats.coverage:.2f}, "
        f"visit-entropy ratio {stats.entropy_ratio:.3f}"
    )
    print(
        f"community crossing rate {crossing_rate(corpus, truth):.3f} "
        "(fraction of walk steps leaving a community — low is good)\n"
    )

    # --- 2. walk budget: grow until the geometry stabilizes -------------
    budget, steps = select_walk_budget(
        graph, walk_length=30, start=1, max_walks_per_vertex=16,
        stability_threshold=0.35, dim=24, seed=0,
    )
    print("walk-budget search (10-NN overlap with the previous budget):")
    for s in steps:
        overlap = "--" if np.isnan(s.overlap_with_previous) else f"{s.overlap_with_previous:.3f}"
        print(f"  t={s.walks_per_vertex:<3d} tokens={s.tokens:<8d} overlap={overlap}")
    print(f"chosen walks_per_vertex: {budget}\n")

    # --- 3. dimension: silhouette, then with a time penalty -------------
    base = V2VConfig(walks_per_vertex=budget, walk_length=30, epochs=6,
                     tol=1e-2, patience=2, seed=0)
    best, scores = select_dimension(
        graph, dims=(8, 24, 64), k=K, config=base, seed=0
    )
    print("dimension selection (silhouette of k-means clusters):")
    for s in scores:
        print(f"  dim={s.dim:<4d} score={s.score:.3f} train={s.train_seconds:.1f}s")
    print(f"chosen (pure quality): {best}")

    cheap, _ = select_dimension(
        graph, dims=(8, 24, 64), k=K, config=base, seed=0, time_penalty=0.05
    )
    print(f"chosen (quality - 0.05 x seconds): {cheap}\n")

    # --- 4. validate the unsupervised choice against ground truth -------
    model = V2V(base.with_dim(best)).fit(graph)
    labels = KMeans(K, n_init=30, seed=0).fit_predict(model.vectors)
    p, r = pairwise_precision_recall(truth, labels)
    print(f"validation with chosen parameters: precision {p:.3f}, recall {r:.3f}")


if __name__ == "__main__":
    main()
