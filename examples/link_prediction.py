#!/usr/bin/env python
"""Link prediction: "predicting relationships between pairs of vertices".

The paper's conclusion names this as a V2V application without
evaluating it; this example runs the standard protocol — hide 30% of
edges, embed the residual graph, score held-out edges vs non-edges with
a logistic model over pair features — and sweeps the feature operator.

Run:  python examples/link_prediction.py
"""

from __future__ import annotations

from repro.core.model import V2VConfig
from repro.datasets.synthetic import community_benchmark
from repro.tasks.link_prediction import (
    EDGE_OPERATORS,
    link_prediction_experiment,
)


def main() -> None:
    graph = community_benchmark(alpha=0.3, n=300, groups=6, inter_edges=60, seed=2)
    print(f"graph: {graph}; hiding 30% of edges as test positives\n")

    config = V2VConfig(
        dim=32, walks_per_vertex=8, walk_length=30, epochs=5, seed=0
    )
    print(f"{'operator':<12}{'ROC AUC':>10}")
    print("-" * 22)
    for operator in EDGE_OPERATORS:
        result = link_prediction_experiment(
            graph, config=config, operator=operator, test_fraction=0.3, seed=0
        )
        print(f"{operator:<12}{result.auc:>10.3f}")

    print(
        "\nHadamard/L1/L2 encode per-dimension endpoint agreement and score"
        "\nwell; 'average' cannot distinguish a pair from its midpoint and"
        "\ntrails — the same ordering node2vec reports on real networks."
    )


if __name__ == "__main__":
    main()
