#!/usr/bin/env python
"""Robustness to missing and incorrect data (paper §VII, investigated).

The paper conjectures V2V degrades gracefully under data errors. This
example sweeps edge dropout and random rewiring, comparing V2V + k-means
against CNM, and shows warm-started re-training (`V2V.refit`) recovering
quickly after the graph changes.

Run:  python examples/robustness_study.py
"""

from __future__ import annotations

import numpy as np

from repro import V2V, V2VConfig
from repro.community import cnm_communities
from repro.datasets.synthetic import community_benchmark
from repro.graph.perturb import drop_edges, rewire_edges
from repro.ml import KMeans, pairwise_f1

CFG = V2VConfig(dim=24, walks_per_vertex=8, walk_length=30, epochs=6,
                tol=1e-2, patience=2, seed=0)
K = 6


def v2v_f1(graph, truth):
    model = V2V(CFG).fit(graph)
    labels = KMeans(K, n_init=20, seed=0).fit_predict(model.vectors)
    return pairwise_f1(truth, labels), model


def main() -> None:
    graph = community_benchmark(alpha=0.4, n=300, groups=K, inter_edges=60, seed=3)
    truth = graph.vertex_labels("community")
    print(f"graph: {graph}\n")

    print(f"{'perturbation':<16}{'level':>7}{'V2V F1':>9}{'CNM F1':>9}")
    print("-" * 41)
    for kind, perturb in (("drop", drop_edges), ("rewire", rewire_edges)):
        for level in (0.0, 0.2, 0.4, 0.6):
            noisy = perturb(graph, level, seed=1)
            f1, _ = v2v_f1(noisy, truth)
            cnm_f1 = pairwise_f1(
                truth, cnm_communities(noisy, target_communities=K)
            )
            print(f"{kind:<16}{level:>7.1f}{f1:>9.3f}{cnm_f1:>9.3f}")

    # Incremental recovery: the graph loses 20% of its edges; instead of
    # re-training from scratch, warm-start from the existing vectors.
    print("\nincremental re-training after 20% edge loss:")
    _, model = v2v_f1(graph, truth)
    cold_epochs = model.result.epochs_run
    noisy = drop_edges(graph, 0.2, seed=2)
    model.refit(noisy)
    labels = KMeans(K, n_init=20, seed=0).fit_predict(model.vectors)
    print(
        f"  cold-start epochs {cold_epochs}, warm refit epochs "
        f"{model.result.epochs_run}, post-refit F1 "
        f"{pairwise_f1(truth, labels):.3f}"
    )


if __name__ == "__main__":
    main()
