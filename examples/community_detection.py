#!/usr/bin/env python
"""Community detection: V2V + k-means vs graph-native algorithms.

Reproduces the Section III comparison at laptop scale: detect planted
communities via (a) clustering V2V embeddings, (b) CNM greedy modularity,
(c) Girvan–Newman — and report pairwise precision/recall plus phase
timings, the quantities of the paper's Table I.

Run:  python examples/community_detection.py
"""

from __future__ import annotations

import time

from repro import V2VConfig
from repro.community import (
    V2VCommunityDetector,
    cnm_communities,
    girvan_newman_communities,
    louvain_communities,
)
from repro.datasets.synthetic import community_benchmark
from repro.ml import pairwise_precision_recall


def main() -> None:
    k = 6
    graph = community_benchmark(alpha=0.4, n=300, groups=k, inter_edges=80, seed=1)
    truth = graph.vertex_labels("community")
    print(f"graph: {graph}, {k} planted communities\n")
    rows = []

    # --- V2V + k-means (the paper's approach) -------------------------
    detector = V2VCommunityDetector(
        k,
        config=V2VConfig(
            dim=16, walks_per_vertex=10, walk_length=40, epochs=5, seed=0
        ),
        n_init=100,  # paper: repeat Lloyd 100 times, keep the best
    )
    result = detector.detect(graph)
    p, r = pairwise_precision_recall(truth, result.membership)
    rows.append(
        ("V2V (train)", p, r, result.train_seconds)
    )
    rows.append(("V2V (cluster)", p, r, result.cluster_seconds))

    # --- CNM ------------------------------------------------------------
    t0 = time.perf_counter()
    cnm = cnm_communities(graph, target_communities=k)
    cnm_t = time.perf_counter() - t0
    p, r = pairwise_precision_recall(truth, cnm)
    rows.append(("CNM", p, r, cnm_t))

    # --- Girvan–Newman (sampled betweenness keeps it minutes-not-hours) -
    t0 = time.perf_counter()
    gn = girvan_newman_communities(
        graph, target_communities=k, sample_sources=60, seed=0
    )
    gn_t = time.perf_counter() - t0
    p, r = pairwise_precision_recall(truth, gn)
    rows.append(("Girvan-Newman", p, r, gn_t))

    # --- Louvain (extension baseline) ------------------------------------
    t0 = time.perf_counter()
    lv = louvain_communities(graph, seed=0)
    lv_t = time.perf_counter() - t0
    p, r = pairwise_precision_recall(truth, lv)
    rows.append(("Louvain", p, r, lv_t))

    print(f"{'method':<16}{'precision':>10}{'recall':>10}{'seconds':>12}")
    print("-" * 48)
    for name, p, r, t in rows:
        print(f"{name:<16}{p:>10.3f}{r:>10.3f}{t:>12.4f}")
    print(
        "\nNote the Table I shape: graph algorithms are (near-)exact but "
        "their runtime dwarfs the sub-second k-means step; V2V's training "
        "cost is one-time and reusable across tasks."
    )


if __name__ == "__main__":
    main()
