#!/usr/bin/env python
"""Quickstart: embed a graph with V2V and inspect the result.

Builds the paper's synthetic community benchmark, learns vertex
embeddings, and shows similarity queries plus an ASCII PCA view of the
embedding space.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import V2V, V2VConfig
from repro.datasets.synthetic import community_benchmark
from repro.viz.ascii import render_scatter
from repro.viz.projection import pca_projection, separation_ratio


def main() -> None:
    # 1. A graph with known community structure (paper Section III-A,
    #    scaled to run in seconds).
    graph = community_benchmark(alpha=0.5, n=300, groups=6, inter_edges=60, seed=7)
    print(f"graph: {graph}")

    # 2. Learn 32-dimensional vertex embeddings. All paper knobs are on
    #    V2VConfig: window (n), walks per vertex (t), walk length (l),
    #    CBOW vs SkipGram, negative sampling vs hierarchical softmax.
    config = V2VConfig(
        dim=32, walks_per_vertex=10, walk_length=40, epochs=5, seed=0
    )
    model = V2V(config).fit(graph)
    result = model.result
    print(
        f"trained {model.vectors.shape} vectors in {result.train_seconds:.1f}s "
        f"({result.epochs_run} epochs, final loss {result.loss_history[-1]:.3f})"
    )

    # 3. Similarity queries: nearest neighbors land in the same community.
    truth = graph.vertex_labels("community")
    vertex = 0
    print(f"\nvertex {vertex} (community {truth[vertex]}) nearest neighbors:")
    for other, sim in model.most_similar(vertex, topn=5):
        print(f"  vertex {other:4d}  community {truth[other]}  cosine {sim:.3f}")

    # 4. Visualize: project to 2-D with PCA and render as ASCII. Glyphs
    #    are ground-truth communities — the embedding was never shown them.
    proj = pca_projection(model.vectors, 2)
    print(f"\nPCA projection (separation ratio {separation_ratio(proj, truth):.2f}):")
    print(render_scatter(proj, truth, width=70, height=20))


if __name__ == "__main__":
    main()
