#!/usr/bin/env python
"""Flight-route visualization: the paper's Section IV on synthetic OpenFlights.

Embeds a directed airport-route graph (no geographic features given to
the learner), projects with PCA, and shows that continents emerge as
clusters — rendered as ASCII and exported as CSV figure data.

Run:  python examples/flight_visualization.py
"""

from __future__ import annotations

from pathlib import Path

from repro import V2V, V2VConfig
from repro.datasets.openflights import OpenFlightsSpec, synthetic_openflights
from repro.ml import silhouette_score
from repro.viz.ascii import render_scatter
from repro.viz.projection import pca_projection, projection_to_csv, separation_ratio


def main() -> None:
    # Synthetic OpenFlights (see DESIGN.md §3 for the substitution).
    graph = synthetic_openflights(OpenFlightsSpec(num_airports=600, seed=4))
    continents = graph.vertex_labels("continent")
    print(f"flight graph: {graph}")
    print(f"airports per continent: "
          + ", ".join(
              f"{name}={int((continents == name).sum())}"
              for name in sorted(set(continents.tolist()))
          ))

    # Embed. The walk follows route directions (directed walk variant).
    config = V2VConfig(
        dim=50, walks_per_vertex=8, walk_length=40, epochs=5, seed=0
    )
    model = V2V(config).fit(graph)
    print(f"\ntrained in {model.result.train_seconds:.1f}s")

    # PCA 2-D (Fig 8a) and 3-D (Fig 8b) projections.
    proj2 = pca_projection(model.vectors, 2)
    proj3 = pca_projection(model.vectors, 3)
    print(
        f"continent separation: ratio={separation_ratio(proj2, continents):.2f}, "
        f"silhouette={silhouette_score(model.vectors, continents):.3f}"
    )

    out2 = Path("fig8a_openflights_pca2d.csv")
    out3 = Path("fig8b_openflights_pca3d.csv")
    projection_to_csv(proj2, continents, out2, label_name="continent")
    projection_to_csv(proj3, continents, out3, label_name="continent")
    print(f"figure data written to {out2} and {out3}")

    print("\nPCA 2-D projection, one glyph per continent:")
    print(render_scatter(proj2, continents, width=72, height=22))


if __name__ == "__main__":
    main()
