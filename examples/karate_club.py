#!/usr/bin/env python
"""Zachary's karate club: every method on the most famous tiny graph.

Embeds the 34-member club, detects the two factions with all the
pipelines in the library, and renders the embedding as ASCII — a
30-second end-to-end tour on real (1977!) data.

Run:  python examples/karate_club.py
"""

from __future__ import annotations

import numpy as np

from repro import V2V, V2VConfig
from repro.community import cnm_communities, louvain_communities
from repro.datasets import karate_club
from repro.ml import KMeans, adjusted_rand_index, knn_graph
from repro.ml.spectral import spectral_communities
from repro.viz import pca_projection, render_scatter


def main() -> None:
    graph = karate_club()
    truth = graph.vertex_labels("faction")
    print(f"karate club: {graph} — instructor v0 vs administrator v33\n")

    model = V2V(
        V2VConfig(
            dim=8, walks_per_vertex=20, walk_length=20, epochs=10,
            early_stop=False, seed=0,
        )
    ).fit(graph)

    methods = {
        "V2V + k-means": KMeans(2, n_init=30, seed=0).fit_predict(model.vectors),
        "V2V + kNN + Louvain": louvain_communities(
            knn_graph(model.vectors, k=6), seed=0
        ),
        "CNM": cnm_communities(graph, target_communities=2),
        "Louvain": louvain_communities(graph, seed=0),
        "spectral": spectral_communities(graph, 2, seed=0),
    }
    print(f"{'method':<22}{'ARI vs factions':>16}{'groups':>8}")
    print("-" * 46)
    for name, labels in methods.items():
        ari = adjusted_rand_index(truth, labels)
        print(f"{name:<22}{ari:>16.3f}{labels.max() + 1:>8}")

    proj = pca_projection(model.vectors, 2)
    print("\nembedding (o = instructor's faction, x = administrator's):")
    print(render_scatter(proj, truth, width=60, height=16))


if __name__ == "__main__":
    main()
