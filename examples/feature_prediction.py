#!/usr/bin/env python
"""Feature prediction: recover hidden airport country labels (Section V).

Trains V2V on the synthetic flight graph, hides country labels, and
predicts them with cosine k-NN under 10-fold cross validation — sweeping
the dimension and k exactly like Figs 9 and 10.

Run:  python examples/feature_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro import V2V, V2VConfig
from repro.datasets.openflights import OpenFlightsSpec, synthetic_openflights
from repro.ml import cross_validate_knn
from repro.viz.ascii import render_series


def main() -> None:
    graph = synthetic_openflights(
        OpenFlightsSpec(num_airports=500, countries_per_continent=4, seed=9)
    )
    countries = graph.vertex_labels("country")
    num_classes = len(set(countries.tolist()))
    chance = max(
        (countries == c).mean() for c in set(countries.tolist())
    )
    print(f"graph: {graph}; predicting {num_classes} countries "
          f"(majority-class baseline {chance:.3f})")

    # Paper protocol: one walk corpus, many dimensions trained on it.
    base = V2VConfig(dim=10, walks_per_vertex=8, walk_length=40, epochs=5, seed=0)
    corpus = None

    dims = [10, 20, 40, 60, 100]
    acc_by_dim = []
    for dim in dims:
        model = V2V(base.with_dim(dim))
        if corpus is None:
            model.fit(graph)
            corpus = model.corpus
        else:
            model.fit_corpus(corpus)
        acc = cross_validate_knn(
            model.vectors, countries, k=3, metric="cosine",
            n_splits=10, repeats=2, seed=0,
        )
        acc_by_dim.append(acc)
        print(f"  dim={dim:4d}  10-fold accuracy={acc:.3f}")

    print("\naccuracy vs dimension (Fig 9 shape — rises, peaks, declines):")
    print(render_series(np.asarray(dims, float), {"acc": np.asarray(acc_by_dim)},
                        width=60, height=10))

    # Fig 10: accuracy vs k at the best dimension.
    best_dim = dims[int(np.argmax(acc_by_dim))]
    model = V2V(base.with_dim(best_dim)).fit_corpus(corpus)
    print(f"\naccuracy vs k at dim={best_dim}:")
    for k in range(1, 11):
        acc = cross_validate_knn(
            model.vectors, countries, k=k, n_splits=10, seed=0
        )
        print(f"  k={k:2d}  accuracy={acc:.3f}")


if __name__ == "__main__":
    main()
