"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's three applications plus the data plumbing:

- ``embed``    — read an edge list, train V2V, save vectors (.npz).
- ``detect``   — embed (or load vectors) and k-means communities to TSV.
- ``predict``  — k-NN label prediction with k-fold cross validation.
- ``layout``   — ForceAtlas coordinates to CSV.
- ``generate`` — write a synthetic benchmark graph to an edge-list file.
- ``shard``    — out-of-core graph stores: ``shard build`` partitions an
  edge list into a memory-mapped CSR store (walk over it with
  ``--graph-store``), ``shard verify`` re-hashes one against its
  integrity record. See docs/scaling.md.
- ``report``   — human summary of a run manifest (``--metrics-out``);
  ``--trace-export`` converts the event stream to Chrome Trace JSON and
  ``--compare`` diffs two manifests with regression highlighting.
- ``top``      — live monitor for a run started with ``--status-file``.
- ``runs``     — the crash-safe run registry: ``runs list`` shows every
  run journaled under a checkpoint directory (sweeping orphans first),
  ``runs resume --latest`` replays the most recent interrupted run with
  its original flags plus ``--resume``.

Every command takes ``--seed`` and is exactly reproducible.

Telemetry: every command runs inside an observability session
(:func:`repro.obs.session`). stdout carries command results only;
structured logs go to stderr (``--log-level``) and, machine-readably, to
``--log-json``; ``--metrics-out`` writes the run manifest on exit.
``--no-telemetry`` opts out entirely (the no-op recorder).

Lifecycle: SIGTERM/SIGINT request a cooperative shutdown that finishes
the current checkpointable unit, writes a final checkpoint, and exits
130; a second signal hard-exits immediately. ``--deadline SECONDS``
bounds the run's wall clock the same way with exit code 124. See
docs/resilience.md ("Run lifecycle") for the full exit-code table.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.obs.logging import get_logger

__all__ = ["main", "build_parser", "add_runtime_flags", "runtime_from_args"]

_log = get_logger("cli")


def _size_arg(text: str) -> int:
    """argparse type for ``--memory-budget``/``--disk-budget`` sizes."""
    from repro.resilience.guard import parse_size

    return parse_size(text)


def add_runtime_flags(
    parser: argparse.ArgumentParser,
    *,
    checkpointing: bool = False,
    workers: bool = False,
) -> None:
    """Attach the shared runtime flags to a subcommand parser.

    Telemetry flags are always added; ``checkpointing`` adds
    ``--checkpoint-dir``/``--resume`` and ``workers`` adds
    ``--walk-workers``/``--worker-deadline``/``--max-respawns``.
    :func:`runtime_from_args` turns the parsed result into the
    :class:`repro.pipeline.ExecutionContext` commands run under.
    """
    if checkpointing:
        parser.add_argument(
            "--checkpoint-dir",
            default=None,
            help="directory for atomic walk/trainer checkpoints (durable runs)",
        )
        parser.add_argument(
            "--resume",
            action="store_true",
            help="continue from the checkpoints in --checkpoint-dir",
        )
    if workers:
        parser.add_argument(
            "--walk-workers",
            type=int,
            default=1,
            help="processes for walk generation "
            "(0 = one per available core; walks transfer via shared memory)",
        )
        parser.add_argument(
            "--worker-deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="supervise parallel workers: kill and respawn any worker "
            "whose heartbeat goes silent for SECONDS (default: no supervision)",
        )
        parser.add_argument(
            "--max-respawns",
            type=int,
            default=3,
            help="respawn budget per worker-count rung before degrading to "
            "fewer workers (requires --worker-deadline; default: 3)",
        )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole run: on expiry the run "
        "stops at the next checkpoint boundary and exits 124 "
        "(resume later with --resume)",
    )
    b = parser.add_argument_group(
        "resource budgets",
        "preflight footprint check + runtime pressure watchdog "
        "(repro.resilience.guard); sizes accept suffixes K/M/G/T",
    )
    b.add_argument(
        "--memory-budget",
        type=_size_arg,
        default=None,
        metavar="SIZE",
        help="peak-RSS ceiling (e.g. 2G): estimated overruns fail fast or "
        "auto-degrade; runtime breaches drive the degradation ladder",
    )
    b.add_argument(
        "--disk-budget",
        type=_size_arg,
        default=None,
        metavar="SIZE",
        help="checkpoint-directory disk ceiling (e.g. 500M)",
    )
    b.add_argument(
        "--strict-budget",
        action="store_true",
        help="fail fast on an estimated overrun instead of auto-degrading "
        "workers to fit",
    )
    b.add_argument(
        "--budget-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="pressure watchdog poll interval (default: 0.5)",
    )
    g = parser.add_argument_group("telemetry")
    g.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="warning",
        help="verbosity of the human log on stderr (default: warning)",
    )
    g.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="also write every event (DEBUG and up) as JSONL to PATH",
    )
    g.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run manifest (config + final metrics) to PATH",
    )
    g.add_argument(
        "--trace",
        action="store_true",
        help="mirror span begin/end events on the human sink",
    )
    g.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable observability entirely (no-op recorder)",
    )
    g.add_argument(
        "--profile",
        action="store_true",
        help="sample wall-clock stacks per pipeline stage and per worker; "
        "summaries land in the --metrics-out manifest",
    )
    g.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="sampling rate for --profile (default: 97 Hz)",
    )
    g.add_argument(
        "--status-file",
        default=None,
        metavar="PATH",
        help="keep a live status document at PATH for `repro top`",
    )


def runtime_from_args(args):
    """Build the :class:`repro.pipeline.ExecutionContext` for a command.

    Reads the flags :func:`add_runtime_flags` declares; flags a command
    didn't opt into fall back to their inert defaults, so this is safe to
    call for every subcommand.
    """
    from repro.parallel.pool import resolve_workers
    from repro.pipeline.context import ExecutionContext
    from repro.resilience.supervisor import SupervisorConfig

    supervisor = None
    if getattr(args, "worker_deadline", None) is not None:
        supervisor = SupervisorConfig(
            worker_deadline=args.worker_deadline,
            max_respawns=getattr(args, "max_respawns", 3),
        )
    budget = None
    memory_budget = getattr(args, "memory_budget", None)
    disk_budget = getattr(args, "disk_budget", None)
    if memory_budget is not None or disk_budget is not None:
        from repro.resilience.guard import ResourceBudget

        budget = ResourceBudget(
            memory_bytes=memory_budget,
            disk_bytes=disk_budget,
            auto_degrade=not getattr(args, "strict_budget", False),
            interval=getattr(args, "budget_interval", 0.5),
        )
    token, deadline = getattr(args, "_lifecycle", (None, None))
    return ExecutionContext(
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        resume=getattr(args, "resume", False),
        workers=resolve_workers(getattr(args, "walk_workers", 1)),
        shards=getattr(args, "shards", None),
        supervisor=supervisor,
        seed=getattr(args, "seed", None),
        cancellation=token,
        deadline=deadline,
        budget=budget,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="V2V graph embeddings (IPDPSW 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_walk_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dim", type=int, default=50, help="embedding dimension")
        p.add_argument("--walks", type=int, default=10, help="walks per vertex (t)")
        p.add_argument("--length", type=int, default=80, help="walk length (l)")
        p.add_argument("--window", type=int, default=5, help="context window (n)")
        p.add_argument("--epochs", type=int, default=5)
        p.add_argument(
            "--mode",
            choices=["uniform", "weighted", "vertex_weighted", "temporal", "node2vec"],
            default="uniform",
        )
        p.add_argument("--time-window", type=float, default=None)
        p.add_argument("--p", type=float, default=1.0, help="node2vec return bias")
        p.add_argument("--q", type=float, default=1.0, help="node2vec in-out bias")
        p.add_argument("--seed", type=int, default=0)

    def add_store_args(p: argparse.ArgumentParser) -> None:
        s = p.add_argument_group(
            "out-of-core graph store",
            "walk over a memory-mapped CSR store (repro.graph.store) "
            "instead of loading the graph into RAM; see docs/scaling.md",
        )
        s.add_argument(
            "--graph-store",
            default=None,
            metavar="DIR",
            help="graph store directory (`repro shard build`); built from "
            "the positional graph on first use when DIR does not exist",
        )
        s.add_argument(
            "--shards",
            type=int,
            default=None,
            metavar="N",
            help="shard count when auto-building --graph-store (default 4), "
            "and a cap on concurrent shard tasks per walk exchange round",
        )

    p_embed = sub.add_parser("embed", help="train V2V vectors from an edge list")
    p_embed.add_argument("graph", help="edge-list file (src dst [w [t]])")
    p_embed.add_argument("-o", "--output", required=True, help="output .npz")
    p_embed.add_argument("--directed", action="store_true")
    p_embed.add_argument(
        "--train-workers",
        type=int,
        default=1,
        help="Hogwild training processes over shared weight matrices "
        "(1 = deterministic serial trainer, 0 = one per available core)",
    )
    p_embed.add_argument(
        "--on-error",
        choices=["strict", "skip", "collect"],
        default="strict",
        help="edge-list parse policy: fail fast, drop bad lines, or "
        "drop-and-report",
    )
    add_walk_args(p_embed)
    add_store_args(p_embed)

    p_detect = sub.add_parser("detect", help="detect communities")
    p_detect.add_argument("graph", help="edge-list file")
    p_detect.add_argument("-k", type=int, required=True, help="community count")
    p_detect.add_argument("-o", "--output", required=True, help="output TSV")
    p_detect.add_argument("--directed", action="store_true")
    p_detect.add_argument(
        "--method",
        choices=["v2v", "cnm", "girvan-newman", "louvain"],
        default="v2v",
    )
    p_detect.add_argument("--restarts", type=int, default=100)
    add_walk_args(p_detect)
    add_store_args(p_detect)

    p_predict = sub.add_parser(
        "predict", help="cross-validated k-NN label prediction"
    )
    p_predict.add_argument("vectors", help=".npz written by `embed`")
    p_predict.add_argument("labels", help="one label per line, vertex order")
    p_predict.add_argument("-k", type=int, default=3, help="neighbors")
    p_predict.add_argument("--folds", type=int, default=10)
    p_predict.add_argument("--repeats", type=int, default=1)
    p_predict.add_argument("--seed", type=int, default=0)

    p_link = sub.add_parser(
        "linkpred", help="link-prediction experiment (AUC on held-out edges)"
    )
    p_link.add_argument("graph", help="edge-list file")
    p_link.add_argument("--directed", action="store_true")
    p_link.add_argument(
        "--operator",
        choices=["hadamard", "average", "l1", "l2"],
        default="hadamard",
    )
    p_link.add_argument("--test-fraction", type=float, default=0.3)
    add_walk_args(p_link)

    p_shard = sub.add_parser(
        "shard", help="build / inspect out-of-core graph stores"
    )
    shard_sub = p_shard.add_subparsers(dest="shard_command", required=True)
    p_shard_build = shard_sub.add_parser(
        "build",
        help="partition an edge list into a memory-mapped CSR store",
    )
    p_shard_build.add_argument("graph", help="edge-list file (src dst [w [t]])")
    p_shard_build.add_argument(
        "-o", "--output", required=True, help="store directory (must not exist)"
    )
    p_shard_build.add_argument(
        "--shards", type=int, default=4, help="shard count (default: 4)"
    )
    p_shard_build.add_argument(
        "--method",
        choices=["bfs", "label-propagation", "contiguous"],
        default="bfs",
        help="vertex partitioning strategy (default: bfs; locality only — "
        "walk results are identical for every choice)",
    )
    p_shard_build.add_argument("--directed", action="store_true")
    p_shard_build.add_argument("--seed", type=int, default=0)
    p_shard_verify = shard_sub.add_parser(
        "verify",
        help="re-hash a store against its integrity record (corrupt stores "
        "are quarantined)",
    )
    p_shard_verify.add_argument("store", help="store directory")

    p_layout = sub.add_parser("layout", help="ForceAtlas layout to CSV")
    p_layout.add_argument("graph", help="edge-list file")
    p_layout.add_argument("-o", "--output", required=True, help="output CSV")
    p_layout.add_argument("--iterations", type=int, default=200)
    p_layout.add_argument("--seed", type=int, default=0)

    p_gen = sub.add_parser("generate", help="write a synthetic benchmark graph")
    p_gen.add_argument("-o", "--output", required=True, help="output edge list")
    p_gen.add_argument("--kind", choices=["communities", "flights"], default="communities")
    p_gen.add_argument("--n", type=int, default=1000)
    p_gen.add_argument("--groups", type=int, default=10)
    p_gen.add_argument("--alpha", type=float, default=0.5)
    p_gen.add_argument("--inter-edges", type=int, default=200)
    p_gen.add_argument("--labels", help="also write ground-truth labels here")
    p_gen.add_argument("--seed", type=int, default=0)

    p_report = sub.add_parser(
        "report", help="summarize a run manifest written by --metrics-out"
    )
    p_report.add_argument("manifest", help="manifest JSON (--metrics-out)")
    p_report.add_argument(
        "--events",
        default=None,
        help="JSONL event stream (defaults to the manifest's events_path)",
    )
    p_report.add_argument(
        "--trace-export",
        default=None,
        metavar="PATH",
        help="also export the event stream as Chrome Trace Event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    p_report.add_argument(
        "--compare",
        default=None,
        metavar="MANIFEST",
        help="diff against another manifest (baseline = positional, "
        "candidate = this one); regressions beyond 10%% are flagged",
    )

    p_top = sub.add_parser(
        "top", help="live monitor for a run started with --status-file"
    )
    # dest "status" — must not collide with the --status-file telemetry
    # flag (dest status_file) or top's own session would clobber the
    # document it is trying to monitor.
    p_top.add_argument("status", help="status document path")
    p_top.add_argument(
        "--interval", type=float, default=1.0, help="refresh seconds"
    )
    p_top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    p_top.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up (exit 2) if no status file appears within SECONDS",
    )

    p_runs = sub.add_parser(
        "runs", help="inspect / resume runs journaled under a checkpoint dir"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_runs_list = runs_sub.add_parser(
        "list",
        help="show every journaled run (sweeps orphaned shm/tmp first)",
    )
    p_runs_list.add_argument(
        "dir", help="checkpoint directory holding runs.jsonl"
    )
    p_runs_resume = runs_sub.add_parser(
        "resume",
        help="replay an interrupted run with its original flags + --resume",
    )
    p_runs_resume.add_argument(
        "dir", help="checkpoint directory holding runs.jsonl"
    )
    pick = p_runs_resume.add_mutually_exclusive_group()
    pick.add_argument(
        "--latest",
        action="store_true",
        help="resume the most recently interrupted run (the default)",
    )
    pick.add_argument(
        "--run-id", default=None, help="resume this specific run id"
    )

    # The pipeline commands get the full runtime surface (durable
    # checkpoints + supervised workers); the rest are telemetry-only.
    for p in (p_embed, p_detect, p_link):
        add_runtime_flags(p, checkpointing=True, workers=True)
    for p in (p_predict, p_layout, p_gen, p_report, p_top, p_runs_list,
              p_runs_resume, p_shard_build, p_shard_verify):
        add_runtime_flags(p)
    return parser


def _load_graph(path: str, directed: bool, errors: str = "strict"):
    from repro.graph.io import read_edge_list

    if errors == "collect":
        bad_lines: list[tuple[int, str, str]] = []
        graph = read_edge_list(
            path, directed=directed or None, errors="collect", collector=bad_lines
        )
        for lineno, _line, message in bad_lines:
            _log.warning(
                "io.malformed_line", path=path, line=lineno, message=message
            )
        if bad_lines:
            _log.warning(
                "io.malformed_lines", path=path, dropped=len(bad_lines)
            )
        return graph
    return read_edge_list(path, directed=directed or None, errors=errors)


def _resolve_graph_input(args):
    """The pipeline input: an in-memory graph, or a memory-mapped store.

    With ``--graph-store DIR`` the command walks over the store's mmap'd
    CSR shards (one shard's row range resident at a time) instead of the
    heap graph. A missing DIR is built once from the positional edge
    list (``--shards``, default 4) and reused by later runs.
    """
    store_path = getattr(args, "graph_store", None)
    errors = getattr(args, "on_error", "strict")
    if store_path is None:
        return _load_graph(args.graph, args.directed, errors=errors)
    from repro.graph.store import GraphStore

    if Path(store_path).exists():
        return GraphStore.open(store_path)
    graph = _load_graph(args.graph, args.directed, errors=errors)
    store = GraphStore.build(
        graph,
        store_path,
        shards=getattr(args, "shards", None) or 4,
        seed=args.seed,
    )
    _log.info(
        "shard.autobuild",
        path=str(store_path),
        shards=store.num_shards,
        n=store.n,
    )
    return store


def _v2v_config(args):
    from repro.core.model import V2VConfig
    from repro.parallel.pool import resolve_workers
    from repro.walks.engine import WalkMode

    return V2VConfig(
        dim=args.dim,
        window=args.window,
        walks_per_vertex=args.walks,
        walk_length=args.length,
        epochs=args.epochs,
        walk_mode=WalkMode(args.mode),
        time_window=args.time_window,
        p=args.p,
        q=args.q,
        train_workers=resolve_workers(getattr(args, "train_workers", 1)),
        seed=args.seed,
        worker_deadline=getattr(args, "worker_deadline", None),
        max_respawns=getattr(args, "max_respawns", 3),
    )


def _check_store_mode(args) -> bool:
    """False (with a stderr message) for walk modes a store can't run."""
    if getattr(args, "graph_store", None) and args.mode == "node2vec":
        print(
            "error: node2vec walks are not supported with --graph-store "
            "(the rejection sampler breaks shard determinism); drop "
            "--graph-store or pick another --mode",
            file=sys.stderr,
        )
        return False
    return True


def _cmd_embed(args) -> int:
    from repro.core.model import V2V

    if not _check_store_mode(args):
        return 2
    graph = _resolve_graph_input(args)
    model = V2V(_v2v_config(args)).fit(graph, context=runtime_from_args(args))
    model.save(args.output)
    result = model.result
    print(
        f"embedded {graph.n} vertices -> {args.output} "
        f"(dim={args.dim}, {result.epochs_run} epochs, "
        f"{result.train_seconds:.2f}s, final loss {result.loss_history[-1]:.4f})"
    )
    return 0


def _cmd_detect(args) -> int:
    from repro.community import (
        cnm_communities,
        girvan_newman_communities,
        louvain_communities,
    )

    if not _check_store_mode(args):
        return 2
    if args.method == "v2v":
        from repro.pipeline import DetectStage, Pipeline, TrainStage, WalkStage

        graph = _resolve_graph_input(args)
        cfg = _v2v_config(args)
        pipeline = Pipeline(
            [
                WalkStage(cfg.walk_config()),
                TrainStage(cfg.train_config()),
                DetectStage(args.k, n_init=args.restarts, seed=args.seed),
            ]
        )
        # A store is built undirected already; only the heap graph needs
        # the symmetrization pass.
        if graph.directed and hasattr(graph, "to_undirected"):
            graph = graph.to_undirected()
        result = pipeline.execute(
            graph,
            context=runtime_from_args(args),
        )
        membership = result.value
        print(
            f"v2v: train {result.seconds_for('walks', 'train'):.2f}s, "
            f"cluster {result.seconds_for('detect'):.4f}s"
        )
    elif args.method == "cnm":
        membership = cnm_communities(
            _load_graph(args.graph, args.directed), target_communities=args.k
        )
    elif args.method == "girvan-newman":
        membership = girvan_newman_communities(
            _load_graph(args.graph, args.directed),
            target_communities=args.k,
            seed=args.seed,
        )
    else:
        membership = louvain_communities(
            _load_graph(args.graph, args.directed), seed=args.seed
        )
    with Path(args.output).open("w") as fh:
        fh.write("vertex\tcommunity\n")
        for v, c in enumerate(membership):
            fh.write(f"{v}\t{int(c)}\n")
    print(
        f"{args.method}: {int(membership.max()) + 1} communities -> {args.output}"
    )
    return 0


def _cmd_predict(args) -> int:
    from repro.pipeline import Pipeline, PredictStage

    with np.load(args.vectors, allow_pickle=False) as data:
        vectors = data["vectors"]
    labels = np.asarray(
        [line.strip() for line in Path(args.labels).read_text().splitlines() if line.strip()]
    )
    if labels.shape[0] != vectors.shape[0]:
        _log.error(
            "predict.label_mismatch",
            labels=int(labels.shape[0]),
            vectors=int(vectors.shape[0]),
        )
        return 2
    acc = Pipeline(
        [
            PredictStage(
                labels,
                k=args.k,
                folds=args.folds,
                repeats=args.repeats,
                seed=args.seed,
            )
        ]
    ).run(vectors, context=runtime_from_args(args))
    print(f"{args.folds}-fold k-NN (k={args.k}) accuracy: {acc:.4f}")
    return 0


def _cmd_linkpred(args) -> int:
    from repro.tasks.link_prediction import link_prediction_experiment

    graph = _load_graph(args.graph, args.directed)
    result = link_prediction_experiment(
        graph,
        config=_v2v_config(args),
        operator=args.operator,
        test_fraction=args.test_fraction,
        seed=args.seed,
        context=runtime_from_args(args),
    )
    print(
        f"link prediction ({args.operator}, dim={result.dim}): "
        f"ROC AUC {result.auc:.4f} on {result.test_edges} held-out edges "
        f"({result.train_edges} training edges)"
    )
    return 0


def _cmd_layout(args) -> int:
    from repro.pipeline import LayoutStage, Pipeline

    graph = _load_graph(args.graph, directed=False)
    positions = Pipeline(
        [LayoutStage(iterations=args.iterations, seed=args.seed)]
    ).run(graph, context=runtime_from_args(args))
    with Path(args.output).open("w") as fh:
        fh.write("vertex,x,y\n")
        for v, (x, y) in enumerate(positions):
            fh.write(f"{v},{x:.6f},{y:.6f}\n")
    print(f"layout ({args.iterations} iterations) -> {args.output}")
    return 0


def _cmd_generate(args) -> int:
    from repro.graph.io import write_edge_list

    if args.kind == "communities":
        from repro.datasets.synthetic import community_benchmark

        graph = community_benchmark(
            args.alpha,
            n=args.n,
            groups=args.groups,
            inter_edges=args.inter_edges,
            seed=args.seed,
        )
        label_name = "community"
    else:
        from repro.datasets.openflights import OpenFlightsSpec, synthetic_openflights

        graph = synthetic_openflights(
            OpenFlightsSpec(num_airports=args.n, seed=args.seed)
        )
        label_name = "country"
    write_edge_list(graph, args.output)
    print(f"{args.kind} graph (n={graph.n}, m={graph.num_edges}) -> {args.output}")
    if args.labels:
        values = graph.vertex_labels(label_name)
        Path(args.labels).write_text("\n".join(str(v) for v in values) + "\n")
        print(f"{label_name} labels -> {args.labels}")
    return 0


def _cmd_report(args) -> int:
    from repro.obs.manifest import ManifestError, load_manifest
    from repro.obs.report import compare_manifests, render_report

    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as exc:
        _log.error("report.invalid_manifest", path=args.manifest, error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.compare is not None:
        try:
            other = load_manifest(args.compare)
        except ManifestError as exc:
            _log.error(
                "report.invalid_manifest", path=args.compare, error=str(exc)
            )
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(compare_manifests(manifest, other))
        return 0

    print(render_report(manifest, events_path=args.events))

    if args.trace_export is not None:
        from repro.obs.export import write_chrome_trace
        from repro.obs.logging import parse_jsonl

        events_path = args.events or manifest.get("events_path")
        if not events_path or not Path(events_path).is_file():
            print(
                "error: --trace-export needs the run's JSONL event stream "
                "(pass --events or run with --log-json)",
                file=sys.stderr,
            )
            return 2
        events = parse_jsonl(events_path, on_error="skip")
        trace = write_chrome_trace(
            args.trace_export, events, manifest=manifest
        )
        print(
            f"chrome trace ({len(trace['traceEvents'])} events) -> "
            f"{args.trace_export}"
        )
    return 0


def _cmd_runs(args) -> int:
    import time as _time

    from repro.resilience.registry import RunRegistry

    registry = RunRegistry(args.dir)
    swept = registry.sweep()
    if args.runs_command == "list":
        runs = registry.runs()
        if not runs:
            print(f"no runs recorded under {args.dir}")
            return 0
        print(f"{'RUN ID':<14} {'STATUS':<12} {'PID':<8} {'AGE':<8} COMMAND")
        now = _time.time()
        for run in runs:
            age_s = max(now - (run.updated_unix or now), 0)
            if age_s >= 3600:
                age = f"{age_s / 3600:.1f}h"
            elif age_s >= 60:
                age = f"{age_s / 60:.0f}m"
            else:
                age = f"{age_s:.0f}s"
            invocation = " ".join(run.argv) or (run.command or "?")
            status = run.status + (f" ({run.reason})" if run.reason else "")
            print(
                f"{run.run_id:<14} {status:<12} {run.pid:<8} {age:<8} "
                f"{invocation}"
            )
        if swept["orphaned_runs"] or swept["shm_segments_removed"]:
            print(
                f"swept: {len(swept['orphaned_runs'])} orphaned run(s), "
                f"{len(swept['shm_segments_removed'])} shm segment(s), "
                f"{swept['tmp_files_removed']} tmp file(s)"
            )
        return 0

    # resume
    if args.run_id is not None:
        run = next(
            (r for r in registry.runs() if r.run_id == args.run_id), None
        )
        if run is None:
            print(f"error: no run {args.run_id!r} in {args.dir}", file=sys.stderr)
            return 2
        if not run.resumable:
            print(
                f"error: run {run.run_id} is {run.status}, not resumable",
                file=sys.stderr,
            )
            return 2
    else:
        run = registry.latest_resumable()
        if run is None:
            print(f"error: no resumable run under {args.dir}", file=sys.stderr)
            return 2
    cmd_argv = list(run.argv)
    if "--resume" not in cmd_argv:
        cmd_argv.append("--resume")
    # Budget overrides: a run that died of resource pressure is usually
    # resumed with a *raised* ceiling. Appended last, so they win over
    # the recorded flags (argparse keeps the final occurrence).
    if args.memory_budget is not None:
        cmd_argv += ["--memory-budget", str(args.memory_budget)]
    if args.disk_budget is not None:
        cmd_argv += ["--disk-budget", str(args.disk_budget)]
    print(f"resuming run {run.run_id} ({run.status}): repro {' '.join(cmd_argv)}")
    # A fresh process, not a recursive main(): the resumed run gets its
    # own signal handlers, observability session, and journal entry.
    import subprocess

    return subprocess.run([sys.executable, "-m", "repro", *cmd_argv]).returncode


def _cmd_shard(args) -> int:
    from repro.graph.store import GraphStore, StoreCorrupt

    if args.shard_command == "build":
        if Path(args.output).exists():
            print(
                f"error: {args.output} already exists (stores are "
                "build-once; point -o somewhere fresh or remove it first)",
                file=sys.stderr,
            )
            return 2
        graph = _load_graph(args.graph, args.directed)
        store = GraphStore.build(
            graph,
            args.output,
            shards=args.shards,
            method=args.method.replace("-", "_"),
            seed=args.seed,
        )
        sizes = np.diff(store.shard_bounds)
        print(
            f"store (n={store.n}, m={store.num_edges}, "
            f"{store.num_shards} shards via {args.method}, "
            f"sizes {sizes.min()}..{sizes.max()}) -> {args.output}"
        )
        return 0

    # verify
    try:
        store = GraphStore.open(args.store)
        store.verify()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StoreCorrupt as exc:
        print(f"error: {exc} (store quarantined)", file=sys.stderr)
        return 2
    print(
        f"store ok (n={store.n}, m={store.num_edges}, "
        f"{store.num_shards} shards, "
        f"{store.manifest['integrity']['algo']} verified)"
    )
    return 0


def _cmd_top(args) -> int:
    from repro.obs.live import top_command

    return top_command(
        args.status,
        interval=args.interval,
        once=args.once,
        timeout=args.timeout,
    )


COMMANDS = {
    "embed": _cmd_embed,
    "detect": _cmd_detect,
    "predict": _cmd_predict,
    "linkpred": _cmd_linkpred,
    "layout": _cmd_layout,
    "generate": _cmd_generate,
    "shard": _cmd_shard,
    "report": _cmd_report,
    "top": _cmd_top,
    "runs": _cmd_runs,
}

# argparse dests of the telemetry flags; everything else that is a plain
# scalar goes into the manifest's config block.
_OBS_ARG_KEYS = (
    "log_level",
    "log_json",
    "metrics_out",
    "trace",
    "no_telemetry",
    "profile",
    "profile_hz",
    "status_file",
)


def _obs_config(args):
    from repro.obs.profiler import DEFAULT_HZ
    from repro.obs.recorder import ObsConfig

    return ObsConfig(
        enabled=not args.no_telemetry,
        log_level=args.log_level,
        log_json=args.log_json,
        metrics_out=args.metrics_out,
        trace=args.trace,
        profile=getattr(args, "profile", False),
        profile_hz=getattr(args, "profile_hz", None) or DEFAULT_HZ,
        status_path=getattr(args, "status_file", None),
    )


def _run_config(args) -> dict:
    return {
        k: v
        for k, v in vars(args).items()
        if k not in _OBS_ARG_KEYS
        and (v is None or isinstance(v, (str, int, float, bool)))
    }


def _open_registry(args, raw_argv: list[str]):
    """Journal this run in the checkpoint dir's registry, if it has one.

    Also the startup sweep point: orphaned shm segments and torn tmp
    files from pid-gone runs are reclaimed before this run allocates.
    """
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if checkpoint_dir is None:
        return None
    from repro.obs.manifest import config_fingerprint
    from repro.resilience.registry import RunRegistry

    registry = RunRegistry(checkpoint_dir)
    registry.sweep()
    registry.open_run(
        command=args.command,
        argv=raw_argv,
        config_fingerprint=config_fingerprint(_run_config(args)),
    )
    return registry


def main(argv: list[str] | None = None) -> int:
    from repro.graph.store import StoreCorrupt
    from repro.obs.recorder import session
    from repro.resilience.checkpoint import DiskFull
    from repro.resilience.guard import BudgetExceeded
    from repro.resilience.lifecycle import (
        EXIT_INTERRUPTED,
        CancellationToken,
        Deadline,
        RunInterrupted,
        signal_guard,
    )

    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    deadline_s = getattr(args, "deadline", None)
    token = CancellationToken()
    deadline = Deadline(deadline_s) if deadline_s is not None else None
    # runtime_from_args picks the pair up and puts it on the
    # ExecutionContext; engines then poll the ambient scope.
    args._lifecycle = (token, deadline)
    registry = _open_registry(args, raw_argv)
    try:
        # signal_guard() nests inside session(): an escaping
        # RunInterrupted restores default signal handling first, then
        # session writes the manifest (status: interrupted) — so a
        # signal during manifest writing terminates instead of looping.
        with session(_obs_config(args), run_config=_run_config(args)):
            with signal_guard(token, deadline=deadline):
                rc = COMMANDS[args.command](args)
        if registry is not None:
            registry.close_run(
                "completed" if rc == 0 else "failed",
                reason=None if rc == 0 else f"exit_{rc}",
            )
        return rc
    except RunInterrupted as exc:
        if registry is not None:
            registry.close_run("interrupted", reason=exc.reason)
        _log.warning(
            "run.interrupted", reason=exc.reason, exit_code=exc.exit_code
        )
        return exc.exit_code
    except KeyboardInterrupt:
        # A Ctrl-C that beat the cooperative checks (or arrived outside
        # the guard): same contract as RunInterrupted, one structured
        # line instead of a traceback.
        if registry is not None:
            registry.close_run("interrupted", reason="keyboard_interrupt")
        _log.warning(
            "run.interrupted",
            reason="keyboard_interrupt",
            exit_code=EXIT_INTERRUPTED,
        )
        return EXIT_INTERRUPTED
    except BudgetExceeded as exc:
        if registry is not None:
            registry.close_run("failed", reason="budget_exceeded")
        _log.error("run.budget_exceeded", error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except DiskFull as exc:
        if registry is not None:
            registry.close_run("failed", reason="disk_full")
        _log.error("run.disk_full", error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StoreCorrupt as exc:
        if registry is not None:
            registry.close_run("failed", reason="store_corrupt")
        _log.error("run.store_corrupt", error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BaseException:
        if registry is not None:
            registry.close_run("failed", reason="exception")
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
