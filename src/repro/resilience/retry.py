"""Retry policies with deterministic backoff, and a timeout wrapper.

A :class:`RetryPolicy` is a frozen description of *when* to retry (an
exception allowlist), *how often* (``max_attempts``), and *how long to
wait* between attempts (exponential backoff capped at ``max_delay``,
with seeded jitter so two runs of the same seeded job produce the same
delay schedule — reproducibility extends to the failure path).

:func:`call_with_retry` executes a callable under a policy;
:func:`run_with_timeout` bounds a call's wall time. Both are used by
:func:`repro.parallel.pool.parallel_map` and are available to any
pipeline stage.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

import numpy as np

from repro.obs.recorder import current_recorder

__all__ = ["RetryPolicy", "RetryError", "call_with_retry", "run_with_timeout"]

R = TypeVar("R")


class RetryError(RuntimeError):
    """All attempts of a retried call failed.

    ``last_exception`` carries the final failure; ``attempts`` how many
    were made.
    """

    def __init__(self, attempts: int, last_exception: BaseException) -> None:
        super().__init__(
            f"call failed after {attempts} attempt(s): {last_exception!r}"
        )
        self.attempts = attempts
        self.last_exception = last_exception


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a failing call.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` means "no retries").
    base_delay, multiplier, max_delay:
        Attempt ``k`` (0-based) waits ``min(base_delay * multiplier**k,
        max_delay)`` seconds before the *next* try.
    jitter:
        Fraction of the delay added/subtracted uniformly at random
        (``0.1`` → ±10%). Drawn from a generator seeded with ``seed``,
        so the schedule is deterministic per policy instance state.
    seed:
        Jitter seed. ``None`` seeds from OS entropy (non-deterministic).
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int | None = None
    retry_on: tuple[type[BaseException], ...] = field(default=(Exception,))

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if not self.retry_on:
            raise ValueError("retry_on must name at least one exception type")

    def should_retry(self, exc: BaseException) -> bool:
        """Is ``exc`` one of the retryable types?"""
        return isinstance(exc, self.retry_on)

    def delay_schedule(self, attempts: int | None = None) -> list[float]:
        """The deterministic wait (seconds) after each failed attempt.

        Entry ``k`` is the sleep between attempt ``k`` and ``k + 1``;
        the list has ``max_attempts - 1`` entries unless ``attempts``
        overrides it. Jitter is applied from a fresh seeded stream, so
        the same policy always yields the same schedule.
        """
        count = (self.max_attempts if attempts is None else attempts) - 1
        rng = np.random.default_rng(self.seed)
        delays: list[float] = []
        for k in range(max(count, 0)):
            delay = min(self.base_delay * self.multiplier**k, self.max_delay)
            if self.jitter:
                delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            delays.append(max(delay, 0.0))
        return delays


def call_with_retry(
    fn: Callable[..., R],
    *args: Any,
    policy: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
    **kwargs: Any,
) -> R:
    """Call ``fn(*args, **kwargs)``, retrying per ``policy``.

    ``on_retry(attempt, exc)`` is invoked before each re-attempt (the
    1-based attempt number that just failed). Raises :class:`RetryError`
    wrapping the last exception once attempts are exhausted;
    non-retryable exceptions propagate unwrapped and immediately.
    """
    policy = policy or RetryPolicy()
    delays = policy.delay_schedule()
    rec = current_recorder()
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - filtered just below
            if not policy.should_retry(exc):
                raise
            last = exc
            if attempt < policy.max_attempts:
                rec.inc("retry.attempts")
                rec.event(
                    "retry.attempt",
                    level="warning",
                    attempt=attempt,
                    error=repr(exc),
                    backoff_s=delays[attempt - 1],
                )
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delays[attempt - 1])
    rec.inc("retry.exhausted")
    rec.event(
        "retry.exhausted",
        level="error",
        attempts=policy.max_attempts,
        error=repr(last),
    )
    assert last is not None
    raise RetryError(policy.max_attempts, last) from last


def run_with_timeout(
    fn: Callable[..., R],
    timeout: float,
    *args: Any,
    **kwargs: Any,
) -> R:
    """Run ``fn`` and raise :class:`TimeoutError` after ``timeout`` seconds.

    The call executes in a daemon worker thread; on timeout the *caller*
    regains control but the thread keeps running to completion in the
    background (Python offers no safe preemption) — use this for calls
    whose side effects are idempotent or absent. Exceptions from ``fn``
    propagate unchanged.
    """
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    executor = concurrent.futures.ThreadPoolExecutor(max_workers=1)
    try:
        future = executor.submit(fn, *args, **kwargs)
        try:
            return future.result(timeout=timeout)
        except concurrent.futures.TimeoutError:
            raise TimeoutError(
                f"call did not finish within {timeout} seconds"
            ) from None
    finally:
        # Don't block on the still-running call; let the thread die with
        # the process if it never returns.
        executor.shutdown(wait=False)
