"""Atomic checkpoint files for pipeline state.

A checkpoint is a single ``.npz`` holding named numpy arrays plus a
JSON metadata record (stored as a ``__meta__`` uint8 buffer, the same
trick :func:`repro.graph.io.save_graph` uses). Writes are atomic:

    serialize to memory → write ``<name>.tmp.<pid>`` → flush → fsync
    → ``os.replace`` onto the final name

``os.replace`` is atomic on POSIX and Windows, so a reader (including a
resuming run) only ever sees either the previous complete checkpoint or
the new complete checkpoint — never a torn file. A crash mid-write
leaves at most a stale ``*.tmp.*`` file, which the manager sweeps.

:class:`CheckpointManager` scopes named checkpoints to a directory and
is what the walk engine and trainer thread through the stack.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.obs.recorder import current_recorder

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "atomic_write_bytes",
    "save_checkpoint",
    "load_checkpoint",
]

_META_KEY = "__meta__"
_SUFFIX = ".ckpt.npz"


@dataclass(frozen=True)
class Checkpoint:
    """An in-memory checkpoint: named arrays plus a JSON-able meta dict."""

    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp → fsync → rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename (the only portable way to
    make it atomic).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    rec = current_recorder()
    try:
        with rec.time("checkpoint.write_seconds"):
            with tmp.open("wb") as fh:
                fh.write(data)
                fh.flush()
                with rec.time("checkpoint.fsync_seconds"):
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        rec.inc("checkpoint.bytes", len(data))
    finally:
        if tmp.exists():  # only on failure before the replace
            tmp.unlink()


def save_checkpoint(
    path: str | Path,
    arrays: dict[str, np.ndarray] | None = None,
    meta: dict[str, Any] | None = None,
) -> None:
    """Atomically write a checkpoint file.

    ``meta`` must be JSON-serializable; Python ints of any size are fine
    (numpy RNG states carry 128-bit integers).
    """
    arrays = dict(arrays or {})
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    payload = json.dumps(meta or {}).encode()
    arrays[_META_KEY] = np.frombuffer(payload, dtype=np.uint8)
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    data = buf.getvalue()
    atomic_write_bytes(path, data)
    rec = current_recorder()
    if rec.enabled:
        rec.inc("checkpoint.saves")
        rec.event(
            "checkpoint.saved", level="debug", path=str(path), bytes=len(data)
        )


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(bytes(data[_META_KEY]).decode()) if _META_KEY in data else {}
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
    return Checkpoint(arrays=arrays, meta=meta)


class CheckpointManager:
    """Named checkpoints under one directory.

    Each name maps to ``<dir>/<name>.ckpt.npz``; saves go through
    :func:`save_checkpoint`, so every named slot is individually atomic.
    The directory is created lazily on first save.
    """

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)

    @property
    def directory(self) -> Path:
        return self._dir

    def path_for(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid checkpoint name {name!r}")
        return self._dir / f"{name}{_SUFFIX}"

    def exists(self, name: str) -> bool:
        return self.path_for(name).exists()

    def save(
        self,
        name: str,
        arrays: dict[str, np.ndarray] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> Path:
        path = self.path_for(name)
        save_checkpoint(path, arrays, meta)
        return path

    def load(self, name: str) -> Checkpoint:
        return load_checkpoint(self.path_for(name))

    def load_if_exists(self, name: str) -> Checkpoint | None:
        return self.load(name) if self.exists(name) else None

    def delete(self, name: str) -> None:
        path = self.path_for(name)
        if path.exists():
            path.unlink()

    def names(self) -> list[str]:
        """Completed checkpoint names, sorted (tmp leftovers excluded)."""
        if not self._dir.is_dir():
            return []
        return sorted(
            p.name[: -len(_SUFFIX)]
            for p in self._dir.iterdir()
            if p.name.endswith(_SUFFIX)
        )

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def sweep_tmp(self) -> int:
        """Remove stale ``*.tmp.*`` leftovers from crashed writes."""
        if not self._dir.is_dir():
            return 0
        removed = 0
        for p in self._dir.iterdir():
            if ".tmp." in p.name and p.name.split(".tmp.")[0].endswith(".npz"):
                p.unlink(missing_ok=True)
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointManager({str(self._dir)!r}, {len(self.names())} saved)"
