"""Atomic checkpoint files for pipeline state.

A checkpoint is a single ``.npz`` holding named numpy arrays plus a
JSON metadata record (stored as a ``__meta__`` uint8 buffer, the same
trick :func:`repro.graph.io.save_graph` uses). Writes are atomic:

    serialize to memory → write ``<name>.tmp.<pid>`` → flush → fsync
    → ``os.replace`` onto the final name

``os.replace`` is atomic on POSIX and Windows, so a reader (including a
resuming run) only ever sees either the previous complete checkpoint or
the new complete checkpoint — never a torn file. A crash mid-write
leaves at most a stale ``*.tmp.*`` file, which the manager sweeps.
After the replace the **parent directory** is fsynced too: a rename is
only durable once the directory entry itself reaches disk, so without
it a power loss right after ``os.replace`` could roll the directory
back to the old (or no) entry even though the data blocks were synced.

Every checkpoint also embeds an integrity record — a SHA-256 digest
over all array payloads plus the metadata, and a per-array CRC32 —
inside its ``__meta__`` JSON (reserved key ``__integrity__``). Loads
verify it and raise the typed :class:`CheckpointCorrupt` on any
mismatch, truncation, or unreadable container, so callers can tell a
*corrupt* checkpoint apart from a *missing* one (``FileNotFoundError``)
and quarantine instead of crash: :meth:`CheckpointManager.load_if_exists`
moves a bad file to ``<file>.corrupt.<ts>`` and returns ``None``, which
resuming phases treat as "start fresh".

Disk-full behaviour: an ``ENOSPC`` anywhere in the write path becomes
the typed :class:`DiskFull`. Before giving up, the write garbage-collects
the reclaimable artifacts under the destination's directory tree —
quarantined ``*.corrupt.<ts>`` snapshots and stale ``*.tmp.<pid>``
leftovers (:func:`reclaim_disk`) — and retries exactly once; only a
second ``ENOSPC`` propagates. The temporary file is unlinked on *every*
failure path, so a failed write can never strand a ``.tmp`` file that
itself eats the disk the next write needs.

:class:`CheckpointManager` scopes named checkpoints to a directory and
is what the walk engine and trainer thread through the stack.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import io
import json
import os
import re
import time
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.obs.logging import get_logger
from repro.obs.recorder import current_recorder

__all__ = [
    "Checkpoint",
    "CheckpointCorrupt",
    "CheckpointManager",
    "DiskFull",
    "atomic_write_bytes",
    "reclaim_disk",
    "save_checkpoint",
    "load_checkpoint",
    "integrity_record",
    "verify_integrity",
]

_META_KEY = "__meta__"
_INTEGRITY_KEY = "__integrity__"
_SUFFIX = ".ckpt.npz"

_log = get_logger("repro.resilience.checkpoint")


class DiskFull(OSError):
    """The filesystem under a checkpoint/manifest path ran out of space.

    Raised (after one reclaim-and-retry pass) when a durable write hits
    ``ENOSPC``. A typed subclass of ``OSError`` so generic ``except
    OSError`` cleanup still works, while the guard subsystem and CLI can
    match it specifically and report *which* path filled up.
    """

    def __init__(self, path: str | Path, detail: str = "") -> None:
        msg = f"disk full writing {path}"
        if detail:
            msg += f": {detail}"
        super().__init__(errno.ENOSPC, msg)
        self.path = Path(path)
        self.detail = detail


class CheckpointCorrupt(RuntimeError):
    """A checkpoint/model file exists but cannot be trusted.

    Raised for unreadable containers (torn zip, truncated file) and for
    integrity-record mismatches (bit rot). Distinct from
    ``FileNotFoundError`` — *missing* is a normal first-run state,
    *corrupt* is an artifact that must be quarantined.
    """

    def __init__(self, path: str | Path, reason: str) -> None:
        super().__init__(f"corrupt checkpoint {path}: {reason}")
        self.path = Path(path)
        self.reason = reason


def _canonical_meta_bytes(meta: dict[str, Any]) -> bytes:
    """Deterministic JSON encoding of user metadata for digesting.

    ``sort_keys`` fixes ordering and JSON round-trips floats/ints/str
    exactly, so the bytes are identical when recomputed from a loaded
    meta dict (tuples serialize as JSON arrays on both sides).
    """
    return json.dumps(meta, sort_keys=True).encode()


def integrity_record(
    arrays: dict[str, np.ndarray], meta_bytes: bytes = b""
) -> dict[str, Any]:
    """Checksums for a set of named arrays plus a metadata blob.

    Returns ``{"algo", "digest", "crc32"}``: one SHA-256 over every
    array's name/dtype/shape/payload (in sorted-name order) and the
    metadata bytes, plus a per-array CRC32 so a mismatch can be pinned
    to the array that rotted.
    """
    digest = hashlib.sha256()
    crcs: dict[str, int] = {}
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        raw = arr.tobytes()
        digest.update(name.encode())
        digest.update(arr.dtype.str.encode())
        digest.update(repr(arr.shape).encode())
        digest.update(raw)
        crcs[name] = zlib.crc32(raw)
    digest.update(meta_bytes)
    return {"algo": "sha256", "digest": digest.hexdigest(), "crc32": crcs}


def verify_integrity(
    arrays: dict[str, np.ndarray],
    record: dict[str, Any],
    *,
    meta_bytes: bytes = b"",
    path: str | Path = "<memory>",
) -> None:
    """Check ``arrays``/``meta_bytes`` against a stored integrity record.

    Raises :class:`CheckpointCorrupt` naming the offending arrays (via
    their CRC32s) or the metadata when the SHA-256 does not match.
    """
    actual = integrity_record(arrays, meta_bytes)
    if actual["digest"] == record.get("digest"):
        return
    stored_crcs = record.get("crc32", {})
    bad = sorted(
        name
        for name, crc in actual["crc32"].items()
        if stored_crcs.get(name) != crc
    )
    missing = sorted(set(stored_crcs) - set(actual["crc32"]))
    if bad or missing:
        parts = []
        if bad:
            parts.append(f"checksum mismatch in arrays {bad}")
        if missing:
            parts.append(f"missing arrays {missing}")
        reason = "; ".join(parts)
    else:
        reason = "metadata does not match its digest"
    raise CheckpointCorrupt(path, reason)


@dataclass(frozen=True)
class Checkpoint:
    """An in-memory checkpoint: named arrays plus a JSON-able meta dict."""

    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)


# Reclaimable write artifacts: our own tmp files (``<name>.tmp.<pid>``)
# and quarantined corrupt snapshots (``<name>.corrupt.<ts>[.<n>]``).
# Anchored patterns so a GC pass in an arbitrary directory can never
# match user data that merely contains ".tmp" somewhere.
_TMP_RE = re.compile(r"\.tmp\.\d+$")
_CORRUPT_RE = re.compile(r"\.corrupt\.\d+(\.\d+)?$")


def _is_enospc(exc: OSError) -> bool:
    return exc.errno == errno.ENOSPC


def reclaim_disk(root: str | Path) -> int:
    """Garbage-collect reclaimable artifacts under ``root``, recursively.

    Removes stale ``*.tmp.<pid>`` leftovers from crashed writes and
    quarantined ``*.corrupt.<ts>`` snapshots — both are dead weight once
    the disk is full, and neither is ever read by a resume. Returns the
    number of bytes freed. Never raises: an unremovable file is skipped.
    """
    root = Path(root)
    if not root.is_dir():
        return 0
    freed = 0
    for p in root.rglob("*"):
        name = p.name
        if not (_TMP_RE.search(name) or _CORRUPT_RE.search(name)):
            continue
        try:
            size = p.stat().st_size
            p.unlink()
        except OSError:
            continue
        freed += size
    if freed:
        rec = current_recorder()
        rec.inc("checkpoint.disk_reclaimed_bytes", freed)
        rec.event(
            "checkpoint.disk_reclaimed",
            level="warning",
            root=str(root),
            bytes=freed,
        )
    return freed


def _atomic_write_once(path: Path, data: bytes) -> None:
    """One attempt at tmp → fsync → replace → dir-fsync.

    The temporary file is unlinked on *every* failure path — including
    a failed ``open`` that never created it (``missing_ok``) and cleanup
    errors on a sick filesystem (suppressed so they never mask the
    original exception). ``ENOSPC`` is translated to :class:`DiskFull`.
    """
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    rec = current_recorder()
    try:
        with rec.time("checkpoint.write_seconds"):
            with tmp.open("wb") as fh:
                fh.write(data)
                fh.flush()
                with rec.time("checkpoint.fsync_seconds"):
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        rec.inc("checkpoint.bytes", len(data))
    except OSError as exc:
        with contextlib.suppress(OSError):
            tmp.unlink(missing_ok=True)
        if _is_enospc(exc):
            raise DiskFull(path, str(exc)) from exc
        raise
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically and durably.

    tmp → flush → fsync(file) → ``os.replace`` → fsync(directory). The
    temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename (the only portable way to
    make it atomic). The directory fsync is what makes the rename
    *durable*: until the directory entry reaches disk, a power loss can
    resurrect the old file (or none) even though the data blocks were
    synced. Platforms where directories cannot be opened/fsynced
    (e.g. Windows) skip that step — the replace is still atomic there.

    On ``ENOSPC`` the write garbage-collects reclaimable artifacts in
    the destination tree (:func:`reclaim_disk`) and retries once; a
    second failure raises :class:`DiskFull`. The temp file never
    survives a failed write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        _atomic_write_once(path, data)
    except DiskFull:
        rec = current_recorder()
        rec.inc("checkpoint.enospc")
        rec.event(
            "checkpoint.enospc",
            level="warning",
            path=str(path),
            action="reclaim_and_retry",
        )
        reclaim_disk(path.parent)
        _atomic_write_once(path, data)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry to disk; a no-op where unsupported."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def save_checkpoint(
    path: str | Path,
    arrays: dict[str, np.ndarray] | None = None,
    meta: dict[str, Any] | None = None,
) -> None:
    """Atomically write a checkpoint file.

    ``meta`` must be JSON-serializable; Python ints of any size are fine
    (numpy RNG states carry 128-bit integers). An integrity record
    (SHA-256 + per-array CRC32) is embedded under the reserved
    ``__integrity__`` meta key and verified by :func:`load_checkpoint`.
    """
    arrays = dict(arrays or {})
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    meta = dict(meta or {})
    if _INTEGRITY_KEY in meta:
        raise ValueError(f"meta key {_INTEGRITY_KEY!r} is reserved")
    meta[_INTEGRITY_KEY] = integrity_record(arrays, _canonical_meta_bytes(meta))
    payload = json.dumps(meta).encode()
    arrays[_META_KEY] = np.frombuffer(payload, dtype=np.uint8)
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    data = buf.getvalue()
    atomic_write_bytes(path, data)
    rec = current_recorder()
    if rec.enabled:
        rec.inc("checkpoint.saves")
        rec.event(
            "checkpoint.saved", level="debug", path=str(path), bytes=len(data)
        )


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read and verify a checkpoint written by :func:`save_checkpoint`.

    Raises ``FileNotFoundError`` when the file is missing and
    :class:`CheckpointCorrupt` when it exists but is torn, truncated,
    not an npz, or fails its embedded integrity record. Checkpoints
    written before integrity records existed load without verification.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = (
                json.loads(bytes(data[_META_KEY]).decode())
                if _META_KEY in data
                else {}
            )
            arrays = {k: data[k] for k in data.files if k != _META_KEY}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as exc:
        raise CheckpointCorrupt(path, f"unreadable container: {exc}") from exc
    record = meta.pop(_INTEGRITY_KEY, None) if isinstance(meta, dict) else None
    if record is not None:
        verify_integrity(
            arrays, record, meta_bytes=_canonical_meta_bytes(meta), path=path
        )
    return Checkpoint(arrays=arrays, meta=meta)


class CheckpointManager:
    """Named checkpoints under one directory.

    Each name maps to ``<dir>/<name>.ckpt.npz``; saves go through
    :func:`save_checkpoint`, so every named slot is individually atomic.
    The directory is created lazily on first save.
    """

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)

    @property
    def directory(self) -> Path:
        return self._dir

    def path_for(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid checkpoint name {name!r}")
        return self._dir / f"{name}{_SUFFIX}"

    def exists(self, name: str) -> bool:
        return self.path_for(name).exists()

    def save(
        self,
        name: str,
        arrays: dict[str, np.ndarray] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> Path:
        path = self.path_for(name)
        save_checkpoint(path, arrays, meta)
        return path

    def load(self, name: str) -> Checkpoint:
        return load_checkpoint(self.path_for(name))

    def load_if_exists(self, name: str) -> Checkpoint | None:
        """The resume entry point: missing → None, corrupt → quarantine.

        A corrupt checkpoint is moved aside (``<file>.corrupt.<ts>``),
        logged, and reported as absent so the calling phase restarts
        cleanly instead of crashing on a torn file.
        """
        try:
            return self.load(name)
        except FileNotFoundError:
            return None
        except CheckpointCorrupt as exc:
            quarantined = self.quarantine(name)
            current_recorder().inc("checkpoint.corrupt")
            _log.warning(
                "checkpoint.quarantined",
                name=name,
                reason=exc.reason,
                quarantined_to=str(quarantined) if quarantined else None,
            )
            return None

    def quarantine(self, name: str) -> Path | None:
        """Move a suspect checkpoint to ``<file>.corrupt.<ts>``.

        Returns the quarantine path, or ``None`` if the file vanished
        first. Quarantined files keep their bytes for post-mortems but
        no longer match the ``.ckpt.npz`` suffix, so :meth:`names` and
        resume scans ignore them.
        """
        path = self.path_for(name)
        stamp = int(time.time())
        for attempt in range(100):
            suffix = f".corrupt.{stamp}"
            if attempt:
                suffix += f".{attempt}"
            target = path.with_name(path.name + suffix)
            if target.exists():
                continue
            try:
                os.replace(path, target)
            except FileNotFoundError:
                return None
            return target
        raise RuntimeError(f"could not find a free quarantine name for {path}")

    def delete(self, name: str) -> None:
        self.path_for(name).unlink(missing_ok=True)

    def names(self) -> list[str]:
        """Completed checkpoint names, sorted (tmp leftovers excluded)."""
        if not self._dir.is_dir():
            return []
        return sorted(
            p.name[: -len(_SUFFIX)]
            for p in self._dir.iterdir()
            if p.name.endswith(_SUFFIX)
        )

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def sweep_tmp(self) -> int:
        """Remove stale ``*.tmp.*`` leftovers from crashed writes."""
        if not self._dir.is_dir():
            return 0
        removed = 0
        for p in self._dir.iterdir():
            if ".tmp." in p.name and p.name.split(".tmp.")[0].endswith(".npz"):
                p.unlink(missing_ok=True)
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointManager({str(self._dir)!r}, {len(self.names())} saved)"
