"""Self-healing worker supervision: heartbeats, watchdog, respawn ladder.

The pool in :mod:`repro.parallel.pool` survives a *broken* pool — but a
worker that hangs (deadlocked I/O, livelocked loop, paused cgroup) never
breaks the pool; it stalls the epoch forever. This module closes that
gap with a supervised execution mode for every parallel stage:

- **Heartbeats** — each worker owns one row of a
  :class:`repro.obs.slab.MetricsSlab` over a shared-memory segment and
  writes ``time.monotonic()`` into it lock-free (single writer per row,
  the same benign-race regime as Hogwild). The worker loop beats around
  every item, and instrumented work functions beat *inside* long items
  (the Hogwild batch loop and the walk stepping loop call
  :func:`current_heartbeat` — a no-op outside supervision).
- **Watchdog** — the parent polls worker processes and heartbeat ages.
  A worker that died (``is_alive()`` false, broken pipe) or went silent
  for longer than ``worker_deadline`` seconds is SIGKILLed, its
  in-flight item is reassigned, and a replacement process takes over its
  slab row. ``straggler_timeout`` optionally caps a single item's wall
  time regardless of heartbeats.
- **Degrade ladder** — respawns are budgeted (``max_respawns`` per
  rung). When the budget is exhausted the worker count is halved and the
  remaining items re-run under a fresh budget; at one worker the
  remaining items run serially in-process, so a supervised map *always*
  completes (or propagates the work function's own exception, exactly
  like the serial path).

Everything is reported through the :mod:`repro.obs` recorder as
``supervisor.*`` events and metrics (``supervisor.respawns``,
``supervisor.degrades``, ``supervisor.serial_fallbacks``,
``supervisor.items_reassigned``), so a run manifest shows exactly how
much healing a job needed.

Dispatch uses one duplex pipe per worker — never a queue shared between
workers — because a SIGKILLed reader of a shared ``multiprocessing``
queue can die holding its feed lock and deadlock every sibling. With
per-worker pipes the parent always knows which item a worker holds, and
a kill can never corrupt another worker's channel.

Clock note: heartbeats are ``time.monotonic()`` values compared across
processes, which is valid on the platforms with POSIX shared memory
(Linux ``CLOCK_MONOTONIC`` is system-wide); platforms without shared
memory fall back to serial execution and never start the watchdog.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from repro.obs.recorder import current_recorder
from repro.resilience.lifecycle import current_cancel_scope

# repro.obs.slab and repro.parallel.shm are imported lazily inside the
# functions that need them: slab itself imports repro.parallel, whose
# pool imports repro.resilience — importing slab at module level here
# would close that loop while slab is still half-initialized.

__all__ = [
    "SupervisorConfig",
    "supervised_map",
    "Heartbeat",
    "NULL_HEARTBEAT",
    "current_heartbeat",
]

T = TypeVar("T")
R = TypeVar("R")

_UNSET = object()

# Exceptions that mean "could not spawn a worker process" — the sandbox
# analogue of a worker death, charged against the same respawn budget.
_SPAWN_ERRORS = (OSError, PermissionError, ValueError)


@dataclass(frozen=True)
class SupervisorConfig:
    """Liveness policy for a supervised parallel stage.

    Parameters
    ----------
    worker_deadline:
        Seconds of heartbeat silence after which a worker *with an
        assigned item* is declared hung and killed. Work functions that
        can legitimately run longer than this between beats should call
        ``current_heartbeat().beat()`` inside their loop (the built-in
        walk and Hogwild tasks do).
    straggler_timeout:
        Optional cap on a single item's wall time on one worker; a
        worker exceeding it is killed and the item reassigned even if
        its heartbeat is fresh. ``None`` disables the cap.
    max_respawns:
        Respawn budget per worker-count rung. Exhausting it halves the
        worker count (ultimately: serial in-process execution).
    poll_interval:
        Parent watchdog polling period in seconds.
    """

    worker_deadline: float = 30.0
    straggler_timeout: float | None = None
    max_respawns: int = 3
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.worker_deadline <= 0:
            raise ValueError("worker_deadline must be positive")
        if self.straggler_timeout is not None and self.straggler_timeout <= 0:
            raise ValueError("straggler_timeout must be positive")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")


# ----------------------------------------------------------------------
# Worker-side heartbeat
# ----------------------------------------------------------------------
class Heartbeat:
    """Liveness beacon: one slab row, one writer, lock-free stores."""

    def __init__(self, slab: MetricsSlab, row: int) -> None:
        self._slab = slab
        self._row = row

    def beat(self) -> None:
        self._slab.put(self._row, "heartbeat", time.monotonic())
        self._slab.add(self._row, "beats", 1)


class _NullHeartbeat:
    """The no-op beacon outside supervised workers."""

    def beat(self) -> None:
        return None


NULL_HEARTBEAT = _NullHeartbeat()

_current_heartbeat: Heartbeat | _NullHeartbeat = NULL_HEARTBEAT


def current_heartbeat() -> Heartbeat | _NullHeartbeat:
    """The supervised worker's beacon, or the no-op anywhere else.

    Instrumented hot loops call ``current_heartbeat().beat()`` — two
    float stores under supervision, a no-op method call otherwise.
    """
    return _current_heartbeat


def _install_heartbeat(hb: Heartbeat | _NullHeartbeat) -> None:
    global _current_heartbeat
    _current_heartbeat = hb


def _supervised_worker(worker: int, fn, conn, slab_spec) -> None:
    """Worker main loop: recv item, beat, run, send result, repeat.

    Runs in a child process. ``None`` is the shutdown sentinel; a broken
    pipe (parent gone) ends the loop too. Work-function exceptions are
    shipped back to the parent rather than killing the worker.
    """
    from repro.obs.slab import MetricsSlab

    slab = MetricsSlab.attach(slab_spec)
    hb = Heartbeat(slab, worker)
    _install_heartbeat(hb)
    try:
        hb.beat()
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            idx, item = msg
            hb.beat()
            try:
                result = fn(item)
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                hb.beat()
                try:
                    conn.send((idx, False, exc))
                except Exception:  # unpicklable exception: degrade to repr
                    conn.send(
                        (idx, False, RuntimeError(f"worker {worker}: {exc!r}"))
                    )
            else:
                hb.beat()
                conn.send((idx, True, result))
                slab.add(worker, "items_done", 1)
    finally:
        _install_heartbeat(NULL_HEARTBEAT)
        slab.close()
        conn.close()


# ----------------------------------------------------------------------
# Parent-side supervision
# ----------------------------------------------------------------------
class _Handle:
    """Parent-side view of one worker: process, pipe, in-flight item."""

    __slots__ = ("proc", "conn", "assigned", "assigned_at", "broken")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.assigned: int | None = None
        self.assigned_at = 0.0
        self.broken = False


def supervised_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    config: SupervisorConfig | None = None,
    label: str | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` with liveness guarantees.

    Same contract as :func:`repro.parallel.pool.parallel_map` — ordered
    results, work-function exceptions propagate — plus detection of
    dead *and hung* workers, respawn with work reassignment, and a
    degrade ladder that ends at serial in-process execution, so the map
    never stalls indefinitely on worker failure.

    Items may be executed more than once (a killed worker's in-flight
    item is reassigned), so work functions must be idempotent or
    tolerant of re-execution — true of every built-in stage task (walk
    chunks rewrite the same rows deterministically; a re-applied Hogwild
    shard is the same benign race class as normal Hogwild updates).
    """
    from repro.parallel.shm import SHM_AVAILABLE

    config = config or SupervisorConfig()
    n = len(items)
    label = label or getattr(fn, "__name__", "task")
    scope = current_cancel_scope()
    if workers <= 1 or n <= 1 or not SHM_AVAILABLE:
        results_serial: list = []
        for item in items:
            scope.check()  # cooperative cancel between in-process items
            results_serial.append(fn(item))
        return results_serial

    rec = current_recorder()
    results: list = [_UNSET] * n
    rung = min(workers, n)
    rec.event(
        "supervisor.start", level="debug", label=label, workers=rung, items=n
    )
    while True:
        pending = [i for i in range(n) if results[i] is _UNSET]
        if not pending:
            break
        if rung <= 1:
            rec.inc("supervisor.serial_fallbacks")
            rec.event(
                "supervisor.serial_fallback",
                level="warning",
                label=label,
                pending=len(pending),
            )
            for i in pending:
                scope.check()
                results[i] = fn(items[i])
            break
        exhausted = _run_rung(fn, items, results, pending, rung, config, label)
        if exhausted:
            new_rung = max(rung // 2, 1)
            rec.inc("supervisor.degrades")
            rec.event(
                "supervisor.degrade",
                level="warning",
                label=label,
                from_workers=rung,
                to_workers=new_rung,
            )
            rung = new_rung
    return results


def _spawn(ctx, worker: int, fn, slab: MetricsSlab, label: str) -> _Handle | None:
    """Start one worker on slab row ``worker``; None if the spawn failed."""
    rec = current_recorder()
    try:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
    except _SPAWN_ERRORS:
        return None
    # Fresh row: the spawn time is the first heartbeat, so a worker that
    # never gets going still trips the deadline.
    slab.put(worker, "heartbeat", time.monotonic())
    proc = ctx.Process(
        target=_supervised_worker,
        args=(worker, fn, child_conn, slab.spec),
        daemon=True,
        name=f"supervised-{label}-{worker}",
    )
    try:
        proc.start()
    except _SPAWN_ERRORS:
        rec.event(
            "supervisor.spawn_failed", level="warning", worker=worker, label=label
        )
        parent_conn.close()
        child_conn.close()
        return None
    child_conn.close()
    return _Handle(proc, parent_conn)


def _kill(handle: _Handle) -> None:
    """SIGKILL a worker and reap it; safe on already-dead processes."""
    try:
        handle.proc.kill()
    except (OSError, ValueError):
        pass
    handle.proc.join(timeout=1.0)
    try:
        handle.conn.close()
    except OSError:
        pass


def _drain(handle: _Handle, results: list) -> tuple[int, BaseException | None]:
    """Pull every buffered message off one worker's pipe.

    Returns ``(items_completed, failure)``; a broken pipe marks the
    handle for the liveness sweep instead of raising.
    """
    rec = current_recorder()
    completed = 0
    try:
        while handle.conn.poll():
            idx, ok, payload = handle.conn.recv()
            if handle.assigned == idx:
                rec.observe(
                    "supervisor.item_seconds",
                    time.monotonic() - handle.assigned_at,
                )
                handle.assigned = None
            if not ok:
                return completed, payload
            if results[idx] is _UNSET:  # duplicate after a reassignment race
                results[idx] = payload
                completed += 1
    except (EOFError, OSError):
        handle.broken = True
    return completed, None


def _run_rung(
    fn,
    items: Sequence,
    results: list,
    pending: list[int],
    workers: int,
    config: SupervisorConfig,
    label: str,
) -> bool:
    """One supervised pool over ``pending`` at a fixed worker count.

    Fills ``results`` in place. Returns True when the respawn budget was
    exhausted (the caller degrades to fewer workers); work-function
    exceptions propagate after teardown.
    """
    rec = current_recorder()
    ctx = mp.get_context()
    scope = current_cancel_scope()
    todo: deque[int] = deque(pending)
    outstanding = len(pending)
    respawns = 0
    failure: BaseException | None = None
    from repro.obs.slab import SUPERVISOR_SLOTS, MetricsSlab
    from repro.parallel.shm import SharedArray

    owner = SharedArray.create((workers, len(SUPERVISOR_SLOTS)), np.float64)
    slab = MetricsSlab.over(owner, SUPERVISOR_SLOTS)
    handles: list[_Handle | None] = [None] * workers
    rec.set("supervisor.workers", workers)
    try:
        for w in range(workers):
            handles[w] = _spawn(ctx, w, fn, slab, label)
            if handles[w] is None:
                respawns += 1
        while outstanding > 0 and failure is None:
            if scope.cancelled():
                # Cancellation beats liveness: stop dispatching, never
                # respawn again, and walk the children down gracefully
                # (SIGTERM, short grace, then SIGKILL) before raising.
                _cancel_workers(handles, rec, label)
                scope.check()
            if respawns > config.max_respawns:
                return True
            # Dispatch: only idle workers, which are blocked in recv —
            # the send can never stall the watchdog.
            for w, handle in enumerate(handles):
                if handle is None or handle.broken or handle.assigned is not None:
                    continue
                if not todo:
                    break
                idx = todo.popleft()
                try:
                    handle.conn.send((idx, items[idx]))
                except (OSError, ValueError):
                    todo.appendleft(idx)
                    handle.broken = True
                else:
                    handle.assigned = idx
                    handle.assigned_at = time.monotonic()
            # Collect results (or sleep one poll tick if nobody is up).
            live = [h for h in handles if h is not None and not h.broken]
            if live:
                ready = set(
                    _connection_wait(
                        [h.conn for h in live], timeout=config.poll_interval
                    )
                )
                for handle in live:
                    if handle.conn not in ready:
                        continue
                    completed, failure = _drain(handle, results)
                    outstanding -= completed
                    if failure is not None:
                        break
                if failure is not None:
                    break
            else:
                time.sleep(config.poll_interval)
            if outstanding <= 0:
                break
            # Liveness sweep: reap the dead, kill the hung/stragglers,
            # respawn onto the same slab row while budget remains.
            now = time.monotonic()
            for w, handle in enumerate(handles):
                if respawns > config.max_respawns:
                    break
                if handle is None:
                    if todo:  # empty slot with work waiting: try to refill
                        handles[w] = _spawn(ctx, w, fn, slab, label)
                        if handles[w] is None:
                            respawns += 1
                    continue
                reason = None
                if handle.broken or not handle.proc.is_alive():
                    reason = "died"
                elif handle.assigned is not None:
                    if now - slab.get(w, "heartbeat") > config.worker_deadline:
                        reason = "hung"
                    elif (
                        config.straggler_timeout is not None
                        and now - handle.assigned_at > config.straggler_timeout
                    ):
                        reason = "straggler"
                if reason is None:
                    continue
                _kill(handle)
                handles[w] = None
                if handle.assigned is not None:
                    todo.appendleft(handle.assigned)
                    rec.inc("supervisor.items_reassigned")
                elif reason == "died" and not todo:
                    # An idle worker died with no work left to give it:
                    # harmless, don't spend budget on a replacement.
                    rec.event(
                        "supervisor.idle_worker_lost",
                        level="debug",
                        worker=w,
                        label=label,
                    )
                    continue
                respawns += 1
                rec.inc("supervisor.respawns")
                rec.event(
                    "supervisor.respawn",
                    level="warning",
                    label=label,
                    worker=w,
                    reason=reason,
                    item=handle.assigned,
                    respawns=respawns,
                    budget=config.max_respawns,
                )
                if respawns > config.max_respawns:
                    break
                handles[w] = _spawn(ctx, w, fn, slab, label)
        if failure is not None:
            raise failure
        return respawns > config.max_respawns and outstanding > 0
    finally:
        _teardown(handles)
        owner.destroy()


def _cancel_workers(
    handles: list[_Handle | None], rec, label: str, grace: float = 1.0
) -> None:
    """Graceful shutdown on cancellation: SIGTERM → grace → SIGKILL.

    SIGTERM first gives children that inherited the CLI's signal guard a
    chance to stop cooperatively; anything still alive after ``grace``
    seconds is SIGKILLed. Handles are cleared so the rung's ``finally``
    teardown has nothing left to wait on.
    """
    live = sum(1 for h in handles if h is not None)
    rec.inc("supervisor.cancelled")
    rec.event("supervisor.cancelled", level="warning", label=label, workers=live)
    for handle in handles:
        if handle is None:
            continue
        try:
            handle.proc.terminate()
        except (OSError, ValueError):
            pass
    deadline = time.monotonic() + grace
    for w, handle in enumerate(handles):
        if handle is None:
            continue
        handle.proc.join(timeout=max(deadline - time.monotonic(), 0.1))
        if handle.proc.is_alive():
            _kill(handle)
        else:
            try:
                handle.conn.close()
            except OSError:
                pass
        handles[w] = None


def _teardown(handles: list[_Handle | None]) -> None:
    """Stop every worker: sentinel, short grace, then SIGKILL."""
    for handle in handles:
        if handle is None:
            continue
        try:
            handle.conn.send(None)
        except (OSError, ValueError):
            pass
    deadline = time.monotonic() + 2.0
    for handle in handles:
        if handle is None:
            continue
        handle.proc.join(timeout=max(deadline - time.monotonic(), 0.1))
        if handle.proc.is_alive():
            _kill(handle)
        else:
            try:
                handle.conn.close()
            except OSError:
                pass
