"""Run lifecycle control: deadlines, cooperative cancellation, signals.

Long-running embedding jobs get preempted: a scheduler sends SIGTERM, an
operator hits Ctrl-C, a wall-clock budget expires. Before this module
the process died wherever it happened to be — leaking ``/dev/shm``
segments, orphaning Hogwild workers, and losing everything since the
last checkpoint. Lifecycle control turns all of those endings into one
*cooperative* shutdown path:

- a :class:`CancellationToken` is flipped exactly once (by a signal
  handler, a deadline timer, or library code) and never unflipped;
- hot loops — walk stepping, sentence batches, Hogwild epoch shards,
  the supervisor watchdog — poll the ambient :class:`CancelScope` and
  raise :class:`RunInterrupted` at the next checkpointable boundary;
- the owners of durable state (trainer, chunked walk engine) write a
  final integrity-covered checkpoint *before* raising, so ``--resume``
  replays from the boundary and produces bitwise-identical output;
- the CLI maps the exception to conventional exit codes — **130** for
  an interrupt (128+SIGINT), **124** for a deadline (``timeout(1)``'s
  convention).

The ambient-scope pattern mirrors ``current_heartbeat`` in
:mod:`repro.resilience.supervisor`: entry points activate a scope via
:func:`cancel_scope`, and deeply nested loops read it back with
:func:`current_cancel_scope` — no threading of the token through every
signature. Scopes are inherited by forked workers (module globals and
the monotonic deadline survive ``fork``), so a chunk task running in a
pool worker observes the same deadline the parent armed.

Signal semantics (:func:`signal_guard`): the *first* SIGTERM/SIGINT
requests cancellation; a *second* signal hard-exits with ``128+signum``
immediately — the escape hatch when cooperative shutdown is stuck. The
handler body only flips the token and runs registered callbacks (e.g.
broadcasting a cancel flag into a Hogwild metrics slab); it never logs
or allocates, keeping it safe at any interruption point.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
from typing import Any, Callable, Iterator

__all__ = [
    "CancellationToken",
    "Deadline",
    "CancelScope",
    "RunInterrupted",
    "NULL_SCOPE",
    "cancel_scope",
    "current_cancel_scope",
    "expire_active_deadline",
    "signal_guard",
    "EXIT_INTERRUPTED",
    "EXIT_DEADLINE",
]

# Conventional exit codes: 128+SIGINT for interrupts, timeout(1)'s 124
# for an expired wall-clock budget.
EXIT_INTERRUPTED = 130
EXIT_DEADLINE = 124


class RunInterrupted(RuntimeError):
    """Cooperative shutdown in flight: the run stopped at a boundary.

    Raised by :meth:`CancelScope.check` once cancellation is requested
    or the deadline expires. By the time it propagates, the raising
    engine has already written its final checkpoint (or had nothing to
    save); callers should release resources and let it reach the CLI,
    which maps :attr:`exit_code` to the process status.
    """

    def __init__(self, reason: str = "cancelled", *, detail: str | None = None):
        message = f"run interrupted ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.reason = reason
        self.detail = detail

    @property
    def exit_code(self) -> int:
        return EXIT_DEADLINE if self.reason == "deadline" else EXIT_INTERRUPTED


class CancellationToken:
    """A one-way latch requesting cooperative shutdown.

    Thread- and signal-safe: :meth:`cancel` may run inside a signal
    handler, so it does nothing but flip the flag and invoke registered
    callbacks (which must themselves be async-signal-tolerant — the
    Hogwild slab broadcast is a single numpy store). The first
    ``cancel`` call wins; later calls are no-ops.
    """

    __slots__ = ("_cancelled", "_reason", "_detail", "_callbacks", "_lock")

    def __init__(self) -> None:
        self._cancelled = False
        self._reason: str | None = None
        self._detail: str | None = None
        self._callbacks: list[Callable[[], None]] = []
        self._lock = threading.Lock()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str | None:
        return self._reason

    @property
    def detail(self) -> str | None:
        return self._detail

    def cancel(self, reason: str = "cancelled", detail: str | None = None) -> bool:
        """Request shutdown; returns True only for the winning call."""
        if self._cancelled:
            return False
        self._cancelled = True
        self._reason = reason
        self._detail = detail
        for callback in tuple(self._callbacks):
            try:
                callback()
            except Exception:
                pass  # a broken observer must not mask the cancellation
        return True

    def on_cancel(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Register ``callback`` to run at cancellation; returns an
        unsubscribe callable. If the token is already cancelled the
        callback fires immediately (late subscribers still observe)."""
        with self._lock:
            self._callbacks.append(callback)
        if self._cancelled:
            callback()

        def unsubscribe() -> None:
            with self._lock:
                with contextlib.suppress(ValueError):
                    self._callbacks.remove(callback)

        return unsubscribe


class Deadline:
    """A wall-clock budget measured on the monotonic clock.

    The expiry instant is fixed at construction, so copies inherited by
    forked workers expire at the same real moment as the parent's.
    :meth:`force_expire` lets chaos tests trip the budget on demand.
    """

    __slots__ = ("seconds", "_expires_at", "_forced")

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("deadline seconds must be non-negative")
        self.seconds = float(seconds)
        self._expires_at = time.monotonic() + self.seconds
        self._forced = False

    def remaining(self) -> float:
        if self._forced:
            return 0.0
        return max(self._expires_at - time.monotonic(), 0.0)

    def expired(self) -> bool:
        return self._forced or time.monotonic() >= self._expires_at

    def force_expire(self) -> None:
        self._forced = True


class CancelScope:
    """The pair a hot loop polls: an optional token + optional deadline."""

    __slots__ = ("token", "deadline")

    def __init__(
        self, token: CancellationToken | None, deadline: Deadline | None
    ) -> None:
        self.token = token
        self.deadline = deadline

    def cancelled(self) -> bool:
        token = self.token
        if token is not None and token.cancelled:
            return True
        deadline = self.deadline
        return deadline is not None and deadline.expired()

    def reason(self) -> str | None:
        token = self.token
        if token is not None and token.cancelled:
            return token.reason
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            return "deadline"
        return None

    def check(self) -> None:
        """Raise :class:`RunInterrupted` if shutdown was requested.

        Deadline expiry discovered here also cancels the token (when
        one is present) so ``on_cancel`` observers — e.g. the Hogwild
        slab broadcast that stops workers — fire for deadlines too.
        """
        token = self.token
        if token is not None and token.cancelled:
            _raise_interrupted(token.reason or "cancelled", token.detail)
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            if token is not None:
                token.cancel("deadline")
            _raise_interrupted("deadline")


NULL_SCOPE = CancelScope(None, None)

_active_scope: CancelScope = NULL_SCOPE


def current_cancel_scope() -> CancelScope:
    """The ambient scope (:data:`NULL_SCOPE` when nothing is active)."""
    return _active_scope


@contextlib.contextmanager
def cancel_scope(
    token: CancellationToken | None = None,
    deadline: Deadline | None = None,
) -> Iterator[CancelScope]:
    """Activate a scope for the dynamic extent of a run.

    Missing parts are inherited from the enclosing scope, so a nested
    engine adding only a deadline still honors the CLI's signal token.
    With neither part supplied this is a read-only view of the current
    scope (engines call it unconditionally on a context's fields).
    """
    global _active_scope
    outer = _active_scope
    if token is None and deadline is None:
        yield outer
        return
    _active_scope = CancelScope(token or outer.token, deadline or outer.deadline)
    try:
        yield _active_scope
    finally:
        _active_scope = outer


def expire_active_deadline() -> bool:
    """Force-expire the ambient deadline (chaos hook); False if none."""
    deadline = _active_scope.deadline
    if deadline is None:
        return False
    deadline.force_expire()
    return True


def _raise_interrupted(reason: str, detail: str | None = None) -> None:
    """Emit the lifecycle event/metric, then raise :class:`RunInterrupted`.

    Emission happens at the raise site — the single choke point every
    cooperative check funnels through — so the run manifest records the
    interruption no matter which engine noticed it first.
    """
    from repro.obs.recorder import current_recorder  # lazy: obs imports us

    rec = current_recorder()
    if rec.enabled:
        rec.inc("lifecycle.interrupted")
        rec.event(
            "lifecycle.interrupted",
            level="warning",
            reason=reason,
            detail=detail,
            pid=os.getpid(),
        )
    raise RunInterrupted(reason, detail=detail)


@contextlib.contextmanager
def signal_guard(
    token: CancellationToken,
    *,
    deadline: Deadline | None = None,
    signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
    hard_exit: bool = True,
) -> Iterator[CancellationToken]:
    """Route SIGTERM/SIGINT into ``token`` for the duration of a run.

    First signal → ``token.cancel("signal")``; second → immediate
    ``os._exit(128+signum)`` (cooperative shutdown is presumed stuck).
    When ``deadline`` is given, a daemon timer cancels the token with
    reason ``"deadline"`` at expiry, waking worker loops that poll the
    token (the scope's own deadline check covers single-process paths).

    Installs nothing when called off the main thread (the interpreter
    forbids it); previous handlers are restored on exit either way.
    """
    if threading.current_thread() is not threading.main_thread():
        yield token
        return

    seen = [0]

    def _handler(signum: int, frame: Any) -> None:
        seen[0] += 1
        if seen[0] > 1 and hard_exit:
            os._exit(128 + signum)
        token.cancel("signal", detail=signal.Signals(signum).name)

    previous = {sig: signal.signal(sig, _handler) for sig in signals}
    timer: threading.Timer | None = None
    if deadline is not None:
        timer = threading.Timer(
            deadline.remaining(), lambda: token.cancel("deadline")
        )
        timer.daemon = True
        timer.start()
    try:
        yield token
    finally:
        if timer is not None:
            timer.cancel()
        for sig, prev in previous.items():
            signal.signal(sig, prev)
