"""Resource-pressure guardrails: budgets, preflight, watchdog, ladder.

PRs 1/4/6 hardened the pipeline against dying *workers* and *signals*;
this module defends against a dying *host* — the machine running out of
RAM, /dev/shm, or disk mid-job. Three layers:

**Preflight** (:func:`preflight`). Before ``Pipeline.execute`` runs a
single stage, :func:`estimate_footprint` predicts the run's peak RSS
(embedding matrices, walk corpus, Hogwild context slabs), /dev/shm
need, and checkpoint-dir disk need from the stage configs plus the
input graph size. Against a :class:`ResourceBudget` the run then either
fails fast with the typed :class:`BudgetExceeded` (``auto_degrade=False``)
or degrades itself — fewer effective workers means no shared-memory
slabs — before any expensive allocation happens.

**Watchdog** (:class:`PressureWatchdog`). A daemon thread samples VmRSS,
/dev/shm free space, and checkpoint-dir free space every ``interval``
seconds, publishing ``guard.*`` gauges and events through ``repro.obs``
and appending ``pressure`` records to the run manifest. On a threshold
breach it drives the **degradation ladder**:

    level 1  shrink walk frontier waves to one chunk at a time
    level 2  disable the persistent worker pool (frees idle forks + shm)
    level 3  halve effective Hogwild map concurrency
    level 4  cancel the run: ``RunInterrupted(reason="resource_pressure")``

Level 4 rides the PR 6 cooperative-cancel machinery: the engines save
their epoch/wave-boundary checkpoints on the way down, so the run is
resumable bitwise-identically — exactly like a SIGTERM. Crucially, no
rung changes *model identity*: wave size and map concurrency are
scheduling knobs outside every resume fingerprint, and Hogwild task
structure (shards, per-worker seeds) always follows ``config.workers``.

**Ladder state** (:class:`GuardState`). A process-wide singleton the hot
paths poll cheaply: the walk engine clamps its wave via
:func:`clamp_wave`, ``get_pool`` consults :func:`pool_allowed`, the
Hogwild trainer maps with :func:`effective_workers`. All no-ops at
level 0, which is the only state tests and normal runs ever see unless
a budget is armed.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.obs.logging import get_logger
from repro.obs.recorder import current_recorder
from repro.obs.resources import _proc_rss_kb

__all__ = [
    "BudgetExceeded",
    "GuardState",
    "PressureWatchdog",
    "ResourceBudget",
    "RunFootprint",
    "clamp_wave",
    "effective_workers",
    "estimate_footprint",
    "guard_state",
    "parse_size",
    "pool_allowed",
    "preflight",
    "reset_guard",
]

_log = get_logger("repro.resilience.guard")

SHM_DIR = "/dev/shm"

#: Fraction of the memory budget at which the watchdog starts degrading.
DEGRADE_FRACTION = 0.85
#: Minimum free space (bytes) the watchdog tolerates on /dev/shm or the
#: checkpoint filesystem before treating it as pressure.
MIN_FREE_BYTES = 32 * 1024 * 1024
#: Ladder levels (level 0 = healthy).
LEVEL_WAVE = 1
LEVEL_POOL = 2
LEVEL_WORKERS = 3
LEVEL_CANCEL = 4

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMGT]?)I?B?\s*$", re.IGNORECASE)
_SIZE_UNITS = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}


def parse_size(text: str | int | float) -> int:
    """``"2G"`` / ``"512M"`` / ``"1048576"`` → bytes (binary units)."""
    if isinstance(text, (int, float)):
        if text <= 0:
            raise ValueError("size must be positive")
        return int(text)
    match = _SIZE_RE.match(str(text))
    if not match:
        raise ValueError(f"unparseable size {text!r} (expected e.g. '2G', '512M')")
    value = float(match.group(1)) * _SIZE_UNITS[match.group(2).upper()]
    if value <= 0:
        raise ValueError("size must be positive")
    return int(value)


def format_size(num_bytes: float) -> str:
    """Human-readable binary size for messages (``1.5G``, ``512.0M``)."""
    value = float(num_bytes)
    for unit in ("", "K", "M", "G"):
        if abs(value) < 1024:
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}T"


class BudgetExceeded(RuntimeError):
    """A run's estimated footprint does not fit its resource budget.

    Raised by :func:`preflight` *before* any allocation happens, so the
    operator fixes the budget or the config instead of meeting the OOM
    killer twenty minutes in.
    """

    def __init__(
        self, resource: str, needed: int, budget: int, detail: str = ""
    ) -> None:
        msg = (
            f"{resource} budget exceeded: run needs ~{format_size(needed)}, "
            f"budget is {format_size(budget)}"
        )
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.resource = resource
        self.needed = int(needed)
        self.budget = int(budget)


@dataclass(frozen=True)
class ResourceBudget:
    """Operator-declared ceilings for one run (``--memory-budget`` etc.).

    ``memory_bytes`` bounds peak RSS (and, transitively, the /dev/shm
    slabs, which live in RAM); ``disk_bytes`` bounds what the checkpoint
    directory may grow to. ``auto_degrade=True`` lets preflight shrink
    workers to fit instead of raising; the runtime ladder always
    degrades (that is its purpose). ``interval`` is the watchdog sample
    period.
    """

    memory_bytes: int | None = None
    disk_bytes: int | None = None
    auto_degrade: bool = True
    interval: float = 0.5

    def __post_init__(self) -> None:
        if self.memory_bytes is not None and self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.disk_bytes is not None and self.disk_bytes <= 0:
            raise ValueError("disk_bytes must be positive")
        if self.interval <= 0:
            raise ValueError("interval must be positive")

    @property
    def armed(self) -> bool:
        return self.memory_bytes is not None or self.disk_bytes is not None


@dataclass(frozen=True)
class RunFootprint:
    """Predicted peak resource needs of one pipeline run, in bytes."""

    rss_bytes: int = 0
    shm_bytes: int = 0
    disk_bytes: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rss_bytes": self.rss_bytes,
            "shm_bytes": self.shm_bytes,
            "disk_bytes": self.disk_bytes,
            "breakdown": dict(self.breakdown),
        }


def _graph_size(value: Any) -> tuple[int, int]:
    """(vertices, edges) from a pipeline input, best-effort."""
    n = getattr(value, "n", None) or getattr(value, "num_vertices", None)
    m = getattr(value, "num_edges", None)
    return int(n or 0), int(m or 0)


def estimate_footprint(
    stages: list[Any], value: Any, *, workers: int = 1
) -> RunFootprint:
    """Predict peak RSS / shm / checkpoint-disk needs for a stage chain.

    Sniffs stage configs structurally (a walk config has
    ``walks_per_vertex``; a train config has ``dim`` and ``window``) so
    the estimator needs no import of the stage classes. Estimates are
    deliberately slightly conservative — float64 reference-kernel sizes,
    two resident copies of the walk corpus during the walks→train
    handoff — because the failure mode of underestimating is the OOM
    killer.
    """
    n, m = _graph_size(value)
    graph_bytes = (n + 2 * m) * 8
    breakdown: dict[str, int] = {}
    disk_extra = 0
    if getattr(value, "mmap_backed", False):
        # Out-of-core store: CSR pages live on disk and fault in on
        # demand; the walk engine touches one shard's row range at a
        # time, so the resident working set is roughly one shard, not
        # the graph. The structure itself counts against disk.
        num_shards = max(int(getattr(value, "num_shards", 1) or 1), 1)
        breakdown["graph_mmap_working_set"] = graph_bytes // num_shards
        disk_extra = graph_bytes
    else:
        breakdown["graph"] = graph_bytes
    tokens = 0
    shm = 0
    disk = 0
    for stage in stages:
        cfg = getattr(stage, "config", None)
        if cfg is None:
            continue
        if hasattr(cfg, "walks_per_vertex") and hasattr(cfg, "walk_length"):
            num_walks = n * int(cfg.walks_per_vertex)
            tokens = num_walks * int(cfg.walk_length)
            # int64 walk matrix, resident twice at the stage handoff
            # (engine result + chunk assembly buffers).
            breakdown["walk_corpus"] = tokens * 8 * 2
            # Checkpointed walk chunks mirror the corpus on disk, plus
            # one in-flight tmp file.
            disk += tokens * 8 + max(tokens, 1) * 8 // 4
        if hasattr(cfg, "dim") and hasattr(cfg, "window"):
            dim = int(cfg.dim)
            window = int(cfg.window)
            cfg_workers = int(getattr(cfg, "workers", 1) or 1)
            weights = 2 * n * dim * 8  # input + output matrices, float64
            # CBOW context examples: one row of 2*window context ids +
            # center per token (int64), materialized for shuffling.
            examples = tokens * (1 + 2 * window) * 8
            breakdown["train_weights"] = weights
            breakdown["train_examples"] = examples
            if max(cfg_workers, workers) > 1:
                # Hogwild maps weights + examples into /dev/shm slabs.
                shm += weights + examples
                breakdown["hogwild_shm"] = weights + examples
            # Epoch snapshots: weights + RNG state, tmp + final copies.
            disk += weights * 2
    rss = sum(breakdown.values())
    return RunFootprint(
        rss_bytes=rss,
        shm_bytes=shm,
        disk_bytes=disk + disk_extra,
        breakdown=breakdown,
    )


def _degraded_stages_fit(footprint: RunFootprint, budget: int) -> bool:
    """Would dropping the shm slabs (workers→1) fit the memory budget?"""
    return footprint.rss_bytes - footprint.shm_bytes <= budget


def preflight(
    ctx: Any, stages: list[Any], value: Any
) -> Any:
    """Budget check before the first stage runs; may return a degraded ctx.

    No-op (returns ``ctx`` unchanged) when the context carries no armed
    budget. With ``auto_degrade`` the only lever preflight pulls is
    ``workers → 1`` — dropping the Hogwild shm slabs — because that is
    the one degradation that provably reduces the footprint without
    touching model identity for a fresh run. If even the degraded
    footprint does not fit, or ``auto_degrade`` is off, raises
    :class:`BudgetExceeded`.
    """
    budget: ResourceBudget | None = getattr(ctx, "budget", None)
    if budget is None or not budget.armed:
        return ctx
    footprint = estimate_footprint(stages, value, workers=ctx.resolve_workers())
    rec = current_recorder()
    rec.event(
        "guard.preflight",
        level="info",
        **footprint.as_dict(),
        memory_budget=budget.memory_bytes,
        disk_budget=budget.disk_bytes,
    )
    if budget.memory_bytes is not None and (
        footprint.rss_bytes > budget.memory_bytes
    ):
        if budget.auto_degrade and ctx.workers != 1 and _degraded_stages_fit(
            footprint, budget.memory_bytes
        ):
            rec.inc("guard.degradations")
            rec.event(
                "guard.degraded",
                level="warning",
                action="preflight_workers_to_1",
                estimated_rss=footprint.rss_bytes,
                memory_budget=budget.memory_bytes,
            )
            _log.warning(
                "guard.preflight_degrade",
                estimated_rss=footprint.rss_bytes,
                budget=budget.memory_bytes,
                workers_before=ctx.workers,
            )
            return replace(ctx, workers=1)
        raise BudgetExceeded(
            "memory",
            footprint.rss_bytes,
            budget.memory_bytes,
            detail=f"breakdown={footprint.breakdown}",
        )
    if budget.disk_bytes is not None and footprint.disk_bytes > budget.disk_bytes:
        raise BudgetExceeded(
            "disk",
            footprint.disk_bytes,
            budget.disk_bytes,
            detail="checkpoint artifacts exceed --disk-budget",
        )
    return ctx


# ---------------------------------------------------------------------------
# Degradation-ladder state (process-wide, polled by the hot paths)


class GuardState:
    """Current degradation level plus the knobs each rung controls."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.level = 0
        self._on_cancel: Callable[[], None] | None = None

    def reset(self, *, on_cancel: Callable[[], None] | None = None) -> None:
        with self._lock:
            self.level = 0
            self._on_cancel = on_cancel

    def escalate(self, reason: str, *, to_level: int | None = None) -> int:
        """Raise the degradation level by one rung (or jump to ``to_level``).

        Returns the new level. Emits ``guard.degraded`` naming the rung
        so manifests show exactly which mitigations fired, in order.
        """
        with self._lock:
            target = self.level + 1 if to_level is None else max(
                to_level, self.level
            )
            target = min(target, LEVEL_CANCEL)
            if target == self.level:
                return self.level
            self.level = target
            on_cancel = self._on_cancel if target >= LEVEL_CANCEL else None
        rec = current_recorder()
        rec.inc("guard.degradations")
        rec.set("guard.level", float(target))
        rec.event(
            "guard.degraded",
            level="warning",
            rung=target,
            action=_RUNG_NAMES.get(target, "?"),
            reason=reason,
        )
        _log.warning(
            "guard.degraded",
            rung=target,
            action=_RUNG_NAMES.get(target, "?"),
            reason=reason,
        )
        if target >= LEVEL_POOL:
            # Frees idle forked workers and their inherited pages now,
            # not at the next map.
            from repro.parallel.persistent import shutdown_pools

            shutdown_pools()
        if on_cancel is not None:
            on_cancel()
        return target


_RUNG_NAMES = {
    LEVEL_WAVE: "shrink_walk_waves",
    LEVEL_POOL: "disable_persistent_pool",
    LEVEL_WORKERS: "halve_workers",
    LEVEL_CANCEL: "emergency_checkpoint",
}

_STATE = GuardState()


def guard_state() -> GuardState:
    """The process-wide ladder state."""
    return _STATE


def reset_guard() -> None:
    """Return the ladder to level 0 (tests; start of every guarded run)."""
    _STATE.reset()


def clamp_wave(wave: int) -> int:
    """Walk-engine hook: chunks per frontier wave under pressure.

    Level ≥ 1 serializes chunk scheduling to one chunk per wave, halving
    the live walk buffers. Wave size is pure scheduling — the resume
    fingerprint counts *chunks*, not waves — so this never perturbs
    resumability.
    """
    if _STATE.level >= LEVEL_WAVE:
        return 1
    return wave


def pool_allowed() -> bool:
    """Persistent-pool hook: False once the ladder reached level 2."""
    return _STATE.level < LEVEL_POOL


def effective_workers(workers: int) -> int:
    """Hogwild hook: map concurrency under pressure (identity preserved).

    Level ≥ 3 halves the *pool size* only; task structure (shards,
    per-(epoch, worker) seeds) still follows ``config.workers``, so the
    trained model is the one the config names — it just arrives slower.
    """
    if _STATE.level >= LEVEL_WORKERS and workers > 1:
        return max(1, workers // 2)
    return workers


# ---------------------------------------------------------------------------
# Runtime watchdog


def _free_bytes(path: str | Path) -> int | None:
    try:
        stat = os.statvfs(path)
    except OSError:
        return None
    return stat.f_bavail * stat.f_frsize


def _rss_bytes() -> int | None:
    kb = _proc_rss_kb()
    return None if kb is None else int(kb * 1024)


class PressureWatchdog:
    """Daemon thread sampling RSS / shm / disk and driving the ladder.

    One watchdog per guarded ``Pipeline.execute``; it owns the process
    ladder state for the duration (``reset`` on start, and the cancel
    rung is wired to the run's cancellation token). Samples publish
    ``guard.rss_bytes`` / ``guard.shm_free_bytes`` /
    ``guard.disk_free_bytes`` gauges and append ``pressure`` records to
    the recorder so the manifest carries the pressure timeline.
    """

    def __init__(
        self,
        budget: ResourceBudget,
        *,
        checkpoint_dir: str | Path | None = None,
        cancel: Callable[[], None] | None = None,
        cooldown: float = 2.0,
    ) -> None:
        self.budget = budget
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._cancel = cancel
        self.cooldown = float(cooldown)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_escalation = 0.0
        self.samples = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "PressureWatchdog":
        _STATE.reset(on_cancel=self._cancel)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-guard", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(self.budget.interval * 4, 2.0))
            self._thread = None
        # The run is over; leave the ladder as-is for inspection but
        # detach the cancel hook so a stale escalation cannot cancel a
        # *later* run's token.
        _STATE._on_cancel = None

    def __enter__(self) -> "PressureWatchdog":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------
    def sample(self) -> dict[str, Any]:
        """One pressure sample (also the unit tests' entry point)."""
        record: dict[str, Any] = {
            "t": round(time.monotonic(), 3),
            "level": _STATE.level,
        }
        rec = current_recorder()
        rss = _rss_bytes()
        if rss is not None:
            record["rss_bytes"] = rss
            rec.set("guard.rss_bytes", float(rss))
        shm_free = _free_bytes(SHM_DIR)
        if shm_free is not None:
            record["shm_free_bytes"] = shm_free
            rec.set("guard.shm_free_bytes", float(shm_free))
        if self.checkpoint_dir is not None:
            disk_free = _free_bytes(self.checkpoint_dir)
            if disk_free is not None:
                record["disk_free_bytes"] = disk_free
                rec.set("guard.disk_free_bytes", float(disk_free))
        self.samples += 1
        return record

    def evaluate(self, record: dict[str, Any]) -> str | None:
        """Breach detection on one sample; returns the reason or None."""
        mem = self.budget.memory_bytes
        rss = record.get("rss_bytes")
        if mem is not None and rss is not None:
            if rss >= mem:
                return f"rss {format_size(rss)} >= budget {format_size(mem)}"
            if rss >= mem * DEGRADE_FRACTION:
                return (
                    f"rss {format_size(rss)} >= "
                    f"{int(DEGRADE_FRACTION * 100)}% of budget "
                    f"{format_size(mem)}"
                )
        shm_free = record.get("shm_free_bytes")
        if shm_free is not None and shm_free < MIN_FREE_BYTES:
            return f"/dev/shm free {format_size(shm_free)} below minimum"
        disk_free = record.get("disk_free_bytes")
        if disk_free is not None and disk_free < MIN_FREE_BYTES:
            return f"checkpoint disk free {format_size(disk_free)} below minimum"
        return None

    def poll_once(self) -> dict[str, Any]:
        """Sample, record, and escalate if breached (honoring cooldown)."""
        record = self.sample()
        reason = self.evaluate(record)
        rec = current_recorder()
        if reason is not None:
            rec.inc("guard.breaches")
            # The record's "level" is the *ladder* level; keep it out of
            # the event call's severity keyword.
            payload = {k: v for k, v in record.items() if k != "level"}
            rec.event(
                "guard.pressure",
                level="warning",
                reason=reason,
                ladder=record["level"],
                **payload,
            )
            record["breach"] = reason
            now = time.monotonic()
            if now - self._last_escalation >= self.cooldown:
                self._last_escalation = now
                # A hard overrun (rss past 100% of budget) goes straight
                # to the cancel rung; soft pressure climbs one rung.
                rss = record.get("rss_bytes")
                hard = (
                    self.budget.memory_bytes is not None
                    and rss is not None
                    and rss >= self.budget.memory_bytes
                )
                record["level"] = _STATE.escalate(
                    reason, to_level=LEVEL_CANCEL if hard else None
                )
        rec.add_pressure_record(record)
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.budget.interval):
            try:
                self.poll_once()
            except Exception as exc:  # pragma: no cover - watchdog must not die
                _log.warning("guard.sample_failed", error=repr(exc))
