"""Deterministic fault injection for testing recovery paths.

:class:`FaultInjector` wraps a callable and makes it misbehave on
command: raise on the Nth call, fail at a seeded random rate, inject
latency, or hard-kill the hosting process (``os._exit``) to simulate a
worker crash / OOM kill. Everything is deterministic — call counters
are exact and random failures derive from ``(seed, call_number)`` — so
a chaos test either always trips the recovery path or never does.

Instances are picklable (plain attributes, module-level class), so an
injector can ride into a ``ProcessPoolExecutor`` worker. Two details
matter for multi-process chaos:

- Call counters are **process-local**: the pickled copy a worker
  receives starts at zero. Trigger on *item values* (``fail_items`` /
  ``exit_items``) when scheduling across workers is nondeterministic.
- ``once_marker`` points at a filesystem path shared by all processes;
  a fault only fires while the marker is absent and creates it when it
  fires, giving "fail exactly once, then recover" semantics across
  retries and pool respawns.
"""

from __future__ import annotations

import errno
import os
import signal as _signal
import time
from pathlib import Path
from typing import Any, Callable, Collection

import numpy as np

from repro.obs.recorder import current_recorder

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "EXIT_CODE",
    "injected_memory_bytes",
    "release_injected_memory",
]

EXIT_CODE = 13  # distinctive status for injected process death

# Allocations made by ``mem_pressure`` faults, tracked process-wide so
# tests (and the pressure watchdog's own chaos runs) can measure and
# release them. Holding real bytearrays — not a mock — means VmRSS
# actually grows, which is what the watchdog samples.
_INJECTED_ALLOCATIONS: list[bytearray] = []


def injected_memory_bytes() -> int:
    """Total bytes currently held by ``mem_pressure`` faults."""
    return sum(len(b) for b in _INJECTED_ALLOCATIONS)


def release_injected_memory() -> int:
    """Free every tracked ``mem_pressure`` allocation; returns bytes freed."""
    freed = injected_memory_bytes()
    _INJECTED_ALLOCATIONS.clear()
    return freed


class InjectedFault(RuntimeError):
    """The error raised by an injected (non-fatal) fault."""


class FaultInjector:
    """A chaotic proxy for ``fn``.

    Parameters
    ----------
    fn:
        The callable to wrap. Must be picklable for cross-process use.
    fail_on_calls:
        1-based process-local call numbers that raise
        :class:`InjectedFault`.
    exit_on_calls:
        Call numbers that terminate the process via ``os._exit`` —
        bypassing ``finally`` blocks exactly like a SIGKILL/OOM kill.
    fail_items / exit_items:
        Trigger on the first positional argument instead of the call
        counter (robust under nondeterministic work scheduling).
    failure_rate:
        Probability of an injected failure on each call, derived
        deterministically from ``(seed, call_number)``.
    delay:
        Seconds to sleep before each underlying call (latency chaos).
    hang_on_calls / hang_items:
        Trigger a *hang*: sleep ``hang_seconds`` before proceeding,
        simulating a deadlocked/livelocked worker. Under supervision the
        watchdog kills the hung process long before the sleep ends; the
        marker is written **before** sleeping so the respawned retry
        runs clean.
    hang_seconds:
        Duration of an injected hang (default one hour — effectively
        forever for a supervised test, bounded for an unsupervised one).
    corrupt_on_calls / corrupt_items:
        Trigger file corruption: the file at ``corrupt_path`` is
        truncated to half its size with every 97th remaining byte
        XOR-flipped, then the underlying call proceeds normally. Models
        a torn write / bit rot on an artifact that looks fine to the
        writer.
    corrupt_path:
        The file the ``corrupt_file`` fault mangles. Required when any
        corrupt trigger is set.
    signal_on_calls / signal_items:
        Trigger delivery of ``signal_number`` to the process that
        *constructed* the injector (the run's parent) — not the process
        executing the call — so a fault fired inside a pool or
        supervised worker still simulates "the scheduler SIGTERMed the
        job". The underlying call then proceeds normally; the run winds
        down at its next cooperative cancel check.
    signal_number:
        Signal delivered by the ``signal`` fault (default ``SIGTERM``).
    deadline_on_calls / deadline_items:
        Trigger forced expiry of the active lifecycle deadline
        (:func:`repro.resilience.lifecycle.expire_active_deadline`) in
        the calling process — chaos for ``--deadline`` runs without
        waiting out a real wall-clock budget. A no-op when no deadline
        is active.
    enospc_on_calls / enospc_items:
        Raise ``OSError(ENOSPC)`` — the exact exception a full
        filesystem produces — instead of running the wrapped callable.
        Wrap a write path (``os.fsync``, a checkpoint save) with this to
        exercise the :class:`repro.resilience.checkpoint.DiskFull`
        reclaim-and-retry machinery without actually filling a disk.
    mem_pressure_on_calls / mem_pressure_items:
        Inflate a *tracked* allocation of ``mem_pressure_bytes`` real
        bytes (VmRSS genuinely grows), then proceed with the call.
        Allocations accumulate in a module-level ledger; inspect with
        :func:`injected_memory_bytes` and free with
        :func:`release_injected_memory`. Drives the pressure watchdog's
        degradation ladder in tests without risking a real OOM kill.
    mem_pressure_bytes:
        Size of each injected allocation (default 64 MiB).
    once_marker:
        Optional path; faults fire only while it does not exist and
        create it upon firing, so a retried call succeeds.
    only_in_subprocess:
        Arm faults only when running in a process other than the one
        that constructed the injector — lets a test break *every* pool
        worker while the in-process serial fallback still succeeds.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        *,
        fail_on_calls: Collection[int] = (),
        exit_on_calls: Collection[int] = (),
        fail_items: Collection[Any] = (),
        exit_items: Collection[Any] = (),
        failure_rate: float = 0.0,
        seed: int = 0,
        delay: float = 0.0,
        hang_on_calls: Collection[int] = (),
        hang_items: Collection[Any] = (),
        hang_seconds: float = 3600.0,
        corrupt_on_calls: Collection[int] = (),
        corrupt_items: Collection[Any] = (),
        corrupt_path: str | Path | None = None,
        signal_on_calls: Collection[int] = (),
        signal_items: Collection[Any] = (),
        signal_number: int = _signal.SIGTERM,
        deadline_on_calls: Collection[int] = (),
        deadline_items: Collection[Any] = (),
        enospc_on_calls: Collection[int] = (),
        enospc_items: Collection[Any] = (),
        mem_pressure_on_calls: Collection[int] = (),
        mem_pressure_items: Collection[Any] = (),
        mem_pressure_bytes: int = 64 * 1024 * 1024,
        once_marker: str | Path | None = None,
        only_in_subprocess: bool = False,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if seed < 0:
            raise ValueError("seed must be non-negative")
        if hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if (corrupt_on_calls or corrupt_items) and corrupt_path is None:
            raise ValueError("corrupt faults require corrupt_path")
        if mem_pressure_bytes <= 0:
            raise ValueError("mem_pressure_bytes must be positive")
        self.fn = fn
        self.fail_on_calls = frozenset(int(c) for c in fail_on_calls)
        self.exit_on_calls = frozenset(int(c) for c in exit_on_calls)
        self.fail_items = tuple(fail_items)
        self.exit_items = tuple(exit_items)
        self.failure_rate = float(failure_rate)
        self.seed = int(seed)
        self.delay = float(delay)
        self.hang_on_calls = frozenset(int(c) for c in hang_on_calls)
        self.hang_items = tuple(hang_items)
        self.hang_seconds = float(hang_seconds)
        self.corrupt_on_calls = frozenset(int(c) for c in corrupt_on_calls)
        self.corrupt_items = tuple(corrupt_items)
        self.corrupt_path = str(corrupt_path) if corrupt_path is not None else None
        self.signal_on_calls = frozenset(int(c) for c in signal_on_calls)
        self.signal_items = tuple(signal_items)
        self.signal_number = int(signal_number)
        self.deadline_on_calls = frozenset(int(c) for c in deadline_on_calls)
        self.deadline_items = tuple(deadline_items)
        self.enospc_on_calls = frozenset(int(c) for c in enospc_on_calls)
        self.enospc_items = tuple(enospc_items)
        self.mem_pressure_on_calls = frozenset(
            int(c) for c in mem_pressure_on_calls
        )
        self.mem_pressure_items = tuple(mem_pressure_items)
        self.mem_pressure_bytes = int(mem_pressure_bytes)
        self.once_marker = str(once_marker) if once_marker is not None else None
        self.only_in_subprocess = bool(only_in_subprocess)
        self._home_pid = os.getpid()
        self.calls = 0  # process-local

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the process-local call counter."""
        self.calls = 0

    def _armed(self) -> bool:
        if self.only_in_subprocess and os.getpid() == self._home_pid:
            return False
        if self.once_marker is None:
            return True
        return not os.path.exists(self.once_marker)

    def _mark_fired(self) -> None:
        if self.once_marker is not None:
            Path(self.once_marker).touch()

    def _random_says_fail(self, call_number: int) -> bool:
        if self.failure_rate <= 0.0:
            return False
        rng = np.random.default_rng((self.seed, call_number))
        return bool(rng.random() < self.failure_rate)

    def _should(self, calls: Collection[int], items: tuple, args: tuple) -> bool:
        if self.calls in calls:
            return True
        return bool(items) and bool(args) and args[0] in items

    def _corrupt_file(self) -> None:
        """Tear and bit-flip ``corrupt_path``: truncate to half, then XOR
        every 97th remaining byte. A no-op if the file does not exist."""
        path = Path(self.corrupt_path)
        try:
            raw = bytearray(path.read_bytes())
        except FileNotFoundError:
            return
        raw = raw[: max(len(raw) // 2, 1)]
        for i in range(0, len(raw), 97):
            raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))

    # ------------------------------------------------------------------
    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        if self._armed():
            rec = current_recorder()
            if self._should(self.hang_on_calls, self.hang_items, args):
                # Mark before sleeping: a supervisor kills this process
                # mid-sleep, and the respawned retry must pass clean.
                self._mark_fired()
                rec.inc("fault.injected")
                rec.event(
                    "fault.injected", level="warning", kind="hang",
                    call=self.calls, pid=os.getpid(),
                    seconds=self.hang_seconds,
                )
                time.sleep(self.hang_seconds)
            if self._should(self.corrupt_on_calls, self.corrupt_items, args):
                self._mark_fired()
                rec.inc("fault.injected")
                rec.event(
                    "fault.injected", level="warning", kind="corrupt_file",
                    call=self.calls, pid=os.getpid(), path=self.corrupt_path,
                )
                self._corrupt_file()
            if self._should(self.signal_on_calls, self.signal_items, args):
                self._mark_fired()
                rec.inc("fault.injected")
                rec.event(
                    "fault.injected", level="warning", kind="signal",
                    call=self.calls, pid=os.getpid(),
                    target_pid=self._home_pid, signum=self.signal_number,
                )
                # Target the constructing process: a worker firing this
                # fault signals the *run*, like an external preemption.
                os.kill(self._home_pid, self.signal_number)
            if self._should(self.deadline_on_calls, self.deadline_items, args):
                from repro.resilience.lifecycle import expire_active_deadline

                self._mark_fired()
                rec.inc("fault.injected")
                rec.event(
                    "fault.injected", level="warning", kind="deadline",
                    call=self.calls, pid=os.getpid(),
                    expired=expire_active_deadline(),
                )
            if self._should(
                self.mem_pressure_on_calls, self.mem_pressure_items, args
            ):
                self._mark_fired()
                _INJECTED_ALLOCATIONS.append(bytearray(self.mem_pressure_bytes))
                rec.inc("fault.injected")
                rec.event(
                    "fault.injected", level="warning", kind="mem_pressure",
                    call=self.calls, pid=os.getpid(),
                    bytes=self.mem_pressure_bytes,
                    held=injected_memory_bytes(),
                )
            if self._should(self.enospc_on_calls, self.enospc_items, args):
                self._mark_fired()
                rec.inc("fault.injected")
                rec.event(
                    "fault.injected", level="warning", kind="enospc",
                    call=self.calls, pid=os.getpid(),
                )
                raise OSError(
                    errno.ENOSPC,
                    f"injected ENOSPC on call {self.calls} (args={args!r})",
                )
            if self._should(self.exit_on_calls, self.exit_items, args):
                self._mark_fired()
                rec.inc("fault.injected")
                rec.event(
                    "fault.injected", level="warning", kind="exit",
                    call=self.calls, pid=os.getpid(),
                )
                os._exit(EXIT_CODE)
            if self._should(self.fail_on_calls, self.fail_items, args) or (
                self._random_says_fail(self.calls)
            ):
                self._mark_fired()
                rec.inc("fault.injected")
                rec.event(
                    "fault.injected", level="warning", kind="fail",
                    call=self.calls, pid=os.getpid(),
                )
                raise InjectedFault(
                    f"injected fault on call {self.calls} (args={args!r})"
                )
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector({getattr(self.fn, '__name__', self.fn)!r}, "
            f"calls={self.calls})"
        )
