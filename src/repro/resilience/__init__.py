"""Fault-tolerant execution: retry policies, atomic checkpoints, chaos.

The north-star deployment runs walk generation and training as long
multi-process jobs; this package supplies the three primitives every
layer above uses to survive partial failure:

- :mod:`repro.resilience.retry` — :class:`RetryPolicy` (bounded attempts,
  exponential backoff with deterministic seeded jitter) plus
  :func:`call_with_retry` and :func:`run_with_timeout`.
- :mod:`repro.resilience.checkpoint` — atomic ``write-tmp → fsync →
  rename`` snapshots of numpy state with a :class:`CheckpointManager`
  for named checkpoint directories.
- :mod:`repro.resilience.chaos` — a deterministic fault-injection
  harness (:class:`FaultInjector`) used by the test suite to prove each
  recovery path actually fires.
"""

from repro.resilience.chaos import FaultInjector, InjectedFault
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointManager,
    atomic_write_bytes,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.retry import (
    RetryError,
    RetryPolicy,
    call_with_retry,
    run_with_timeout,
)

__all__ = [
    "RetryPolicy",
    "RetryError",
    "call_with_retry",
    "run_with_timeout",
    "Checkpoint",
    "CheckpointManager",
    "atomic_write_bytes",
    "save_checkpoint",
    "load_checkpoint",
    "FaultInjector",
    "InjectedFault",
]
