"""Fault-tolerant execution: retry policies, atomic checkpoints, chaos.

The north-star deployment runs walk generation and training as long
multi-process jobs; this package supplies the primitives every layer
above uses to survive partial failure:

- :mod:`repro.resilience.retry` — :class:`RetryPolicy` (bounded attempts,
  exponential backoff with deterministic seeded jitter) plus
  :func:`call_with_retry` and :func:`run_with_timeout`.
- :mod:`repro.resilience.checkpoint` — atomic ``write-tmp → fsync →
  rename`` snapshots of numpy state with embedded SHA-256/CRC32
  integrity records, a typed :class:`CheckpointCorrupt` error, and a
  :class:`CheckpointManager` that quarantines corrupt files on resume.
- :mod:`repro.resilience.supervisor` — self-healing parallel maps:
  per-worker shared-memory heartbeats, a watchdog that kills and
  respawns dead *and hung* workers, straggler timeouts, and a degrade
  ladder that ends at serial execution (:func:`supervised_map`).
- :mod:`repro.resilience.chaos` — a deterministic fault-injection
  harness (:class:`FaultInjector`: fail / exit / hang / corrupt_file /
  signal / deadline) used by the test suite to prove each recovery path
  actually fires.
- :mod:`repro.resilience.lifecycle` — run lifecycle control:
  :class:`CancellationToken` + :class:`Deadline` carried on the
  :class:`repro.pipeline.ExecutionContext`, the ambient
  :class:`CancelScope` hot loops poll, :func:`signal_guard` for
  SIGTERM/SIGINT, and :class:`RunInterrupted` with conventional exit
  codes (130 interrupt, 124 deadline).
- :mod:`repro.resilience.guard` — resource-pressure guardrails:
  :class:`ResourceBudget` (``--memory-budget`` / ``--disk-budget``),
  preflight footprint estimation with typed :class:`BudgetExceeded`,
  the :class:`PressureWatchdog` daemon, and the pressure degradation
  ladder (shrink waves → drop pool → halve workers → emergency
  checkpoint).
- :mod:`repro.resilience.registry` — the crash-safe run journal
  (``runs.jsonl``) behind ``repro runs list`` / ``repro runs resume``,
  plus the startup sweeper that reclaims /dev/shm segments and torn
  tmp files from pid-gone runs.
"""

from repro.resilience.chaos import (
    FaultInjector,
    InjectedFault,
    injected_memory_bytes,
    release_injected_memory,
)
from repro.resilience.guard import (
    BudgetExceeded,
    PressureWatchdog,
    ResourceBudget,
    RunFootprint,
    estimate_footprint,
    guard_state,
    parse_size,
    preflight,
    reset_guard,
)
from repro.resilience.registry import RunRecord, RunRegistry
from repro.resilience.lifecycle import (
    EXIT_DEADLINE,
    EXIT_INTERRUPTED,
    CancellationToken,
    CancelScope,
    Deadline,
    RunInterrupted,
    cancel_scope,
    current_cancel_scope,
    expire_active_deadline,
    signal_guard,
)
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointManager,
    DiskFull,
    atomic_write_bytes,
    integrity_record,
    load_checkpoint,
    reclaim_disk,
    save_checkpoint,
    verify_integrity,
)
from repro.resilience.retry import (
    RetryError,
    RetryPolicy,
    call_with_retry,
    run_with_timeout,
)
from repro.resilience.supervisor import (
    SupervisorConfig,
    current_heartbeat,
    supervised_map,
)

__all__ = [
    "RetryPolicy",
    "RetryError",
    "call_with_retry",
    "run_with_timeout",
    "Checkpoint",
    "CheckpointCorrupt",
    "CheckpointManager",
    "DiskFull",
    "atomic_write_bytes",
    "reclaim_disk",
    "save_checkpoint",
    "load_checkpoint",
    "integrity_record",
    "verify_integrity",
    "SupervisorConfig",
    "supervised_map",
    "current_heartbeat",
    "FaultInjector",
    "InjectedFault",
    "injected_memory_bytes",
    "release_injected_memory",
    "BudgetExceeded",
    "PressureWatchdog",
    "ResourceBudget",
    "RunFootprint",
    "estimate_footprint",
    "guard_state",
    "parse_size",
    "preflight",
    "reset_guard",
    "RunRecord",
    "RunRegistry",
    "CancellationToken",
    "CancelScope",
    "Deadline",
    "RunInterrupted",
    "cancel_scope",
    "current_cancel_scope",
    "expire_active_deadline",
    "signal_guard",
    "EXIT_INTERRUPTED",
    "EXIT_DEADLINE",
]
