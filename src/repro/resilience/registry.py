"""Crash-safe run registry: who ran here, and did they finish?

Every checkpointed run appends journal records to ``runs.jsonl`` under
its checkpoint directory: one ``running`` record at startup (run id,
pid, argv, command, config fingerprint) and one terminal record on the
way out (``completed`` / ``interrupted`` / ``failed``). The journal is
append-only JSONL — a crash can at worst truncate the *last* line,
which the reader tolerates — so the registry itself needs no atomic
rename machinery and survives the very disk-full and SIGKILL scenarios
it exists to diagnose.

On top of the journal:

- :meth:`RunRegistry.sweep` is the startup sweeper. It detects orphaned
  runs (a ``running`` record whose pid is gone — the OOM-killer
  signature), folds them to ``orphaned``, reclaims their leftover
  ``repro-<pid>-*`` /dev/shm segments
  (:func:`repro.parallel.shm.sweep_orphan_segments`), and removes torn
  ``*.tmp.<pid>`` files under the checkpoint tree.
- :meth:`RunRegistry.latest_resumable` finds the most recent run that
  stopped before completing, with the exact argv it was launched with —
  what ``repro runs resume --latest`` replays so the user never
  reconstructs flags by hand.

Journal writes are best-effort: a registry that cannot write (read-only
or full filesystem) logs a warning and never takes the run down with it.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.logging import get_logger
from repro.obs.recorder import current_recorder

__all__ = ["RunRecord", "RunRegistry", "JOURNAL_NAME"]

JOURNAL_NAME = "runs.jsonl"

#: Journal statuses. ``running`` is open; the rest are terminal.
#: ``orphaned`` is assigned by the sweeper, never self-reported.
RUN_STATUSES = ("running", "completed", "interrupted", "failed", "orphaned")

_log = get_logger("repro.resilience.registry")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


@dataclass(frozen=True)
class RunRecord:
    """The folded (last-wins) state of one run in the journal."""

    run_id: str
    pid: int
    status: str
    command: str | None = None
    argv: tuple[str, ...] = ()
    config_fingerprint: str | None = None
    reason: str | None = None
    started_unix: float = 0.0
    updated_unix: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def resumable(self) -> bool:
        """True for runs that stopped before completing with known argv."""
        return self.status in ("interrupted", "failed", "orphaned") and bool(
            self.argv
        )


class RunRegistry:
    """Append-only run journal under one checkpoint directory."""

    def __init__(self, checkpoint_dir: str | Path) -> None:
        self.directory = Path(checkpoint_dir)
        self.journal = self.directory / JOURNAL_NAME
        self._run_id: str | None = None

    # -- writing --------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self.journal.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            # The registry is a flight recorder, not a dependency: a
            # full/read-only disk must not take the run down.
            _log.warning(
                "registry.write_failed", path=str(self.journal), error=repr(exc)
            )

    def open_run(
        self,
        *,
        command: str | None = None,
        argv: list[str] | tuple[str, ...] = (),
        config_fingerprint: str | None = None,
        run_id: str | None = None,
    ) -> str:
        """Journal this process as ``running``; returns the run id."""
        self._run_id = run_id or uuid.uuid4().hex[:12]
        self._append(
            {
                "run_id": self._run_id,
                "pid": os.getpid(),
                "status": "running",
                "command": command,
                "argv": list(argv),
                "config_fingerprint": config_fingerprint,
                "time_unix": time.time(),
            }
        )
        current_recorder().event(
            "registry.run_opened", level="debug", run_id=self._run_id
        )
        return self._run_id

    def close_run(self, status: str, *, reason: str | None = None) -> None:
        """Journal the terminal status of the run opened by this process."""
        if self._run_id is None:
            return
        if status not in RUN_STATUSES:
            raise ValueError(f"unknown run status {status!r}")
        self._append(
            {
                "run_id": self._run_id,
                "pid": os.getpid(),
                "status": status,
                "reason": reason,
                "time_unix": time.time(),
            }
        )
        self._run_id = None

    # -- reading --------------------------------------------------------
    def _raw_records(self) -> Iterator[dict[str, Any]]:
        try:
            text = self.journal.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A crash mid-append can tear the final line; every
                # complete line before it is still good.
                continue
            if isinstance(record, dict) and "run_id" in record:
                yield record

    def runs(self) -> list[RunRecord]:
        """All runs, oldest first, with status updates folded last-wins."""
        folded: dict[str, dict[str, Any]] = {}
        order: list[str] = []
        for record in self._raw_records():
            run_id = str(record["run_id"])
            if run_id not in folded:
                folded[run_id] = dict(record)
                folded[run_id]["started_unix"] = record.get("time_unix", 0.0)
                order.append(run_id)
            else:
                base = folded[run_id]
                for key, value in record.items():
                    if value is not None:
                        base[key] = value
        out: list[RunRecord] = []
        known = {
            "run_id", "pid", "status", "command", "argv",
            "config_fingerprint", "reason", "time_unix", "started_unix",
        }
        for run_id in order:
            raw = folded[run_id]
            out.append(
                RunRecord(
                    run_id=run_id,
                    pid=int(raw.get("pid", -1)),
                    status=str(raw.get("status", "running")),
                    command=raw.get("command"),
                    argv=tuple(raw.get("argv") or ()),
                    config_fingerprint=raw.get("config_fingerprint"),
                    reason=raw.get("reason"),
                    started_unix=float(raw.get("started_unix") or 0.0),
                    updated_unix=float(raw.get("time_unix") or 0.0),
                    extra={
                        k: v for k, v in raw.items() if k not in known
                    },
                )
            )
        return out

    def latest_resumable(self) -> RunRecord | None:
        """The most recently updated run that stopped before completing."""
        candidates = [r for r in self.runs() if r.resumable]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.updated_unix)

    # -- sweeping -------------------------------------------------------
    def sweep(self) -> dict[str, Any]:
        """Reclaim what dead runs left behind; returns a summary dict.

        Folds pid-gone ``running`` records to ``orphaned``, unlinks
        their (and any other dead pid's) ``repro-<pid>-*`` /dev/shm
        segments, and removes torn ``*.tmp.<pid>`` files under the
        checkpoint tree. Safe to call on every startup — live runs are
        untouched and a clean directory is a fast no-op.
        """
        orphaned: list[str] = []
        for run in self.runs():
            if run.status == "running" and not _pid_alive(run.pid):
                self._append(
                    {
                        "run_id": run.run_id,
                        "pid": run.pid,
                        "status": "orphaned",
                        "reason": "pid_gone",
                        "time_unix": time.time(),
                    }
                )
                orphaned.append(run.run_id)
        from repro.parallel.shm import sweep_orphan_segments

        segments = sweep_orphan_segments()
        tmp_files = self._sweep_tmp_files()
        summary = {
            "orphaned_runs": orphaned,
            "shm_segments_removed": segments,
            "tmp_files_removed": tmp_files,
        }
        if orphaned or segments or tmp_files:
            rec = current_recorder()
            rec.inc("registry.orphans_swept", len(orphaned))
            rec.inc("registry.shm_swept", len(segments))
            rec.inc("registry.tmp_swept", tmp_files)
            rec.event("registry.swept", level="warning", **summary)
            _log.warning("registry.swept", **summary)
        return summary

    def _sweep_tmp_files(self) -> int:
        """Remove ``*.tmp.<pid>`` files of dead pids under the tree."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for path in self.directory.rglob("*.tmp.*"):
            pid_part = path.name.rsplit(".tmp.", 1)[-1]
            if not pid_part.isdigit():
                continue
            if _pid_alive(int(pid_part)):
                continue  # an in-flight write by a live concurrent run
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed
