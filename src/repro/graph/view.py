"""GraphView: the structural protocol every graph backend satisfies.

The walk engine, traversal, and metrics layers consume *views* — any
object exposing CSR adjacency as flat numpy arrays plus a handful of
scalar properties — rather than the concrete in-memory
:class:`repro.graph.core.Graph`. Two backends ship today:

- :class:`repro.graph.core.Graph` — arrays on the heap; built from an
  edge list, cheap to mutate/derive.
- :class:`repro.graph.store.GraphStore` — arrays memory-mapped from a
  build-once on-disk CSR, so only the pages a computation touches ever
  become resident. Its ``mmap_backed`` attribute is how the resource
  guard (:func:`repro.resilience.guard.estimate_footprint`) knows the
  structure is disk, not RSS.

The protocol is deliberately *structural* (:func:`typing.runtime_checkable`
``Protocol``): backends never import each other, and a test double only
needs the attributes it actually exercises.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["GraphView", "is_graph_view"]


@runtime_checkable
class GraphView(Protocol):
    """Read-only CSR adjacency: the contract of every graph backend.

    The neighbors of vertex ``v`` are
    ``indices[indptr[v]:indptr[v + 1]]``; undirected backends store each
    edge as two arcs. ``edge_weights`` / ``edge_times`` /
    ``vertex_weights`` align with ``indices`` / the vertex range and are
    ``None`` when absent. Implementations may back the arrays with heap
    memory, shared memory, or a memory map — consumers must not mutate
    them.
    """

    @property
    def n(self) -> int: ...

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    @property
    def num_arcs(self) -> int: ...

    @property
    def directed(self) -> bool: ...

    @property
    def indptr(self) -> np.ndarray: ...

    @property
    def indices(self) -> np.ndarray: ...

    @property
    def edge_weights(self) -> np.ndarray | None: ...

    @property
    def edge_times(self) -> np.ndarray | None: ...

    @property
    def vertex_weights(self) -> np.ndarray | None: ...

    @property
    def weighted(self) -> bool: ...

    @property
    def temporal(self) -> bool: ...

    def neighbors(self, v: int) -> np.ndarray: ...

    def degree(self, v: int | None = None) -> "int | np.ndarray": ...

    def out_degrees(self) -> np.ndarray: ...


def is_graph_view(value: object) -> bool:
    """True when ``value`` structurally satisfies :class:`GraphView`.

    ``isinstance`` against a runtime-checkable Protocol checks attribute
    *presence* only — it cannot validate array contents — but that is
    exactly the level the engine dispatchers need.
    """
    return isinstance(value, GraphView)
