"""Graph substrate: CSR-backed graphs, generators, traversal, metrics, I/O.

This subpackage implements the graph layer that V2V operates on. Every
structure is stored in flat, contiguous numpy arrays (CSR adjacency) so
that the random-walk engine and the community-detection baselines can run
vectorized over the whole vertex set.

Two backends satisfy the :class:`GraphView` protocol: the in-memory
:class:`Graph` and the out-of-core :class:`GraphStore` (a build-once,
memory-mapped CSR partitioned into shards — see
:mod:`repro.graph.store` / :mod:`repro.graph.partition` and
docs/scaling.md). Engine layers consume views, not concrete classes.
"""

from repro.graph.core import Graph, EdgeList
from repro.graph.view import GraphView, is_graph_view
from repro.graph.store import GraphStore, StoreCorrupt
from repro.graph.partition import (
    PARTITION_METHODS,
    contiguous_relabel,
    partition_vertices,
    shard_of,
)
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    planted_partition,
    random_geometric,
    star_graph,
    stochastic_block_model,
)
from repro.graph.lfr import lfr_benchmark
from repro.graph.perturb import add_noise_edges, drop_edges, rewire_edges
from repro.graph.metrics import (
    average_clustering,
    degree_assortativity,
    density,
    global_clustering,
    modularity,
    triangle_count,
)
from repro.graph.traversal import (
    bfs_order,
    bfs_distances,
    connected_components,
    dfs_order,
    edge_betweenness,
    is_connected,
    shortest_path_lengths,
)

__all__ = [
    "Graph",
    "EdgeList",
    "GraphView",
    "is_graph_view",
    "GraphStore",
    "StoreCorrupt",
    "PARTITION_METHODS",
    "partition_vertices",
    "contiguous_relabel",
    "shard_of",
    "planted_partition",
    "erdos_renyi",
    "barabasi_albert",
    "stochastic_block_model",
    "random_geometric",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "bfs_order",
    "bfs_distances",
    "dfs_order",
    "connected_components",
    "is_connected",
    "shortest_path_lengths",
    "edge_betweenness",
    "lfr_benchmark",
    "drop_edges",
    "add_noise_edges",
    "rewire_edges",
    "density",
    "modularity",
    "average_clustering",
    "global_clustering",
    "triangle_count",
    "degree_assortativity",
]
