"""Graph substrate: CSR-backed graphs, generators, traversal, metrics, I/O.

This subpackage implements the graph layer that V2V operates on. Every
structure is stored in flat, contiguous numpy arrays (CSR adjacency) so
that the random-walk engine and the community-detection baselines can run
vectorized over the whole vertex set.
"""

from repro.graph.core import Graph, EdgeList
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    planted_partition,
    random_geometric,
    star_graph,
    stochastic_block_model,
)
from repro.graph.lfr import lfr_benchmark
from repro.graph.perturb import add_noise_edges, drop_edges, rewire_edges
from repro.graph.metrics import (
    average_clustering,
    degree_assortativity,
    density,
    modularity,
    triangle_count,
)
from repro.graph.traversal import (
    bfs_order,
    bfs_distances,
    connected_components,
    dfs_order,
    edge_betweenness,
    is_connected,
    shortest_path_lengths,
)

__all__ = [
    "Graph",
    "EdgeList",
    "planted_partition",
    "erdos_renyi",
    "barabasi_albert",
    "stochastic_block_model",
    "random_geometric",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "bfs_order",
    "bfs_distances",
    "dfs_order",
    "connected_components",
    "is_connected",
    "shortest_path_lengths",
    "edge_betweenness",
    "lfr_benchmark",
    "drop_edges",
    "add_noise_edges",
    "rewire_edges",
    "density",
    "modularity",
    "average_clustering",
    "triangle_count",
    "degree_assortativity",
]
