"""Core graph data structure.

``Graph`` stores adjacency in compressed sparse row (CSR) form:

- ``indptr``  : int64 array of length ``n + 1``; the neighbors of vertex
  ``v`` live in ``indices[indptr[v]:indptr[v + 1]]``.
- ``indices`` : int64 array of length ``nnz`` (directed arc count).
- ``edge_weights`` / ``edge_times`` : optional float64 arrays aligned with
  ``indices`` carrying per-arc weights and timestamps.

Undirected graphs store every edge as two arcs, so all per-vertex
operations (degrees, neighbor slices, random-walk steps) are O(1) slices
into contiguous memory — the layout the walk engine's structure-of-arrays
stepping depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Graph", "EdgeList", "DENSE_MATERIALIZATION_LIMIT"]

#: Largest vertex count for which dense O(n²) materialization
#: (``adjacency_matrix`` and the dense metric paths) proceeds without
#: ``force=True``. 4096² float64 ≈ 134 MB — past that a dense matrix is
#: almost certainly an accident.
DENSE_MATERIALIZATION_LIMIT = 4096


@dataclass(frozen=True)
class EdgeList:
    """A plain edge list with optional weight/timestamp columns.

    ``src``/``dst`` are int64 arrays of equal length. For undirected
    graphs each edge appears once here (canonical form); ``Graph``
    symmetrizes on construction.
    """

    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray | None = None
    times: np.ndarray | None = None

    def __post_init__(self) -> None:
        src = np.asarray(self.src, dtype=np.int64)
        dst = np.asarray(self.dst, dtype=np.int64)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        for name in ("weights", "times"):
            col = getattr(self, name)
            if col is not None:
                col = np.asarray(col, dtype=np.float64)
                if col.shape != src.shape:
                    raise ValueError(f"{name} must align with src/dst")
                object.__setattr__(self, name, col)

    def __len__(self) -> int:
        return int(self.src.shape[0])


class Graph:
    """CSR-backed graph supporting the constrained-walk variants of V2V.

    Parameters
    ----------
    n:
        Number of vertices (``0 .. n-1``).
    edges:
        Either an :class:`EdgeList` or an iterable of ``(u, v)`` /
        ``(u, v, w)`` / ``(u, v, w, t)`` tuples.
    directed:
        If True, each listed edge is a single arc ``u -> v``. If False,
        each edge is stored as two arcs.
    vertex_weights:
        Optional per-vertex weights used by the vertex-weighted walk.
    vertex_labels:
        Optional mapping ``name -> array of length n`` of categorical or
        numeric vertex attributes (e.g. ground-truth community, country).
        Labels are metadata only — never consumed by the embedding.
    """

    def __init__(
        self,
        n: int,
        edges: EdgeList | Iterable[tuple] | None = None,
        *,
        directed: bool = False,
        vertex_weights: Sequence[float] | None = None,
        vertex_labels: Mapping[str, Sequence] | None = None,
    ) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._n = int(n)
        self._directed = bool(directed)
        edge_list = self._coerce_edges(edges)
        self._validate_endpoints(edge_list)
        self._edge_list = edge_list
        (
            self._indptr,
            self._indices,
            self._edge_weights,
            self._edge_times,
        ) = self._build_csr(edge_list)
        self._in_indptr: np.ndarray | None = None
        self._in_indices: np.ndarray | None = None

        if vertex_weights is not None:
            vw = np.asarray(vertex_weights, dtype=np.float64)
            if vw.shape != (self._n,):
                raise ValueError("vertex_weights must have length n")
            if np.any(vw < 0):
                raise ValueError("vertex_weights must be non-negative")
            self._vertex_weights: np.ndarray | None = vw
        else:
            self._vertex_weights = None

        self._vertex_labels: dict[str, np.ndarray] = {}
        if vertex_labels:
            for name, values in vertex_labels.items():
                self.set_vertex_labels(name, values)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_edges(edges: EdgeList | Iterable[tuple] | None) -> EdgeList:
        if edges is None:
            empty = np.empty(0, dtype=np.int64)
            return EdgeList(empty, empty.copy())
        if isinstance(edges, EdgeList):
            return edges
        rows = list(edges)
        if not rows:
            empty = np.empty(0, dtype=np.int64)
            return EdgeList(empty, empty.copy())
        width = len(rows[0])
        if width not in (2, 3, 4):
            raise ValueError("edge tuples must have 2, 3 or 4 fields")
        if any(len(r) != width for r in rows):
            raise ValueError("all edge tuples must have the same arity")
        arr = np.asarray(rows, dtype=np.float64)
        src = arr[:, 0].astype(np.int64)
        dst = arr[:, 1].astype(np.int64)
        weights = arr[:, 2].copy() if width >= 3 else None
        times = arr[:, 3].copy() if width == 4 else None
        return EdgeList(src, dst, weights, times)

    def _validate_endpoints(self, edge_list: EdgeList) -> None:
        if len(edge_list) == 0:
            return
        lo = min(edge_list.src.min(), edge_list.dst.min())
        hi = max(edge_list.src.max(), edge_list.dst.max())
        if lo < 0 or hi >= self._n:
            raise ValueError(
                f"edge endpoint out of range [0, {self._n}): saw {lo}..{hi}"
            )
        if edge_list.weights is not None and np.any(edge_list.weights < 0):
            raise ValueError("edge weights must be non-negative")

    def _build_csr(
        self, edge_list: EdgeList
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
        src, dst = edge_list.src, edge_list.dst
        w, t = edge_list.weights, edge_list.times
        if not self._directed and len(edge_list) > 0:
            # Symmetrize: keep self-loops single to avoid double arcs.
            loop = src == dst
            rsrc, rdst = dst[~loop], src[~loop]
            src = np.concatenate([src, rsrc])
            dst = np.concatenate([dst, rdst])
            if w is not None:
                w = np.concatenate([w, w[~loop]])
            if t is not None:
                t = np.concatenate([t, t[~loop]])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        if w is not None:
            w = np.ascontiguousarray(w[order])
        if t is not None:
            t = np.ascontiguousarray(t[order])
        counts = np.bincount(src, minlength=self._n)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, np.ascontiguousarray(dst), w, t

    @classmethod
    def from_adjacency(cls, matrix: np.ndarray, *, directed: bool = False) -> "Graph":
        """Build a graph from a dense (weighted) adjacency matrix.

        Zero entries are non-edges. For undirected graphs only the upper
        triangle (including the diagonal) is read; the matrix is expected
        to be symmetric.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("adjacency matrix must be square")
        n = matrix.shape[0]
        if directed:
            src, dst = np.nonzero(matrix)
        else:
            if not np.allclose(matrix, matrix.T):
                raise ValueError("undirected adjacency must be symmetric")
            src, dst = np.nonzero(np.triu(matrix))
        weights = matrix[src, dst]
        unit = np.allclose(weights, 1.0)
        edge_list = EdgeList(src, dst, None if unit else weights)
        return cls(n, edge_list, directed=directed)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges as listed (undirected edges counted once)."""
        return len(self._edge_list)

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs in the CSR structure."""
        return int(self._indices.shape[0])

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        return self._indices

    @property
    def edge_weights(self) -> np.ndarray | None:
        """Per-arc weights aligned with :attr:`indices` (None if unweighted)."""
        return self._edge_weights

    @property
    def edge_times(self) -> np.ndarray | None:
        """Per-arc timestamps aligned with :attr:`indices` (None if untimed)."""
        return self._edge_times

    @property
    def vertex_weights(self) -> np.ndarray | None:
        return self._vertex_weights

    @property
    def edge_list(self) -> EdgeList:
        """The canonical edge list the graph was built from."""
        return self._edge_list

    @property
    def weighted(self) -> bool:
        return self._edge_weights is not None

    @property
    def temporal(self) -> bool:
        return self._edge_times is not None

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self._directed else "undirected"
        flags = []
        if self.weighted:
            flags.append("weighted")
        if self.temporal:
            flags.append("temporal")
        extra = (", " + ", ".join(flags)) if flags else ""
        return f"Graph(n={self._n}, m={self.num_edges}, {kind}{extra})"

    # ------------------------------------------------------------------
    # Adjacency queries
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as a (read-only view of a) contiguous slice."""
        self._check_vertex(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def neighbor_slice(self, v: int) -> tuple[int, int]:
        """``(start, stop)`` bounds of ``v``'s arcs inside :attr:`indices`."""
        self._check_vertex(v)
        return int(self._indptr[v]), int(self._indptr[v + 1])

    def degree(self, v: int | None = None) -> int | np.ndarray:
        """Out-degree of ``v``, or the full out-degree array if ``v`` is None."""
        if v is None:
            return np.diff(self._indptr)
        self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def out_degrees(self) -> np.ndarray:
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree array (same as out-degrees for undirected graphs)."""
        if not self._directed:
            return self.out_degrees()
        return np.bincount(self._indices, minlength=self._n).astype(np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """True if arc ``u -> v`` exists (or either direction if undirected)."""
        return bool(np.any(self.neighbors(u) == v))

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Iterate all directed arcs ``(u, v)`` in CSR order."""
        for u in range(self._n):
            for v in self.neighbors(u):
                yield u, int(v)

    def arc_array(self) -> tuple[np.ndarray, np.ndarray]:
        """All arcs as ``(src, dst)`` arrays (vectorized form of :meth:`arcs`)."""
        src = np.repeat(np.arange(self._n, dtype=np.int64), self.out_degrees())
        return src, self._indices.copy()

    def in_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR of the reversed graph, built lazily and cached."""
        if self._in_indptr is None:
            if not self._directed:
                self._in_indptr, self._in_indices = self._indptr, self._indices
            else:
                src, dst = self.arc_array()
                order = np.argsort(dst, kind="stable")
                counts = np.bincount(dst, minlength=self._n)
                indptr = np.zeros(self._n + 1, dtype=np.int64)
                np.cumsum(counts, out=indptr[1:])
                self._in_indptr = indptr
                self._in_indices = np.ascontiguousarray(src[order])
        return self._in_indptr, self._in_indices

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise IndexError(f"vertex {v} out of range [0, {self._n})")

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def set_vertex_labels(self, name: str, values: Sequence) -> None:
        arr = np.asarray(values)
        if arr.shape != (self._n,):
            raise ValueError(f"labels '{name}' must have length n={self._n}")
        self._vertex_labels[name] = arr

    def vertex_labels(self, name: str) -> np.ndarray:
        if name not in self._vertex_labels:
            raise KeyError(f"no vertex labels named '{name}'")
        return self._vertex_labels[name]

    @property
    def label_names(self) -> list[str]:
        return sorted(self._vertex_labels)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def to_undirected(self) -> "Graph":
        """Forget directions (idempotent on undirected graphs)."""
        if not self._directed:
            return self
        g = Graph(
            self._n,
            self._edge_list,
            directed=False,
            vertex_weights=self._vertex_weights,
        )
        g._vertex_labels = dict(self._vertex_labels)
        return g

    def reverse(self) -> "Graph":
        """Graph with every arc reversed (self for undirected graphs)."""
        if not self._directed:
            return self
        e = self._edge_list
        g = Graph(
            self._n,
            EdgeList(e.dst, e.src, e.weights, e.times),
            directed=True,
            vertex_weights=self._vertex_weights,
        )
        g._vertex_labels = dict(self._vertex_labels)
        return g

    def subgraph(self, vertices: Sequence[int]) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
        id of subgraph vertex ``i``.
        """
        keep = np.unique(np.asarray(vertices, dtype=np.int64))
        if keep.size and (keep[0] < 0 or keep[-1] >= self._n):
            raise ValueError("subgraph vertex out of range")
        new_id = np.full(self._n, -1, dtype=np.int64)
        new_id[keep] = np.arange(keep.size)
        e = self._edge_list
        mask = (new_id[e.src] >= 0) & (new_id[e.dst] >= 0)
        sub_edges = EdgeList(
            new_id[e.src[mask]],
            new_id[e.dst[mask]],
            None if e.weights is None else e.weights[mask],
            None if e.times is None else e.times[mask],
        )
        vw = None if self._vertex_weights is None else self._vertex_weights[keep]
        g = Graph(keep.size, sub_edges, directed=self._directed, vertex_weights=vw)
        for name, values in self._vertex_labels.items():
            g.set_vertex_labels(name, values[keep])
        return g, keep

    def adjacency_matrix(self, *, force: bool = False) -> np.ndarray:
        """Dense weighted adjacency (arcs summed).

        O(n²) memory — an accidental call on a large graph is almost
        always a bug (the CSR arrays hold the same information in
        O(n + m)), so vertices beyond
        :data:`DENSE_MATERIALIZATION_LIMIT` raise unless ``force=True``.
        """
        if self._n > DENSE_MATERIALIZATION_LIMIT and not force:
            raise ValueError(
                f"adjacency_matrix() would materialize a dense "
                f"{self._n}x{self._n} float64 matrix "
                f"({self._n * self._n * 8 / 1e9:.1f} GB); use the CSR "
                f"arrays (indptr/indices) or pass force=True if you "
                f"really want it"
            )
        mat = np.zeros((self._n, self._n), dtype=np.float64)
        src, dst = self.arc_array()
        w = self._edge_weights
        np.add.at(mat, (src, dst), 1.0 if w is None else w)
        return mat

    def total_edge_weight(self) -> float:
        """Sum of edge weights over listed edges (count if unweighted)."""
        if self._edge_list.weights is None:
            return float(self.num_edges)
        return float(self._edge_list.weights.sum())
