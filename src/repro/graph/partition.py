"""Vertex partitioning for the out-of-core graph store.

A partition assigns every vertex to one of ``num_parts`` shards; the
store then relabels vertices so each shard owns a *contiguous* id range
(``contiguous_relabel``), which is what lets a shard's walk stepper run
over a single mmap'd CSR row range. Two placement strategies plus a
trivial baseline:

- ``"bfs"`` (default) — vertices in BFS discovery order (component by
  component), chopped into near-equal contiguous chunks. Neighbors tend
  to land in the same shard, so walks cross shard boundaries rarely.
- ``"label_propagation"`` — communities from
  :func:`repro.community.label_propagation_communities` packed into
  balanced parts (greedy largest-community-first bin packing). Best
  locality on graphs with strong community structure.
- ``"contiguous"`` — keep the existing vertex order and cut it into
  equal ranges. No locality claim; useful as a control and for graphs
  whose ids already encode locality.

Placement only affects *performance* (how often walks are parked and
exchanged), never results: the sharded walk engine draws each step from
a counter-based stream keyed by (seed, walk, step), so the corpus is
identical for every partitioning.

Layering: this module may use ``repro.graph`` and ``repro.community``
(via a function-local import — community sits above graph in the layer
DAG) but never ``repro.walks`` or ``repro.pipeline``
(``scripts/check_import_cycles.py`` enforces it).
"""

from __future__ import annotations

import numpy as np

from repro.graph.traversal import bfs_order

__all__ = [
    "PARTITION_METHODS",
    "partition_vertices",
    "contiguous_relabel",
    "shard_of",
]

PARTITION_METHODS = ("bfs", "label_propagation", "contiguous")


def partition_vertices(
    g,
    num_parts: int,
    *,
    method: str = "bfs",
    seed: int | None = None,
) -> np.ndarray:
    """Assign every vertex to a shard; returns int64 membership of length n.

    ``num_parts`` is clamped to ``n`` (a shard must own at least one
    vertex when any exist). Every method produces parts whose sizes
    differ by at most the largest packed unit (1 vertex for bfs /
    contiguous, one community for label propagation).
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if method not in PARTITION_METHODS:
        raise ValueError(
            f"unknown partition method {method!r} (expected one of "
            f"{PARTITION_METHODS})"
        )
    n = int(g.n)
    num_parts = min(num_parts, n) if n else 1
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if num_parts == 1:
        return np.zeros(n, dtype=np.int64)
    if method == "contiguous":
        return _chunk_membership(np.arange(n, dtype=np.int64), num_parts, n)
    if method == "bfs":
        return _chunk_membership(_global_bfs_order(g), num_parts, n)
    return _pack_communities(g, num_parts, seed=seed)


def _global_bfs_order(g) -> np.ndarray:
    """BFS discovery order covering every component (lowest seed first)."""
    n = int(g.n)
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    filled = 0
    for source in range(n):
        if seen[source]:
            continue
        comp = bfs_order(g, source)
        comp = comp[~seen[comp]]
        seen[comp] = True
        order[filled : filled + comp.size] = comp
        filled += comp.size
    return order


def _chunk_membership(order: np.ndarray, num_parts: int, n: int) -> np.ndarray:
    """Cut ``order`` into near-equal chunks; chunk index = shard id."""
    bounds = np.linspace(0, n, num_parts + 1).astype(np.int64)
    membership = np.empty(n, dtype=np.int64)
    for part in range(num_parts):
        membership[order[bounds[part] : bounds[part + 1]]] = part
    return membership


def _pack_communities(g, num_parts: int, *, seed: int | None) -> np.ndarray:
    """Label-propagation communities, greedily packed into balanced parts."""
    # Function-local: community sits above graph in the layer DAG.
    from repro.community.label_propagation import label_propagation_communities

    target = g.to_undirected() if g.directed else g
    labels = label_propagation_communities(target, seed=seed)
    comm_ids, sizes = np.unique(labels, return_counts=True)
    # Largest community first into the currently-lightest part: classic
    # LPT bin packing, deterministic given the community labelling.
    order = np.argsort(sizes, kind="stable")[::-1]
    loads = np.zeros(num_parts, dtype=np.int64)
    part_of_comm = np.empty(comm_ids.size, dtype=np.int64)
    for i in order:
        part = int(np.argmin(loads))
        part_of_comm[i] = part
        loads[part] += sizes[i]
    lookup = np.empty(int(comm_ids.max()) + 1, dtype=np.int64)
    lookup[comm_ids] = part_of_comm
    return lookup[labels]


def contiguous_relabel(
    membership: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Relabel vertices so every shard owns a contiguous new-id range.

    Returns ``(perm, bounds)``:

    - ``perm`` — int64 permutation mapping *new* id → *original* id
      (so ``original_array[perm]`` reorders per-vertex data into the new
      id space). Within a shard, original order is preserved (stable).
    - ``bounds`` — int64 array of length ``num_parts + 1``;
      shard ``s`` owns new ids ``bounds[s]:bounds[s + 1]``.
    """
    membership = np.asarray(membership, dtype=np.int64)
    if membership.size and membership.min() < 0:
        raise ValueError("membership must be non-negative")
    num_parts = int(membership.max()) + 1 if membership.size else 1
    perm = np.argsort(membership, kind="stable").astype(np.int64)
    counts = np.bincount(membership, minlength=num_parts)
    bounds = np.zeros(num_parts + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return perm, bounds


def shard_of(bounds: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Shard id for each (new-space) vertex id, via the bounds array."""
    return np.searchsorted(bounds, vertices, side="right") - 1
