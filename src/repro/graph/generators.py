"""Graph generators, including the paper's planted quasi-clique benchmark.

The central generator is :func:`planted_partition`, which reproduces the
synthetic dataset of Section III-A: ``n`` vertices split into ``groups``
equal communities, each an ``alpha`` quasi-clique, plus ``inter_edges``
uniformly random edges between distinct communities.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import EdgeList, Graph

__all__ = [
    "planted_partition",
    "erdos_renyi",
    "barabasi_albert",
    "stochastic_block_model",
    "random_geometric",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _sample_pairs_without_replacement(
    num_possible: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``k`` distinct integers from ``range(num_possible)``.

    Uses ``rng.choice`` without replacement for small domains and a
    rejection loop for large ones (keeps memory O(k), per the guides'
    "be easy on the memory" rule).
    """
    if k > num_possible:
        raise ValueError("cannot sample more pairs than exist")
    if num_possible <= 4 * max(k, 1) or num_possible < 1 << 22:
        return rng.choice(num_possible, size=k, replace=False)
    chosen: set[int] = set()
    out = np.empty(k, dtype=np.int64)
    filled = 0
    while filled < k:
        draw = rng.integers(0, num_possible, size=2 * (k - filled))
        for value in draw:
            if value not in chosen:
                chosen.add(int(value))
                out[filled] = value
                filled += 1
                if filled == k:
                    break
    return out


def _unrank_pair(flat: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map flat indices into the strict upper-triangle of an n×n grid."""
    # Row r owns (n - 1 - r) entries starting at offset r*n - r*(r+1)/2.
    # Invert via the quadratic formula, then clamp for float error.
    b = 2 * n - 1
    r = np.floor((b - np.sqrt(b * b - 8.0 * flat)) / 2.0).astype(np.int64)
    starts = r * n - (r * (r + 1)) // 2
    over = starts > flat
    r[over] -= 1
    starts = r * n - (r * (r + 1)) // 2
    c = flat - starts + r + 1
    return r, c


def planted_partition(
    n: int = 1000,
    groups: int = 10,
    alpha: float = 0.5,
    inter_edges: int = 200,
    *,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """The paper's synthetic community benchmark (Section III-A).

    ``n`` vertices are split into ``groups`` equal communities
    ``G_1 .. G_groups``. Each community of size ``s`` receives
    ``alpha * s * (s - 1)`` intra-community edges drawn uniformly at
    random without replacement (``alpha = 1`` makes it a clique — the
    paper counts ordered pairs, i.e. ``s(s-1)``, which equals the number
    of unordered pairs counted twice; we cap at the clique size).
    ``inter_edges`` additional edges connect vertices of distinct
    communities. Ground truth is stored as vertex label ``"community"``.

    Parameters mirror the paper defaults: ``n=1000``, ``groups=10``,
    ``inter_edges=200``.
    """
    if n <= 0 or groups <= 0 or n % groups != 0:
        raise ValueError("n must be a positive multiple of groups")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if inter_edges < 0:
        raise ValueError("inter_edges must be non-negative")
    rng = _rng(seed)
    size = n // groups
    pairs_per_group = size * (size - 1) // 2
    # Paper: alpha * s * (s-1) edges vs. s*(s-1) "needed to make a clique";
    # both numerator and denominator use ordered-pair counts, so the edge
    # *fraction* is alpha of the unordered pair count.
    intra_per_group = min(int(round(alpha * pairs_per_group)), pairs_per_group)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    membership = np.repeat(np.arange(groups, dtype=np.int64), size)
    for g in range(groups):
        base = g * size
        if intra_per_group == 0:
            continue
        flat = _sample_pairs_without_replacement(pairs_per_group, intra_per_group, rng)
        r, c = _unrank_pair(flat, size)
        src_parts.append(base + r)
        dst_parts.append(base + c)

    # Inter-community edges: uniform over vertex pairs in distinct groups.
    if inter_edges > 0:
        got = 0
        seen: set[tuple[int, int]] = set()
        isrc = np.empty(inter_edges, dtype=np.int64)
        idst = np.empty(inter_edges, dtype=np.int64)
        while got < inter_edges:
            u = rng.integers(0, n, size=2 * (inter_edges - got))
            v = rng.integers(0, n, size=u.shape[0])
            ok = membership[u] != membership[v]
            for a, b in zip(u[ok], v[ok]):
                key = (int(min(a, b)), int(max(a, b)))
                if key in seen:
                    continue
                seen.add(key)
                isrc[got], idst[got] = key
                got += 1
                if got == inter_edges:
                    break
        src_parts.append(isrc)
        dst_parts.append(idst)

    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    g = Graph(n, EdgeList(src, dst), directed=False)
    g.set_vertex_labels("community", membership)
    return g


def erdos_renyi(
    n: int,
    p: float,
    *,
    directed: bool = False,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """G(n, p) random graph (each possible edge kept independently w.p. p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = _rng(seed)
    if directed:
        mask = rng.random((n, n)) < p
        np.fill_diagonal(mask, False)
        src, dst = np.nonzero(mask)
    else:
        mask = np.triu(rng.random((n, n)) < p, k=1)
        src, dst = np.nonzero(mask)
    return Graph(n, EdgeList(src.astype(np.int64), dst.astype(np.int64)), directed=directed)


def barabasi_albert(
    n: int,
    m: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Preferential-attachment graph: each new vertex attaches to ``m`` targets.

    Uses the standard repeated-endpoints trick: sampling uniformly from the
    list of all edge endpoints is equivalent to degree-proportional sampling.
    """
    if m < 1 or n < m + 1:
        raise ValueError("need n >= m + 1 and m >= 1")
    rng = _rng(seed)
    src: list[int] = []
    dst: list[int] = []
    # Endpoint pool seeded with an initial star over the first m+1 vertices.
    repeated: list[int] = []
    for v in range(m):
        src.append(m)
        dst.append(v)
        repeated.extend((m, v))
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(int(repeated[rng.integers(0, len(repeated))]))
        for t in targets:
            src.append(v)
            dst.append(t)
            repeated.extend((v, t))
    return Graph(
        n,
        EdgeList(np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)),
        directed=False,
    )


def stochastic_block_model(
    sizes: list[int],
    p_matrix: np.ndarray,
    *,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Undirected SBM with block sizes ``sizes`` and edge probabilities ``p_matrix``."""
    p = np.asarray(p_matrix, dtype=np.float64)
    k = len(sizes)
    if p.shape != (k, k):
        raise ValueError("p_matrix must be k x k")
    if not np.allclose(p, p.T):
        raise ValueError("p_matrix must be symmetric for an undirected SBM")
    if np.any(p < 0) or np.any(p > 1):
        raise ValueError("probabilities must be in [0, 1]")
    rng = _rng(seed)
    n = int(sum(sizes))
    membership = np.repeat(np.arange(k, dtype=np.int64), sizes)
    iu, ju = np.triu_indices(n, k=1)
    probs = p[membership[iu], membership[ju]]
    keep = rng.random(iu.shape[0]) < probs
    g = Graph(n, EdgeList(iu[keep].astype(np.int64), ju[keep].astype(np.int64)))
    g.set_vertex_labels("community", membership)
    return g


def random_geometric(
    n: int,
    radius: float,
    *,
    dim: int = 2,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Random geometric graph on the unit cube; positions saved as labels."""
    rng = _rng(seed)
    pos = rng.random((n, dim))
    d2 = np.sum((pos[:, None, :] - pos[None, :, :]) ** 2, axis=-1)
    iu, ju = np.triu_indices(n, k=1)
    keep = d2[iu, ju] <= radius * radius
    g = Graph(n, EdgeList(iu[keep].astype(np.int64), ju[keep].astype(np.int64)))
    for axis in range(dim):
        g.set_vertex_labels(f"pos{axis}", pos[:, axis])
    return g


def complete_graph(n: int) -> Graph:
    iu, ju = np.triu_indices(n, k=1)
    return Graph(n, EdgeList(iu.astype(np.int64), ju.astype(np.int64)))


def cycle_graph(n: int) -> Graph:
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return Graph(n, EdgeList(src, dst))


def path_graph(n: int) -> Graph:
    if n < 1:
        raise ValueError("path needs n >= 1")
    src = np.arange(n - 1, dtype=np.int64)
    return Graph(n, EdgeList(src, src + 1))


def star_graph(n: int) -> Graph:
    """Star with center 0 and ``n - 1`` leaves."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    dst = np.arange(1, n, dtype=np.int64)
    return Graph(n, EdgeList(np.zeros(n - 1, dtype=np.int64), dst))


def grid_graph(rows: int, cols: int) -> Graph:
    """2-D lattice; vertex ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    return Graph(rows * cols, EdgeList(src, dst))
