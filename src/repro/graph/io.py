"""Edge-list and binary I/O for graphs.

Text format is whitespace-separated: ``src dst [weight [time]]`` per line,
``#``-prefixed comments allowed. Binary format is an ``.npz`` capturing the
full graph (CSR-independent: the canonical edge list plus metadata) so a
round trip is exact.

Both binary entry points also speak the out-of-core store format
(:mod:`repro.graph.store`): :func:`load_graph` on a store *directory*
materializes the graph back through the persisted permutation — vertex
labels, edge weights, and timestamps round-trip exactly — and
:func:`save_graph` accepts a :class:`~repro.graph.store.GraphStore` as
input. Corrupt stores raise
:class:`~repro.graph.store.StoreCorrupt` (after quarantining the
directory), mirroring ``CheckpointCorrupt`` for checkpoints.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graph.core import EdgeList, Graph

__all__ = ["write_edge_list", "read_edge_list", "save_graph", "load_graph"]


def write_edge_list(g: Graph, path: str | Path) -> None:
    """Write the canonical edge list as text, one edge per line."""
    path = Path(path)
    e = g.edge_list
    cols = [e.src, e.dst]
    if e.weights is not None:
        cols.append(e.weights)
    if e.times is not None:
        if e.weights is None:
            cols.append(np.ones(len(e)))  # placeholder weight column
        cols.append(e.times)
    with path.open("w") as fh:
        fh.write(f"# n={g.n} directed={int(g.directed)}\n")
        for row in zip(*cols):
            fh.write(" ".join(_fmt(x) for x in row) + "\n")


def _fmt(x) -> str:
    value = float(x)
    return str(int(value)) if value.is_integer() else repr(value)


ERROR_POLICIES = ("strict", "skip", "collect")


def _parse_edge_line(line: str, width: int | None) -> tuple[list[float], str | None]:
    """Parse one data line; returns (fields, error message or None)."""
    try:
        fields = [float(t) for t in line.split()]
    except ValueError:
        return [], "non-numeric field"
    if len(fields) < 2:
        return [], "fewer than two columns"
    if width is not None and len(fields) != width:
        return [], f"expected {width} columns, got {len(fields)}"
    for value in fields[:2]:
        if not np.isfinite(value) or value != int(value):
            return [], f"vertex id {value!r} is not a non-negative integer"
        if value < 0:
            return [], f"vertex id {value!r} is not a non-negative integer"
    return fields, None


def read_edge_list(
    path: str | Path,
    *,
    n: int | None = None,
    directed: bool | None = None,
    errors: str = "strict",
    collector: list[tuple[int, str, str]] | None = None,
) -> Graph:
    """Read a text edge list. Header comments written by
    :func:`write_edge_list` supply ``n`` and directedness; explicit
    arguments override. Without either, ``n`` defaults to max id + 1.

    ``errors`` controls what a malformed line (non-numeric field, wrong
    column count, fractional/negative/out-of-range vertex id) does:

    - ``"strict"`` (default) — raise ``ValueError`` naming the line.
    - ``"skip"`` — drop the line silently; one corrupt record no longer
      kills a multi-hour pipeline load.
    - ``"collect"`` — drop the line and record ``(lineno, line,
      message)``. Records append to ``collector`` when given, otherwise
      a single summary ``UserWarning`` is emitted.

    Column count is fixed by the first well-formed data line; later
    lines with a different width are malformed.
    """
    if errors not in ERROR_POLICIES:
        raise ValueError(f"errors must be one of {ERROR_POLICIES}")
    path = Path(path)
    header_n: int | None = None
    header_directed: bool | None = None
    rows: list[list[float]] = []
    bad: list[tuple[int, str, str]] = collector if collector is not None else []
    width: int | None = None
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                try:
                    for token in line[1:].split():
                        if token.startswith("n="):
                            header_n = int(token[2:])
                        elif token.startswith("directed="):
                            header_directed = bool(int(token[9:]))
                except ValueError:
                    if errors == "strict":
                        raise ValueError(
                            f"{path}:{lineno}: malformed header: {line!r}"
                        ) from None
                    bad.append((lineno, line, "malformed header"))
                continue
            fields, problem = _parse_edge_line(line, width)
            limit = n if n is not None else header_n
            if problem is None and limit is not None:
                if fields[0] >= limit or fields[1] >= limit:
                    problem = f"vertex id exceeds declared n={limit}"
            if problem is not None:
                if errors == "strict":
                    if problem.startswith("expected "):
                        raise ValueError(
                            "inconsistent column counts in edge list "
                            f"(line {lineno}: {problem})"
                        )
                    raise ValueError(f"{path}:{lineno}: {problem}: {line!r}")
                bad.append((lineno, line, problem))
                continue
            if width is None:
                width = len(fields)
            rows.append(fields)
    if errors == "collect" and bad and collector is None:
        import warnings

        warnings.warn(
            f"read_edge_list: dropped {len(bad)} malformed line(s) from {path} "
            f"(first: line {bad[0][0]}: {bad[0][2]})",
            UserWarning,
            stacklevel=2,
        )
    width = width if width is not None else 2
    arr = np.asarray(rows, dtype=np.float64) if rows else np.empty((0, width))
    src = arr[:, 0].astype(np.int64)
    dst = arr[:, 1].astype(np.int64)
    weights = arr[:, 2] if width >= 3 else None
    times = arr[:, 3] if width >= 4 else None
    resolved_n = n if n is not None else header_n
    if resolved_n is None:
        resolved_n = int(max(src.max(), dst.max()) + 1) if len(src) else 0
    resolved_directed = directed if directed is not None else bool(header_directed)
    return Graph(
        resolved_n,
        EdgeList(src, dst, weights, times),
        directed=resolved_directed,
    )


def save_graph(g: Graph, path: str | Path) -> None:
    """Save a graph (edges, weights, times, vertex weights, labels) as .npz.

    A :class:`~repro.graph.store.GraphStore` input is materialized back
    to original vertex ids first, so ``save_graph(store, p)`` followed by
    :func:`load_graph` round-trips the graph the store was built from.
    """
    if getattr(g, "mmap_backed", False) and hasattr(g, "to_graph"):
        g = g.to_graph()
    path = Path(path)
    e = g.edge_list
    payload: dict[str, np.ndarray] = {
        "src": e.src,
        "dst": e.dst,
        "meta": np.frombuffer(
            json.dumps(
                {
                    "n": g.n,
                    "directed": g.directed,
                    "labels": g.label_names,
                }
            ).encode(),
            dtype=np.uint8,
        ),
    }
    if e.weights is not None:
        payload["edge_weights"] = e.weights
    if e.times is not None:
        payload["edge_times"] = e.times
    if g.vertex_weights is not None:
        payload["vertex_weights"] = g.vertex_weights
    for name in g.label_names:
        payload[f"label_{name}"] = g.vertex_labels(name)
    np.savez_compressed(path, **payload)


def load_graph(path: str | Path) -> Graph:
    """Inverse of :func:`save_graph`.

    ``path`` may also be a graph-store directory (``repro shard
    build``): the store is opened — validation failures quarantine it
    and raise :class:`~repro.graph.store.StoreCorrupt` — and
    materialized with labels, weights, and times intact.
    """
    path = Path(path)
    if path.is_dir():
        from repro.graph.store import GraphStore

        return GraphStore.open(path).to_graph()
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        edge_list = EdgeList(
            data["src"],
            data["dst"],
            data["edge_weights"] if "edge_weights" in data else None,
            data["edge_times"] if "edge_times" in data else None,
        )
        g = Graph(
            int(meta["n"]),
            edge_list,
            directed=bool(meta["directed"]),
            vertex_weights=(
                data["vertex_weights"] if "vertex_weights" in data else None
            ),
        )
        for name in meta["labels"]:
            g.set_vertex_labels(name, data[f"label_{name}"])
    return g
