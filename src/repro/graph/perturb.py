"""Graph perturbation: missing and incorrect data.

The paper's conclusion (§VII) calls out "experiments on graphs with
missing or incorrect data" as open work and conjectures that V2V is less
sensitive to such errors than pure graph algorithms. These perturbations
make that experiment runnable (see ``benchmarks/test_ext_robustness.py``):

- :func:`drop_edges` — missing data: delete a uniform fraction of edges.
- :func:`add_noise_edges` — incorrect data: insert spurious edges
  between uniformly random vertex pairs.
- :func:`rewire_edges` — combined error model: replace a fraction of
  edges with random ones (degree-sequence-agnostic rewiring).
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import EdgeList, Graph

__all__ = ["drop_edges", "add_noise_edges", "rewire_edges"]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _rebuild(g: Graph, edge_list: EdgeList) -> Graph:
    out = Graph(
        g.n, edge_list, directed=g.directed, vertex_weights=g.vertex_weights
    )
    for name in g.label_names:
        out.set_vertex_labels(name, g.vertex_labels(name))
    return out


def drop_edges(
    g: Graph, fraction: float, *, seed: int | np.random.Generator | None = None
) -> Graph:
    """Remove a uniform ``fraction`` of the listed edges (missing data)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = _rng(seed)
    e = g.edge_list
    m = len(e)
    keep_count = m - int(round(fraction * m))
    keep = rng.choice(m, size=keep_count, replace=False) if m else np.empty(0, np.int64)
    keep.sort()
    return _rebuild(
        g,
        EdgeList(
            e.src[keep],
            e.dst[keep],
            None if e.weights is None else e.weights[keep],
            None if e.times is None else e.times[keep],
        ),
    )


def add_noise_edges(
    g: Graph,
    fraction: float,
    *,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Add ``fraction * m`` spurious edges between random distinct pairs.

    New edges get weight 1 (if the graph is weighted) and a timestamp
    drawn uniformly from the observed range (if temporal), so the
    perturbed graph stays valid for every walk mode.
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    rng = _rng(seed)
    e = g.edge_list
    extra = int(round(fraction * len(e)))
    if extra == 0 or g.n < 2:
        return _rebuild(g, e)
    src_new = rng.integers(0, g.n, size=extra)
    dst_new = rng.integers(0, g.n, size=extra)
    clash = src_new == dst_new
    while np.any(clash):
        dst_new[clash] = rng.integers(0, g.n, size=int(clash.sum()))
        clash = src_new == dst_new
    weights = times = None
    if e.weights is not None:
        weights = np.concatenate([e.weights, np.ones(extra)])
    if e.times is not None:
        lo, hi = (e.times.min(), e.times.max()) if len(e) else (0.0, 1.0)
        times = np.concatenate([e.times, rng.uniform(lo, hi, size=extra)])
    return _rebuild(
        g,
        EdgeList(
            np.concatenate([e.src, src_new]),
            np.concatenate([e.dst, dst_new]),
            weights,
            times,
        ),
    )


def rewire_edges(
    g: Graph,
    fraction: float,
    *,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Replace a ``fraction`` of edges with uniformly random ones.

    Keeps the edge count constant — the combined "incorrect data" model
    (an observed edge is wrong and the true relation is elsewhere).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = _rng(seed)
    e = g.edge_list
    m = len(e)
    n_rewire = int(round(fraction * m))
    if n_rewire == 0 or g.n < 2:
        return _rebuild(g, e)
    which = rng.choice(m, size=n_rewire, replace=False)
    src = e.src.copy()
    dst = e.dst.copy()
    src[which] = rng.integers(0, g.n, size=n_rewire)
    dst[which] = rng.integers(0, g.n, size=n_rewire)
    clash = src[which] == dst[which]
    while np.any(clash):
        idx = which[clash]
        dst[idx] = rng.integers(0, g.n, size=idx.shape[0])
        clash = src[which] == dst[which]
    return _rebuild(g, EdgeList(src, dst, e.weights, e.times))
