"""On-disk, build-once CSR graph store with memory-mapped access.

A :class:`GraphStore` is a directory of plain ``.npy`` files plus a JSON
manifest::

    store/
      manifest.json      schema, sizes, shard bounds, integrity record
      indptr.npy         int64 (n + 1,)
      indices.npy        int64 (num_arcs,)
      weights.npy        float64 (num_arcs,)   [weighted graphs only]
      times.npy          float64 (num_arcs,)   [temporal graphs only]
      vertex_weights.npy float64 (n,)          [if present]
      perm.npy           int64 (n,)  new id -> original id
      label_<name>.npy   (n,)                  [one per vertex label]

Arrays are opened with ``np.load(..., mmap_mode="r")``: nothing but the
pages a computation touches ever becomes resident, which is what lets
the walk engine process graphs larger than RAM shard by shard. Building
happens once, in memory, from an ordinary :class:`repro.graph.core.Graph`
— the build partitions the vertex set (:mod:`repro.graph.partition`),
relabels it so every shard owns a contiguous id range, and persists the
permutation so results can be mapped back to original ids.

Temporal graphs store each CSR row's arcs pre-sorted by timestamp
(weights follow the same order), so the temporal stepper can binary
search eligible arcs straight off the mmap without a per-run sort.

Integrity reuses the checkpoint machinery
(:func:`repro.resilience.checkpoint.integrity_record`): the manifest
embeds one SHA-256 over every array plus per-array CRC32s. ``open()``
runs cheap structural checks (manifest shape/dtype vs the ``.npy``
headers, indptr endpoints); :meth:`GraphStore.verify` reads every byte
and checks the digest. Either failure raises the typed
:class:`StoreCorrupt` (mirroring ``CheckpointCorrupt``) after
quarantining the store directory to ``<dir>.corrupt.<ts>`` — *missing*
stays ``FileNotFoundError``, so callers can tell "never built" from
"built but rotted".
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.graph.core import EdgeList, Graph
from repro.graph.partition import (
    PARTITION_METHODS,
    contiguous_relabel,
    partition_vertices,
)
from repro.obs.recorder import current_recorder
from repro.resilience.checkpoint import (
    atomic_write_bytes,
    integrity_record,
    verify_integrity,
)

__all__ = ["GraphStore", "GraphShard", "StoreCorrupt", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"
SCHEMA_VERSION = 1

#: Arrays that must exist in every store.
_REQUIRED = ("indptr", "indices", "perm")


class StoreCorrupt(RuntimeError):
    """A graph store exists on disk but cannot be trusted.

    Raised for missing/torn/mismatched shard files and integrity-record
    failures. Mirrors :class:`repro.resilience.checkpoint.CheckpointCorrupt`:
    *missing* store directories stay ``FileNotFoundError`` (a normal
    first-run state); *corrupt* means quarantine-and-rebuild.
    """

    def __init__(self, path: str | Path, reason: str) -> None:
        super().__init__(f"corrupt graph store {path}: {reason}")
        self.path = Path(path)
        self.reason = reason


def _quarantine(path: Path) -> Path | None:
    """Move a bad store directory aside (``<dir>.corrupt.<ts>``)."""
    if not path.exists():
        return None
    target = path.with_name(f"{path.name}.corrupt.{int(time.time())}")
    suffix = 0
    while target.exists():  # pragma: no cover - same-second collisions
        suffix += 1
        target = path.with_name(f"{path.name}.corrupt.{int(time.time())}.{suffix}")
    path.rename(target)
    current_recorder().event(
        "shard.quarantined", level="warning", path=str(path), moved_to=str(target)
    )
    return target


def _npy_header(path: Path) -> tuple[str, tuple[int, ...]]:
    """(dtype str, shape) from a ``.npy`` header without loading data."""
    with path.open("rb") as fh:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, _fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        else:
            shape, _fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    return dtype.str, tuple(int(s) for s in shape)


class GraphShard:
    """One shard of a store: a contiguous row range over shared mmaps.

    A shard is bookkeeping, not a copy: ``indptr``/``indices`` (and the
    optional weight/time arrays) are the store's memory-mapped arrays,
    so advancing walks resident in ``[lo, hi)`` touches only that row
    range's pages. ``alias_prob``/``alias_alias`` are present when the
    store was built weighted (tables precomputed at build time).
    """

    def __init__(self, store: "GraphStore", index: int, lo: int, hi: int) -> None:
        self.store = store
        self.index = int(index)
        self.lo = int(lo)
        self.hi = int(hi)

    @property
    def num_vertices(self) -> int:
        return self.hi - self.lo

    def owns(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean mask: which (new-space) vertices live in this shard."""
        return (vertices >= self.lo) & (vertices < self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphShard({self.index}, rows [{self.lo}, {self.hi}))"


class GraphStore:
    """Memory-mapped CSR graph satisfying the :class:`GraphView` protocol.

    Construct with :meth:`build` (from an in-memory graph) or
    :meth:`open` (an existing store directory). Vertex ids inside the
    store are *relabeled* — shard-contiguous — and :meth:`permutation`
    maps new ids back to the originals; :meth:`to_graph` reconstructs an
    in-memory graph in either id space.
    """

    #: The resource guard keys off this: mmap'd structure is disk, not RSS.
    mmap_backed = True

    def __init__(
        self, path: Path, manifest: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        self.path = Path(path)
        self._manifest = manifest
        self._arrays = arrays
        self._bounds = np.asarray(manifest["shard_bounds"], dtype=np.int64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        g: Graph,
        path: str | Path,
        *,
        shards: int = 1,
        method: str = "bfs",
        seed: int | None = None,
    ) -> "GraphStore":
        """Partition, relabel, and persist ``g``; returns the opened store.

        Build is the one in-memory step of the out-of-core flow: it
        needs the source graph resident (like any conversion), but the
        store it writes is then consumed purely via mmap. An existing
        directory at ``path`` is refused — stores are immutable once
        built (delete or choose a new path to rebuild).
        """
        if method not in PARTITION_METHODS:
            raise ValueError(
                f"unknown partition method {method!r} (expected one of "
                f"{PARTITION_METHODS})"
            )
        path = Path(path)
        if path.exists():
            raise FileExistsError(
                f"graph store {path} already exists (stores are build-once; "
                "remove it to rebuild)"
            )
        rec = current_recorder()
        started = time.perf_counter()
        membership = partition_vertices(g, shards, method=method, seed=seed)
        perm, bounds = contiguous_relabel(membership)
        arrays = _relabeled_arrays(g, perm)
        arrays["perm"] = perm

        meta = {
            "schema": SCHEMA_VERSION,
            "n": int(g.n),
            "num_edges": int(g.num_edges),
            "num_arcs": int(arrays["indices"].shape[0]),
            "directed": bool(g.directed),
            "weighted": "weights" in arrays,
            "temporal": "times" in arrays,
            "rows_time_sorted": "times" in arrays,
            "partition_method": method,
            "partition_seed": seed,
            "shard_bounds": [int(b) for b in bounds],
            "labels": g.label_names,
            "files": {
                name: {"dtype": arr.dtype.str, "shape": list(arr.shape)}
                for name, arr in arrays.items()
            },
        }
        meta_bytes = json.dumps(meta, sort_keys=True).encode()
        manifest = dict(meta)
        manifest["integrity"] = integrity_record(arrays, meta_bytes)

        path.mkdir(parents=True)
        for name, arr in arrays.items():
            with (path / f"{name}.npy").open("wb") as fh:
                np.save(fh, arr)
        atomic_write_bytes(
            path / MANIFEST_NAME,
            json.dumps(manifest, sort_keys=True, indent=1).encode(),
        )
        seconds = time.perf_counter() - started
        if rec.enabled:
            rec.observe("shard.build_seconds", seconds)
            rec.set("shard.shards", float(len(bounds) - 1))
            rec.event(
                "shard.build",
                n=int(g.n),
                arcs=int(arrays["indices"].shape[0]),
                shards=len(bounds) - 1,
                method=method,
                seconds=round(seconds, 6),
            )
        return cls.open(path)

    @classmethod
    def open(cls, path: str | Path, *, verify: bool = False) -> "GraphStore":
        """Open an existing store, memory-mapping its arrays.

        Structural validation is always performed (manifest readable,
        every listed file present with the declared dtype/shape, indptr
        endpoints sane); ``verify=True`` additionally reads every byte
        and checks the SHA-256 integrity record. Any failure quarantines
        the directory and raises :class:`StoreCorrupt`.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no graph store at {path}")
        try:
            manifest, arrays = cls._open_validated(path)
        except StoreCorrupt:
            _quarantine(path)
            raise
        store = cls(path, manifest, arrays)
        if verify:
            store.verify()
        return store

    @classmethod
    def _open_validated(
        cls, path: Path
    ) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise StoreCorrupt(path, f"missing {MANIFEST_NAME}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorrupt(path, f"unreadable manifest: {exc}") from exc
        files = manifest.get("files")
        if not isinstance(files, Mapping) or not isinstance(
            manifest.get("shard_bounds"), list
        ):
            raise StoreCorrupt(path, "manifest missing files/shard_bounds")
        for name in _REQUIRED:
            if name not in files:
                raise StoreCorrupt(path, f"manifest lists no {name!r} array")
        arrays: dict[str, np.ndarray] = {}
        for name, spec in files.items():
            file = path / f"{name}.npy"
            if not file.is_file():
                raise StoreCorrupt(path, f"missing array file {file.name}")
            try:
                dtype, shape = _npy_header(file)
            except (ValueError, OSError) as exc:
                raise StoreCorrupt(
                    path, f"unreadable array file {file.name}: {exc}"
                ) from exc
            if dtype != spec["dtype"] or list(shape) != list(spec["shape"]):
                raise StoreCorrupt(
                    path,
                    f"{file.name}: header {dtype}{list(shape)} does not match "
                    f"manifest {spec['dtype']}{spec['shape']}",
                )
            try:
                arrays[name] = np.load(file, mmap_mode="r", allow_pickle=False)
            except (ValueError, OSError) as exc:
                raise StoreCorrupt(
                    path, f"torn array file {file.name}: {exc}"
                ) from exc
        n = int(manifest.get("n", -1))
        indptr = arrays["indptr"]
        if (
            n < 0
            or indptr.shape != (n + 1,)
            or (n >= 0 and indptr.size and int(indptr[0]) != 0)
            or int(indptr[-1]) != int(manifest.get("num_arcs", -1))
            or arrays["indices"].shape != (int(manifest["num_arcs"]),)
        ):
            raise StoreCorrupt(path, "indptr endpoints inconsistent with manifest")
        bounds = np.asarray(manifest["shard_bounds"], dtype=np.int64)
        if bounds.size < 2 or bounds[0] != 0 or bounds[-1] != n or np.any(
            np.diff(bounds) < 0
        ):
            raise StoreCorrupt(path, "shard bounds do not cover the vertex range")
        return manifest, arrays

    def verify(self) -> None:
        """Full integrity check: re-hash every array against the manifest.

        Reads all pages (sequentially — still streaming, not resident all
        at once for the digest). Raises :class:`StoreCorrupt` after
        quarantining the directory on mismatch.
        """
        record = self._manifest.get("integrity")
        if not isinstance(record, Mapping):
            _quarantine(self.path)
            raise StoreCorrupt(self.path, "manifest has no integrity record")
        meta = {k: v for k, v in self._manifest.items() if k != "integrity"}
        meta_bytes = json.dumps(meta, sort_keys=True).encode()
        from repro.resilience.checkpoint import CheckpointCorrupt

        try:
            verify_integrity(
                dict(self._arrays), dict(record), meta_bytes=meta_bytes,
                path=self.path,
            )
        except CheckpointCorrupt as exc:
            _quarantine(self.path)
            raise StoreCorrupt(self.path, exc.reason) from exc

    # ------------------------------------------------------------------
    # GraphView surface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self._manifest["n"])

    @property
    def num_vertices(self) -> int:
        return self.n

    @property
    def num_edges(self) -> int:
        return int(self._manifest["num_edges"])

    @property
    def num_arcs(self) -> int:
        return int(self._manifest["num_arcs"])

    @property
    def directed(self) -> bool:
        return bool(self._manifest["directed"])

    @property
    def indptr(self) -> np.ndarray:
        return self._arrays["indptr"]

    @property
    def indices(self) -> np.ndarray:
        return self._arrays["indices"]

    @property
    def edge_weights(self) -> np.ndarray | None:
        return self._arrays.get("weights")

    @property
    def edge_times(self) -> np.ndarray | None:
        return self._arrays.get("times")

    @property
    def vertex_weights(self) -> np.ndarray | None:
        return self._arrays.get("vertex_weights")

    @property
    def weighted(self) -> bool:
        return "weights" in self._arrays

    @property
    def temporal(self) -> bool:
        return "times" in self._arrays

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphStore({self.path}, n={self.n}, m={self.num_edges}, "
            f"shards={self.num_shards})"
        )

    def neighbors(self, v: int) -> np.ndarray:
        if not 0 <= v < self.n:
            raise IndexError(f"vertex {v} out of range [0, {self.n})")
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int | None = None) -> "int | np.ndarray":
        if v is None:
            return self.out_degrees()
        if not 0 <= v < self.n:
            raise IndexError(f"vertex {v} out of range [0, {self.n})")
        return int(self.indptr[v + 1] - self.indptr[v])

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        if not self.directed:
            return self.out_degrees()
        return np.bincount(
            np.asarray(self.indices), minlength=self.n
        ).astype(np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.neighbors(u) == v))

    def arc_array(self) -> tuple[np.ndarray, np.ndarray]:
        """All arcs as ``(src, dst)`` heap arrays (materializes O(arcs))."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degrees())
        return src, np.array(self.indices)

    @property
    def label_names(self) -> list[str]:
        return sorted(self._manifest.get("labels", []))

    def vertex_labels(self, name: str) -> np.ndarray:
        key = f"label_{name}"
        if key not in self._arrays:
            raise KeyError(f"no vertex labels named '{name}'")
        return self._arrays[key]

    # ------------------------------------------------------------------
    # Shards & permutation
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return int(self._bounds.size - 1)

    @property
    def shard_bounds(self) -> np.ndarray:
        """Length ``num_shards + 1``; shard s owns rows bounds[s]:bounds[s+1]."""
        return self._bounds

    def shard(self, index: int) -> GraphShard:
        if not 0 <= index < self.num_shards:
            raise IndexError(
                f"shard {index} out of range [0, {self.num_shards})"
            )
        return GraphShard(
            self, index, int(self._bounds[index]), int(self._bounds[index + 1])
        )

    def shards(self) -> Iterator[GraphShard]:
        for index in range(self.num_shards):
            yield self.shard(index)

    def permutation(self) -> np.ndarray:
        """int64 map *new* (store) vertex id → *original* id."""
        return self._arrays["perm"]

    @property
    def manifest(self) -> dict[str, Any]:
        return dict(self._manifest)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def to_graph(self, *, original_ids: bool = True) -> Graph:
        """Materialize an in-memory :class:`Graph` from the store.

        With ``original_ids`` (default) endpoints, vertex weights, and
        labels are mapped back through the persisted permutation, so the
        result is interchangeable with the graph the store was built
        from (same edges/weights/times — arc order within a CSR row may
        differ). ``original_ids=False`` keeps the store's relabeled,
        shard-contiguous id space.
        """
        src, dst = self.arc_array()
        w = self.edge_weights
        t = self.edge_times
        if not self.directed:
            # Undirected CSR holds two arcs per non-loop edge: keep the
            # canonical half (u < v) plus self-loops (stored once).
            keep = src <= dst
            src, dst = src[keep], dst[keep]
            w = None if w is None else np.array(w)[keep]
            t = None if t is None else np.array(t)[keep]
        else:
            w = None if w is None else np.array(w)
            t = None if t is None else np.array(t)
        vw = self.vertex_weights
        vw = None if vw is None else np.array(vw)
        labels = {
            name: np.array(self.vertex_labels(name)) for name in self.label_names
        }
        if original_ids:
            # Per-vertex data is indexed by new id; scattering through
            # perm (new -> original) puts each value back at its
            # original position.
            perm = np.array(self.permutation())
            src, dst = perm[src], perm[dst]
            if vw is not None:
                out = np.empty(self.n, dtype=np.float64)
                out[perm] = vw
                vw = out
            reordered = {}
            for name, arr in labels.items():
                out = np.empty_like(arr)
                out[perm] = arr
                reordered[name] = out
            labels = reordered
        g = Graph(
            self.n,
            EdgeList(src, dst, w, t),
            directed=self.directed,
            vertex_weights=vw,
        )
        for name, arr in labels.items():
            g.set_vertex_labels(name, arr)
        return g


def _relabeled_arrays(g: Graph, perm: np.ndarray) -> dict[str, np.ndarray]:
    """CSR (+ optional columns) of ``g`` in the permuted id space.

    ``perm`` maps new → original; arcs are re-bucketed by new source id
    with a stable sort, and temporal rows are additionally time-sorted
    so the store can serve binary searches straight off the mmap.
    """
    n = int(g.n)
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n, dtype=np.int64)
    old_src = np.repeat(np.arange(n, dtype=np.int64), g.out_degrees())
    src = inverse[old_src]
    dst = inverse[np.asarray(g.indices)]
    w = g.edge_weights
    t = g.edge_times
    if t is not None:
        order = np.lexsort((t, src))
    else:
        order = np.argsort(src, kind="stable")
    arrays: dict[str, np.ndarray] = {
        "indices": np.ascontiguousarray(dst[order]),
    }
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    arrays["indptr"] = indptr
    if w is not None:
        arrays["weights"] = np.ascontiguousarray(np.asarray(w)[order])
        # Per-row inclusive cumulative weights: the sharded walk engine
        # draws weighted steps by binary-searching this straight off the
        # mmap, so no in-RAM alias table is ever built.
        arrays["cum_weights"] = _row_cumsum(indptr, arrays["weights"])
    if t is not None:
        arrays["times"] = np.ascontiguousarray(np.asarray(t)[order])
    if g.vertex_weights is not None:
        arrays["vertex_weights"] = np.ascontiguousarray(g.vertex_weights[perm])
        arrays["cum_vertex_weights"] = _row_cumsum(
            indptr, arrays["vertex_weights"][arrays["indices"]]
        )
    for name in g.label_names:
        arrays[f"label_{name}"] = np.ascontiguousarray(g.vertex_labels(name)[perm])
    return arrays


def _row_cumsum(indptr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Inclusive cumulative sum restarting at every CSR row boundary."""
    if values.size == 0:
        return np.zeros(0, dtype=np.float64)
    global_cum = np.cumsum(values, dtype=np.float64)
    shifted = np.concatenate(([0.0], global_cum))
    base = shifted[indptr[:-1]]
    return np.ascontiguousarray(
        global_cum - np.repeat(base, np.diff(indptr))
    )
