"""LFR-style benchmark graphs (Lancichinetti–Fortunato–Radicchi 2008).

The planted partition the paper evaluates on has uniform degrees and
equal community sizes; real networks have neither. This generator
produces the community-detection field's harder standard: power-law
degree sequence, power-law community sizes, and a mixing parameter μ
(the fraction of each vertex's edges that leave its community).

This is the *stub-matching approximation* of LFR: intra- and
inter-community edges are built by random stub pairing with rejection of
self-loops and duplicates, so realized degrees track the targets
approximately (exact LFR's rewiring phase is not reproduced — the
properties the benches use, heterogeneity and tunable mixing, are).
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import EdgeList, Graph

__all__ = ["lfr_benchmark"]


def _powerlaw_integers(
    rng: np.random.Generator,
    exponent: float,
    lo: int,
    hi: int,
    size: int,
) -> np.ndarray:
    """Integers in [lo, hi] with P(x) ∝ x^-exponent (inverse-CDF)."""
    xs = np.arange(lo, hi + 1, dtype=np.float64)
    probs = xs**-exponent
    probs /= probs.sum()
    return rng.choice(np.arange(lo, hi + 1), size=size, p=probs)


def _stub_match(
    stubs: np.ndarray, rng: np.random.Generator, forbidden: set[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Randomly pair stubs, rejecting self-loops and duplicate edges."""
    order = rng.permutation(stubs.shape[0])
    shuffled = stubs[order]
    edges: list[tuple[int, int]] = []
    seen = set(forbidden)
    for i in range(0, shuffled.shape[0] - 1, 2):
        u, v = int(shuffled[i]), int(shuffled[i + 1])
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        edges.append(key)
    return edges


def lfr_benchmark(
    n: int = 500,
    *,
    mu: float = 0.2,
    degree_exponent: float = 2.5,
    community_exponent: float = 1.5,
    min_degree: int = 4,
    max_degree: int = 50,
    min_community: int = 20,
    max_community: int = 100,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Generate an LFR-style graph with ground-truth label ``"community"``.

    Parameters
    ----------
    n:
        Vertex count.
    mu:
        Mixing parameter: target fraction of each vertex's edges that
        cross community boundaries (0 = perfectly separated).
    degree_exponent, community_exponent:
        Power-law exponents of the degree and community-size
        distributions (LFR's τ₁ and τ₂).
    min_degree, max_degree, min_community, max_community:
        Support bounds of the two distributions.
    """
    if n < 2 * min_community:
        raise ValueError("n too small for the community-size bounds")
    if not 0.0 <= mu <= 1.0:
        raise ValueError("mu must be in [0, 1]")
    if min_degree < 1 or max_degree < min_degree:
        raise ValueError("need 1 <= min_degree <= max_degree")
    if min_community < 2 or max_community < min_community:
        raise ValueError("need 2 <= min_community <= max_community")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    # --- community sizes: power-law partition of n ----------------------
    sizes: list[int] = []
    remaining = n
    while remaining > 0:
        size = int(
            _powerlaw_integers(rng, community_exponent, min_community, max_community, 1)[0]
        )
        if size > remaining:
            size = remaining
            if size < min_community and sizes:
                # Fold the remainder into the last community.
                sizes[-1] += size
                remaining = 0
                break
        sizes.append(size)
        remaining -= size
    membership = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    membership = rng.permutation(membership)

    # --- degree sequence -------------------------------------------------
    degrees = _powerlaw_integers(rng, degree_exponent, min_degree, max_degree, n)
    # A vertex's intra-degree cannot exceed its community size - 1.
    comm_size_of = np.asarray(sizes)[membership]
    intra_target = np.minimum(
        np.round((1.0 - mu) * degrees).astype(np.int64), comm_size_of - 1
    )
    inter_target = degrees - intra_target

    # --- intra-community edges: stub matching inside each community -----
    edges: list[tuple[int, int]] = []
    for c in range(len(sizes)):
        members = np.flatnonzero(membership == c)
        stubs = np.repeat(members, intra_target[members])
        edges.extend(_stub_match(stubs, rng, set()))

    # --- inter-community edges: global stub matching across groups ------
    inter_stubs = np.repeat(np.arange(n), inter_target)
    existing = set(edges)
    order = rng.permutation(inter_stubs.shape[0])
    shuffled = inter_stubs[order]
    for i in range(0, shuffled.shape[0] - 1, 2):
        u, v = int(shuffled[i]), int(shuffled[i + 1])
        if u == v or membership[u] == membership[v]:
            continue  # cross edges must cross
        key = (min(u, v), max(u, v))
        if key in existing:
            continue
        existing.add(key)
        edges.append(key)

    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    g = Graph(n, EdgeList(src, dst), directed=False)
    g.set_vertex_labels("community", membership)
    return g
