"""Traversals and path algorithms over the CSR graph.

Includes Brandes' algorithm for edge betweenness, the workhorse of the
Girvan–Newman community-detection baseline. The BFS inner loops are
vectorized frontier expansions (gather neighbor slices for the whole
frontier at once) rather than per-vertex Python loops.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.graph.view import GraphView as Graph

__all__ = [
    "bfs_order",
    "bfs_distances",
    "dfs_order",
    "connected_components",
    "is_connected",
    "shortest_path_lengths",
    "edge_betweenness",
]


def _frontier_neighbors(g: Graph, frontier: np.ndarray) -> np.ndarray:
    """All out-neighbors of the frontier, concatenated (with duplicates)."""
    indptr, indices = g.indptr, g.indices
    starts = indptr[frontier]
    stops = indptr[frontier + 1]
    total = int((stops - starts).sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.empty(total, dtype=np.int64)
    pos = 0
    for s, e in zip(starts, stops):
        cnt = e - s
        out[pos : pos + cnt] = indices[s:e]
        pos += cnt
    return out


def bfs_distances(g: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable vertices get -1."""
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        nbrs = _frontier_neighbors(g, frontier)
        if nbrs.size == 0:
            break
        fresh = nbrs[dist[nbrs] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = level
    return dist


def bfs_order(g: Graph, source: int) -> np.ndarray:
    """Vertices in BFS discovery order from ``source``."""
    dist = bfs_distances(g, source)
    reached = np.flatnonzero(dist >= 0)
    return reached[np.argsort(dist[reached], kind="stable")]


def dfs_order(g: Graph, source: int) -> np.ndarray:
    """Iterative preorder DFS from ``source`` (neighbors in CSR order)."""
    seen = np.zeros(g.n, dtype=bool)
    order: list[int] = []
    stack = [source]
    while stack:
        v = stack.pop()
        if seen[v]:
            continue
        seen[v] = True
        order.append(v)
        # Reverse so the first CSR neighbor is visited first.
        stack.extend(int(u) for u in g.neighbors(v)[::-1])
    return np.asarray(order, dtype=np.int64)


def connected_components(g: Graph) -> np.ndarray:
    """Component id per vertex (weak components for directed graphs)."""
    if g.directed:
        g = g.to_undirected()
    comp = np.full(g.n, -1, dtype=np.int64)
    cid = 0
    for v in range(g.n):
        if comp[v] >= 0:
            continue
        frontier = np.asarray([v], dtype=np.int64)
        comp[v] = cid
        while frontier.size:
            nbrs = _frontier_neighbors(g, frontier)
            fresh = np.unique(nbrs[comp[nbrs] < 0]) if nbrs.size else nbrs
            comp[fresh] = cid
            frontier = fresh
        cid += 1
    return comp


def is_connected(g: Graph) -> bool:
    if g.n == 0:
        return True
    return bool(connected_components(g).max() == 0)


def shortest_path_lengths(
    g: Graph, sources: np.ndarray | None = None
) -> np.ndarray:
    """All-pairs (or sources × all) unweighted shortest-path matrix.

    Entry ``[i, j]`` is the hop distance from ``sources[i]`` to ``j``
    (-1 if unreachable). O(sources * (n + m)); use on small graphs.
    """
    if sources is None:
        sources = np.arange(g.n, dtype=np.int64)
    sources = np.asarray(sources, dtype=np.int64)
    out = np.empty((sources.size, g.n), dtype=np.int64)
    for i, s in enumerate(sources):
        out[i] = bfs_distances(g, int(s))
    return out


def edge_betweenness(
    g: Graph,
    *,
    sources: np.ndarray | None = None,
    normalized: bool = True,
) -> dict[tuple[int, int], float]:
    """Brandes' edge betweenness centrality for an undirected graph.

    Returns a dict keyed by the canonical ``(min(u,v), max(u,v))`` edge.
    ``sources`` restricts the accumulation to a subset of source vertices
    (sampled betweenness), scaling the estimate by ``n / len(sources)`` —
    the standard approximation used to keep Girvan–Newman tractable.
    """
    if g.directed:
        raise ValueError("edge_betweenness expects an undirected graph")
    n = g.n
    if sources is None:
        source_list = np.arange(n, dtype=np.int64)
        scale_sources = 1.0
    else:
        source_list = np.asarray(sources, dtype=np.int64)
        if source_list.size == 0:
            raise ValueError("sources must be non-empty")
        scale_sources = n / source_list.size

    indptr, indices = g.indptr, g.indices
    bw: dict[tuple[int, int], float] = {}
    e = g.edge_list
    for u, v in zip(e.src, e.dst):
        a, b = (int(u), int(v)) if u <= v else (int(v), int(u))
        bw[(a, b)] = 0.0

    sigma = np.empty(n, dtype=np.float64)
    dist = np.empty(n, dtype=np.int64)
    delta = np.empty(n, dtype=np.float64)

    for s in source_list:
        sigma.fill(0.0)
        dist.fill(-1)
        delta.fill(0.0)
        sigma[s] = 1.0
        dist[s] = 0
        order: list[int] = []
        queue: deque[int] = deque([int(s)])
        preds: dict[int, list[int]] = {int(s): []}
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in indices[indptr[v] : indptr[v + 1]]:
                w = int(w)
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    preds[w] = []
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        for w in reversed(order):
            coeff = (1.0 + delta[w]) / sigma[w]
            for v in preds[w]:
                c = sigma[v] * coeff
                a, b = (v, w) if v <= w else (w, v)
                bw[(a, b)] += c
                delta[v] += c

    # Each undirected shortest path is found from both endpoints.
    scale = scale_sources / 2.0
    if normalized and n > 2:
        scale /= n * (n - 1) / 2.0
    for key in bw:
        bw[key] *= scale
    return bw
