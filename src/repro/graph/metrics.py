"""Structural graph metrics: density, modularity, clustering, assortativity.

``modularity`` is the Newman–Girvan modularity used by both the CNM
baseline and the Girvan–Newman modularity-peak cut.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import Graph
from repro.obs.recorder import current_recorder

__all__ = [
    "density",
    "modularity",
    "triangle_count",
    "average_clustering",
    "degree_assortativity",
    "degree_histogram",
]


def density(g: Graph) -> float:
    """Edge density: m / possible edges (0 for graphs with < 2 vertices)."""
    n = g.n
    if n < 2:
        return 0.0
    possible = n * (n - 1) if g.directed else n * (n - 1) / 2
    return g.num_edges / possible


def modularity(g: Graph, membership: np.ndarray) -> float:
    """Newman–Girvan modularity of a partition of an undirected graph.

    Q = (1/2m) * sum_ij [A_ij - k_i k_j / (2m)] * delta(c_i, c_j),
    computed vectorized over the arc list. Weighted graphs use arc
    weights and weighted degrees.
    """
    if g.directed:
        raise ValueError("modularity expects an undirected graph")
    current_recorder().inc("community.modularity_evals")
    membership = np.asarray(membership, dtype=np.int64)
    if membership.shape != (g.n,):
        raise ValueError("membership must assign every vertex")
    src, dst = g.arc_array()
    if g.num_arcs == 0:
        return 0.0
    w = g.edge_weights if g.edge_weights is not None else np.ones(g.num_arcs)
    two_m = w.sum()  # sum over arcs == 2m for undirected
    if two_m == 0:
        return 0.0
    k = np.zeros(g.n)
    np.add.at(k, src, w)
    same = membership[src] == membership[dst]
    intra = w[same].sum() / two_m
    ncomm = membership.max() + 1
    deg_per_comm = np.zeros(ncomm)
    np.add.at(deg_per_comm, membership, k)
    expected = np.sum((deg_per_comm / two_m) ** 2)
    return float(intra - expected)


def triangle_count(g: Graph) -> int:
    """Total number of triangles in an undirected graph.

    Uses the trace of A^3 on a dense adjacency for small graphs and a
    neighbor-intersection sweep for larger ones.
    """
    if g.directed:
        raise ValueError("triangle_count expects an undirected graph")
    if g.n <= 512:
        a = (g.adjacency_matrix() > 0).astype(np.float64)
        np.fill_diagonal(a, 0.0)
        return int(round(np.trace(a @ a @ a) / 6.0))
    total = 0
    neighbor_sets = [set(map(int, g.neighbors(v))) for v in range(g.n)]
    for u in range(g.n):
        for v in g.neighbors(u):
            v = int(v)
            if v <= u:
                continue
            total += len(neighbor_sets[u] & neighbor_sets[v])
    return total // 3  # each triangle counted once per edge


def average_clustering(g: Graph) -> float:
    """Mean local clustering coefficient (vertices with degree < 2 count 0)."""
    if g.directed:
        raise ValueError("average_clustering expects an undirected graph")
    if g.n == 0:
        return 0.0
    neighbor_sets = [set(map(int, g.neighbors(v))) - {v} for v in range(g.n)]
    coeffs = np.zeros(g.n)
    for v in range(g.n):
        nbrs = neighbor_sets[v]
        d = len(nbrs)
        if d < 2:
            continue
        links = sum(len(neighbor_sets[u] & nbrs) for u in nbrs) // 2
        coeffs[v] = 2.0 * links / (d * (d - 1))
    return float(coeffs.mean())


def degree_assortativity(g: Graph) -> float:
    """Pearson correlation of endpoint degrees over arcs (NaN if degenerate)."""
    src, dst = g.arc_array()
    if src.size < 2:
        return float("nan")
    deg = g.out_degrees().astype(np.float64)
    x, y = deg[src], deg[dst]
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return float("nan")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def degree_histogram(g: Graph) -> np.ndarray:
    """Counts of vertices by out-degree: ``hist[d]`` = #vertices of degree d."""
    deg = g.out_degrees()
    return np.bincount(deg) if deg.size else np.zeros(1, dtype=np.int64)
