"""Structural graph metrics: density, modularity, clustering, assortativity.

``modularity`` is the Newman–Girvan modularity used by both the CNM
baseline and the Girvan–Newman modularity-peak cut.

Every metric takes a :class:`repro.graph.view.GraphView` — the in-memory
``Graph`` or the memory-mapped ``GraphStore`` — and stays in O(n + m)
CSR form except where a dense matrix is explicitly cheaper on small
graphs (``triangle_count`` under :data:`_DENSE_TRIANGLE_LIMIT``; above
:data:`repro.graph.core.DENSE_MATERIALIZATION_LIMIT` the dense paths
are never taken, so no metric accidentally materializes O(n²)).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.obs.recorder import current_recorder

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.graph.view import GraphView as Graph

__all__ = [
    "density",
    "modularity",
    "triangle_count",
    "average_clustering",
    "global_clustering",
    "degree_assortativity",
    "degree_histogram",
]

#: Below this vertex count ``triangle_count`` uses the dense trace(A³)
#: kernel (faster there); above it, the CSR neighbor-merge sweep.
_DENSE_TRIANGLE_LIMIT = 512


def density(g: Graph) -> float:
    """Edge density: m / possible edges (0 for graphs with < 2 vertices)."""
    n = g.n
    if n < 2:
        return 0.0
    possible = n * (n - 1) if g.directed else n * (n - 1) / 2
    return g.num_edges / possible


def modularity(g: Graph, membership: np.ndarray) -> float:
    """Newman–Girvan modularity of a partition of an undirected graph.

    Q = (1/2m) * sum_ij [A_ij - k_i k_j / (2m)] * delta(c_i, c_j),
    computed vectorized over the arc list. Weighted graphs use arc
    weights and weighted degrees.
    """
    if g.directed:
        raise ValueError("modularity expects an undirected graph")
    current_recorder().inc("community.modularity_evals")
    membership = np.asarray(membership, dtype=np.int64)
    if membership.shape != (g.n,):
        raise ValueError("membership must assign every vertex")
    src, dst = g.arc_array()
    if g.num_arcs == 0:
        return 0.0
    w = g.edge_weights if g.edge_weights is not None else np.ones(g.num_arcs)
    two_m = w.sum()  # sum over arcs == 2m for undirected
    if two_m == 0:
        return 0.0
    k = np.zeros(g.n)
    np.add.at(k, src, w)
    same = membership[src] == membership[dst]
    intra = w[same].sum() / two_m
    ncomm = membership.max() + 1
    deg_per_comm = np.zeros(ncomm)
    np.add.at(deg_per_comm, membership, k)
    expected = np.sum((deg_per_comm / two_m) ** 2)
    return float(intra - expected)


def triangle_count(g: Graph) -> int:
    """Total number of triangles in an undirected graph.

    Uses the trace of A^3 on a dense adjacency for small graphs and the
    CSR forward-edge intersection sweep (:func:`_triangle_count_csr`,
    O(n + m) memory) for larger ones — large graphs never materialize a
    dense matrix.
    """
    if g.directed:
        raise ValueError("triangle_count expects an undirected graph")
    if g.n <= _DENSE_TRIANGLE_LIMIT and hasattr(g, "adjacency_matrix"):
        a = (g.adjacency_matrix() > 0).astype(np.float64)
        np.fill_diagonal(a, 0.0)
        return int(round(np.trace(a @ a @ a) / 6.0))
    return _triangle_count_csr(g)


def _triangle_count_csr(g: Graph) -> int:
    """Forward-edge triangle counting straight off the CSR arrays.

    For every edge (u, v) with u < v, count the common forward
    neighbors w > v; each triangle u < v < w is found exactly once, at
    its smallest edge. Sorted forward adjacency lists make each
    intersection a linear merge (``np.intersect1d`` on unique arrays),
    so nothing dense — and on a :class:`GraphStore` nothing beyond the
    touched rows — is ever materialized.
    """
    indptr = g.indptr
    indices = g.indices
    n = int(g.n)
    forward: list[np.ndarray] = []
    for u in range(n):
        nbrs = indices[indptr[u] : indptr[u + 1]]
        fwd = np.unique(nbrs[nbrs > u])
        forward.append(fwd)
    total = 0
    for u in range(n):
        fwd = forward[u]
        for v in fwd:
            common = np.intersect1d(fwd, forward[int(v)], assume_unique=True)
            total += int(common.size)
    return total


def global_clustering(g: Graph) -> float:
    """Global clustering coefficient (transitivity): 3·triangles / triads.

    A *triad* is an ordered pair of distinct edges sharing a vertex
    (``sum_v d_v·(d_v − 1)/2`` with self-loops excluded from degrees);
    every triangle closes three of them. 0.0 on graphs with no triads.
    Runs entirely on the CSR arrays above the dense threshold, so it is
    safe on large (and memory-mapped) graphs.
    """
    if g.directed:
        raise ValueError("global_clustering expects an undirected graph")
    if g.n == 0:
        return 0.0
    indptr = np.asarray(g.indptr)
    deg = np.diff(indptr).astype(np.float64)
    # Self-loops appear once in their own row; they are not usable arcs
    # for a triad, so remove them from the degree sequence.
    loops = _self_loop_counts(g)
    deg = deg - loops
    triads = float(np.sum(deg * (deg - 1.0)) / 2.0)
    if triads <= 0:
        return 0.0
    return 3.0 * triangle_count(g) / triads


def _self_loop_counts(g: Graph) -> np.ndarray:
    """Per-vertex count of self-loop arcs, CSR-only."""
    indptr = np.asarray(g.indptr)
    indices = np.asarray(g.indices)
    row = np.repeat(np.arange(int(g.n), dtype=np.int64), np.diff(indptr))
    loops = np.zeros(int(g.n), dtype=np.float64)
    np.add.at(loops, row[indices == row], 1.0)
    return loops


def average_clustering(g: Graph) -> float:
    """Mean local clustering coefficient (vertices with degree < 2 count 0)."""
    if g.directed:
        raise ValueError("average_clustering expects an undirected graph")
    if g.n == 0:
        return 0.0
    neighbor_sets = [set(map(int, g.neighbors(v))) - {v} for v in range(g.n)]
    coeffs = np.zeros(g.n)
    for v in range(g.n):
        nbrs = neighbor_sets[v]
        d = len(nbrs)
        if d < 2:
            continue
        links = sum(len(neighbor_sets[u] & nbrs) for u in nbrs) // 2
        coeffs[v] = 2.0 * links / (d * (d - 1))
    return float(coeffs.mean())


def degree_assortativity(g: Graph) -> float:
    """Pearson correlation of endpoint degrees over arcs (NaN if degenerate)."""
    src, dst = g.arc_array()
    if src.size < 2:
        return float("nan")
    deg = g.out_degrees().astype(np.float64)
    x, y = deg[src], deg[dst]
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return float("nan")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def degree_histogram(g: Graph) -> np.ndarray:
    """Counts of vertices by out-degree: ``hist[d]`` = #vertices of degree d."""
    deg = g.out_degrees()
    return np.bincount(deg) if deg.size else np.zeros(1, dtype=np.int64)
