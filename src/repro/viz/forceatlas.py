"""ForceAtlas2-style force-directed layout (Jacomy et al. 2014).

Reproduces the layout behind Fig 3: linear attraction along edges,
degree-scaled repulsion between all vertex pairs, gravity toward the
origin, and ForceAtlas2's adaptive "swinging" speed control. All forces
are computed with dense vectorized numpy (O(n²) repulsion per iteration
— fine at the paper's 1 000-vertex scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.core import Graph

__all__ = ["ForceAtlasLayout", "force_atlas_layout"]


@dataclass(frozen=True)
class ForceAtlasLayout:
    """Final positions plus convergence diagnostics."""

    positions: np.ndarray
    iterations: int
    final_swing: float


def force_atlas_layout(
    g: Graph,
    *,
    iterations: int = 200,
    scaling: float = 2.0,
    gravity: float = 1.0,
    jitter_tolerance: float = 1.0,
    seed: int | None = None,
) -> ForceAtlasLayout:
    """Compute a 2-D ForceAtlas2 layout of ``g``.

    Parameters follow the published algorithm: ``scaling`` multiplies
    repulsion (spread), ``gravity`` pulls components together,
    ``jitter_tolerance`` trades oscillation for speed.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    n = g.n
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 2)) * 2.0 - 1.0
    if n == 0:
        return ForceAtlasLayout(pos, 0, 0.0)
    if g.directed:
        g = g.to_undirected()

    deg = g.out_degrees().astype(np.float64)
    mass = deg + 1.0
    src, dst = g.arc_array()
    speed = 1.0
    speed_efficiency = 1.0
    swing_total = 0.0
    prev_forces = np.zeros_like(pos)

    for it in range(1, iterations + 1):
        delta = pos[:, None, :] - pos[None, :, :]  # (n, n, 2)
        dist2 = np.einsum("ijk,ijk->ij", delta, delta)
        np.fill_diagonal(dist2, 1.0)
        dist = np.sqrt(dist2)

        # Repulsion: k_r * mass_i * mass_j / d, directed away.
        rep_coeff = scaling * (mass[:, None] * mass[None, :]) / dist2
        np.fill_diagonal(rep_coeff, 0.0)
        forces = np.einsum("ij,ijk->ik", rep_coeff, delta)

        # Attraction: linear in distance along each edge (both arcs
        # present, so each endpoint is pulled once per neighbor).
        if src.size:
            edge_vec = pos[dst] - pos[src]
            np.add.at(forces, src, edge_vec)

        # Gravity toward the origin, mass-scaled.
        norms = np.linalg.norm(pos, axis=1)
        safe = np.maximum(norms, 1e-9)
        forces -= gravity * mass[:, None] * pos / safe[:, None]

        # Adaptive speed from swing (oscillation) vs traction (progress).
        swing = np.linalg.norm(forces - prev_forces, axis=1)
        traction = np.linalg.norm(forces + prev_forces, axis=1) / 2.0
        swing_total = float((mass * swing).sum())
        traction_total = float((mass * traction).sum())
        estimated = jitter_tolerance * jitter_tolerance * traction_total / max(swing_total, 1e-9)
        target_speed = min(estimated, speed * speed_efficiency * 1.5)
        if swing_total > traction_total:
            speed_efficiency = max(speed_efficiency * 0.7, 0.05)
        else:
            speed_efficiency = min(speed_efficiency * 1.3, 3.0)
        speed = speed + min(target_speed - speed, 0.5 * speed)

        # Per-node displacement capped by its own swing.
        factor = speed / (1.0 + np.sqrt(speed * np.maximum(swing, 1e-9)))
        pos = pos + forces * factor[:, None]
        prev_forces = forces

    return ForceAtlasLayout(positions=pos, iterations=iterations, final_swing=swing_total)
