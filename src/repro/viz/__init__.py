"""Visualization substrate: force-directed layout, projections, renderers.

No plotting library ships in this environment, so figures are produced
as (a) coordinate tables (CSV) and (b) ASCII scatter plots — the *data*
of each paper figure, which is what the benches verify quantitatively.
"""

from repro.viz.ascii import render_scatter, render_series
from repro.viz.forceatlas import ForceAtlasLayout, force_atlas_layout
from repro.viz.projection import (
    cluster_boundaries,
    pca_projection,
    projection_to_csv,
    separation_ratio,
)

__all__ = [
    "ForceAtlasLayout",
    "force_atlas_layout",
    "pca_projection",
    "cluster_boundaries",
    "separation_ratio",
    "projection_to_csv",
    "render_scatter",
    "render_series",
]
