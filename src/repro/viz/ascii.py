"""ASCII renderers: scatter plots and line series as terminal text.

These make the examples and benches self-contained in a headless
environment: the paper's figures are rendered as character grids, with
group labels mapped to distinct glyphs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_scatter", "render_series"]

GLYPHS = "ox+*#@%&ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_scatter(
    points: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    width: int = 72,
    height: int = 24,
) -> str:
    """Render 2-D points as a character grid.

    Points sharing a cell show the glyph of the most common label in the
    cell. Returns a string with ``height`` lines of ``width`` chars plus
    a legend line when labels are given.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] < 2:
        raise ValueError("points must be n×2 (extra columns ignored)")
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2×2")
    x, y = points[:, 0], points[:, 1]
    if labels is None:
        encoded = np.zeros(points.shape[0], dtype=np.int64)
        classes = np.asarray(["·"])
    else:
        classes, encoded = np.unique(np.asarray(labels), return_inverse=True)

    def _scale(v: np.ndarray, cells: int) -> np.ndarray:
        lo, hi = v.min(), v.max()
        if hi == lo:
            return np.zeros(v.shape[0], dtype=np.int64)
        return np.minimum(((v - lo) / (hi - lo) * cells).astype(np.int64), cells - 1)

    cols = _scale(x, width)
    rows = _scale(-y, height)  # flip so +y is up

    votes = np.zeros((height, width, classes.shape[0]), dtype=np.int64)
    np.add.at(votes, (rows, cols, encoded), 1)
    occupied = votes.sum(axis=2) > 0
    winner = votes.argmax(axis=2)

    lines = []
    for r in range(height):
        chars = []
        for c in range(width):
            if occupied[r, c]:
                chars.append(GLYPHS[winner[r, c] % len(GLYPHS)])
            else:
                chars.append(" ")
        lines.append("".join(chars))
    out = "\n".join(lines)
    if labels is not None:
        legend = "  ".join(
            f"{GLYPHS[i % len(GLYPHS)]}={classes[i]}" for i in range(classes.shape[0])
        )
        out += "\nlegend: " + legend
    return out


def render_series(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    *,
    width: int = 72,
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one or more y(x) series as an ASCII chart with axis labels."""
    x = np.asarray(x, dtype=np.float64)
    if not series:
        raise ValueError("need at least one series")
    ys = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    for name, v in ys.items():
        if v.shape != x.shape:
            raise ValueError(f"series '{name}' does not match x")
    all_y = np.concatenate(list(ys.values()))
    lo = y_min if y_min is not None else float(all_y.min())
    hi = y_max if y_max is not None else float(all_y.max())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(x.min()), float(x.max())
    span_x = (x_hi - x_lo) or 1.0
    for idx, (name, v) in enumerate(ys.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        cols = np.minimum(((x - x_lo) / span_x * width).astype(int), width - 1)
        rows = np.minimum(((hi - v) / (hi - lo) * height).astype(int), height - 1)
        for r, c in zip(rows, cols):
            grid[int(r)][int(c)] = glyph
    lines = ["".join(row) for row in grid]
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={name}" for i, name in enumerate(ys)
    )
    header = f"y∈[{lo:.4g}, {hi:.4g}]  x∈[{x_lo:.4g}, {x_hi:.4g}]"
    return header + "\n" + "\n".join(lines) + "\nlegend: " + legend
