"""Projection helpers for the PCA figures (Figs 4 and 8).

Besides producing coordinates, these quantify what the paper shows
visually: ``separation_ratio`` measures how far apart label groups sit
relative to their spread (≫ 1 means the clusters in the scatter are
visibly separated), and ``cluster_boundaries`` reconstructs the
centroid/Voronoi overlay of Fig 4.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.ml.pca import PCA

__all__ = [
    "pca_projection",
    "cluster_boundaries",
    "separation_ratio",
    "projection_to_csv",
]


def pca_projection(vectors: np.ndarray, n_components: int = 2) -> np.ndarray:
    """Project embedding vectors onto their top principal components."""
    return PCA(n_components).fit_transform(np.asarray(vectors, dtype=np.float64))


def cluster_boundaries(
    points: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Centroids and per-point assignment distances for a Voronoi overlay.

    Returns ``(centroids, margins)`` where ``margins[i]`` is the gap
    between point i's distance to the nearest *other* centroid and to its
    own — positive margins mean the point sits inside its own cell.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    classes, encoded = np.unique(labels, return_inverse=True)
    k = classes.shape[0]
    centroids = np.zeros((k, points.shape[1]))
    counts = np.bincount(encoded, minlength=k).astype(np.float64)
    np.add.at(centroids, encoded, points)
    centroids /= counts[:, None]
    d = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
    own = d[np.arange(points.shape[0]), encoded]
    d_other = d.copy()
    d_other[np.arange(points.shape[0]), encoded] = np.inf
    margins = d_other.min(axis=1) - own
    return centroids, margins


def separation_ratio(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean inter-centroid distance divided by mean within-group spread.

    The quantitative stand-in for "the groups look separated in the
    scatter plot": > 1 indicates visible separation.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    classes, encoded = np.unique(labels, return_inverse=True)
    k = classes.shape[0]
    if k < 2:
        raise ValueError("need at least two label groups")
    centroids, _ = cluster_boundaries(points, labels)
    spread = np.zeros(k)
    for i in range(k):
        member = points[encoded == i]
        spread[i] = np.linalg.norm(member - centroids[i], axis=1).mean() if member.size else 0.0
    iu, ju = np.triu_indices(k, k=1)
    inter = np.linalg.norm(centroids[iu] - centroids[ju], axis=1).mean()
    mean_spread = spread.mean()
    if mean_spread == 0:
        return float("inf")
    return float(inter / mean_spread)


def projection_to_csv(
    points: np.ndarray,
    labels: np.ndarray,
    path: str | Path,
    *,
    label_name: str = "label",
) -> None:
    """Write figure data as ``x,y[,z],label`` CSV (one row per vertex)."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2 or points.shape[1] not in (2, 3):
        raise ValueError("points must be n×2 or n×3")
    if labels.shape[0] != points.shape[0]:
        raise ValueError("one label per point required")
    axes = ["x", "y", "z"][: points.shape[1]]
    with Path(path).open("w") as fh:
        fh.write(",".join(axes) + f",{label_name}\n")
        for row, lab in zip(points, labels):
            fh.write(",".join(f"{v:.6f}" for v in row) + f",{lab}\n")
