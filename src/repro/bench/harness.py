"""Utilities shared by the per-figure/per-table benchmark scripts.

Each bench builds a list of :class:`ExperimentRecord` rows and prints
them with :func:`format_table` (tables) or :func:`format_series`
(figures), so bench output mirrors the paper's row/series structure and
EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "Timer",
    "ExperimentRecord",
    "format_table",
    "format_series",
    "write_records_csv",
]


class Timer:
    """Context-manager wall-clock timer: ``with Timer() as t: ...; t.seconds``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class ExperimentRecord:
    """One row of an experiment: a parameter point plus measured values."""

    params: dict[str, Any] = field(default_factory=dict)
    values: dict[str, float] = field(default_factory=dict)

    def row(self) -> dict[str, Any]:
        return {**self.params, **self.values}


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    records: Sequence[ExperimentRecord],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render records as an aligned text table (paper-table style)."""
    if not records:
        return "(no records)"
    if columns:
        cols = list(columns)
    else:
        cols = []
        for r in records:  # union of keys, first-seen order
            for c in r.row():
                if c not in cols:
                    cols.append(c)
    rows = [[_fmt(r.row().get(c, "")) for c in cols] for r in records]
    widths = [
        max(len(c), *(len(row[i]) for row in rows)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    records: Sequence[ExperimentRecord],
    *,
    series_key: str | None = None,
    value: str = "value",
    title: str | None = None,
) -> str:
    """Render records as figure series: one block per ``series_key`` value.

    Mirrors a paper figure with multiple curves (e.g. one per dimension).
    """
    if not records:
        return "(no records)"
    groups: dict[Any, list[ExperimentRecord]] = {}
    for r in records:
        key = r.params.get(series_key) if series_key else None
        groups.setdefault(key, []).append(r)
    lines = []
    if title:
        lines.append(title)
    for key, group in groups.items():
        label = f"{series_key}={_fmt(key)}" if series_key else "series"
        xs = ", ".join(_fmt(r.params.get(x_name)) for r in group)
        ys = ", ".join(_fmt(r.values.get(value)) for r in group)
        lines.append(f"[{label}] {x_name}: {xs}")
        lines.append(f"[{label}] {value}: {ys}")
    return "\n".join(lines)


def write_records_csv(
    records: Sequence[ExperimentRecord], path: str | Path
) -> None:
    """Dump records to CSV (union of keys, stable order)."""
    if not records:
        Path(path).write_text("")
        return
    cols: list[str] = []
    for r in records:
        for c in r.row():
            if c not in cols:
                cols.append(c)
    with Path(path).open("w") as fh:
        fh.write(",".join(cols) + "\n")
        for r in records:
            row = r.row()
            fh.write(",".join(_fmt(row.get(c, "")) for c in cols) + "\n")
