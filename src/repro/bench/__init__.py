"""Benchmark harness: timers, experiment records, table/series printers."""

from repro.bench.harness import (
    ExperimentRecord,
    Timer,
    format_series,
    format_table,
    write_records_csv,
)

__all__ = [
    "Timer",
    "ExperimentRecord",
    "format_table",
    "format_series",
    "write_records_csv",
]
