"""Fingerprinted checkpoint slots — the durability contract every stage shares.

Before this module existed, ``walks.engine._generate_walks_checkpointed``
and ``core.trainer._TrainerCheckpointer`` each reimplemented the same
three-step dance:

1. stamp every saved checkpoint with a *job fingerprint* (a JSON-able
   dict describing the configuration + inputs that produced it),
2. on resume, load a checkpoint only if its fingerprint matches the
   current job **exactly**, and
3. refuse — loudly, with a typed error — to resume over a checkpoint
   written by a different configuration, rather than silently mixing
   artifacts from two different runs.

:class:`FingerprintedCheckpoints` is that dance, extracted once. It
wraps a :class:`repro.resilience.checkpoint.CheckpointManager` (so all
writes stay atomic and integrity-protected) and scopes every named slot
to one fingerprint. :class:`FingerprintMismatch` subclasses
``ValueError`` so long-standing ``pytest.raises(ValueError)`` call sites
and user code keep working.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.resilience.checkpoint import Checkpoint, CheckpointManager

__all__ = ["FingerprintMismatch", "FingerprintedCheckpoints"]

_RESUME_HINT = (
    "clear the checkpoint directory or resume with the original settings"
)


class FingerprintMismatch(ValueError):
    """A checkpoint exists but belongs to a different job.

    Subclasses ``ValueError`` because that is what the walk engine and
    trainer historically raised; callers matching on ``ValueError``
    (or on the message fragments) are unaffected by the refactor.
    """

    def __init__(self, path: str | Path, what: str, described: str) -> None:
        super().__init__(
            f"{what} {path} was written by a different {described}; "
            f"{_RESUME_HINT}"
        )
        self.path = Path(path)


class FingerprintedCheckpoints:
    """Named checkpoint slots bound to one job fingerprint.

    Parameters
    ----------
    manager:
        The directory-scoped :class:`CheckpointManager` doing the atomic
        I/O.
    fingerprint:
        JSON-able identity of the job. Saves stamp it into the metadata;
        loads verify it and raise :class:`FingerprintMismatch` on any
        difference.
    what / described:
        Words for the mismatch message — e.g. ``what="walk checkpoint"``
        and ``described="walk configuration"`` produce the walk engine's
        historical error text.
    """

    def __init__(
        self,
        manager: CheckpointManager,
        fingerprint: dict[str, Any],
        *,
        what: str = "checkpoint",
        described: str = "configuration",
    ) -> None:
        self.manager = manager
        self.fingerprint = fingerprint
        self.what = what
        self.described = described

    @property
    def directory(self) -> Path:
        return self.manager.directory

    def load(self, name: str) -> Checkpoint | None:
        """Load slot ``name`` if present *and* written by this job.

        Missing (or quarantined-as-corrupt) slots return ``None`` — the
        normal "nothing to resume" state. A present slot whose stamped
        fingerprint differs raises :class:`FingerprintMismatch`.
        """
        ckpt = self.manager.load_if_exists(name)
        if ckpt is None:
            return None
        if ckpt.meta.get("fingerprint") != self.fingerprint:
            raise FingerprintMismatch(
                self.manager.path_for(name), self.what, self.described
            )
        return ckpt

    def save(
        self,
        name: str,
        arrays: dict[str, np.ndarray] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> Path:
        """Atomically save slot ``name`` stamped with the job fingerprint."""
        meta = dict(meta or {})
        meta["fingerprint"] = self.fingerprint
        return self.manager.save(name, arrays, meta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FingerprintedCheckpoints({str(self.directory)!r}, "
            f"what={self.what!r})"
        )
