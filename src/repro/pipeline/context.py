"""ExecutionContext: every runtime concern of a pipeline run, in one value.

PRs 1–4 grew four cross-cutting runtime systems — checkpoint/resume,
worker pools, supervision, telemetry — and each was hand-threaded
through the stack as its own keyword argument (``checkpoint_dir=``,
``resume=``, ``workers=``, ``supervisor=``, ``observability=``). The
:class:`ExecutionContext` replaces that piecemeal plumbing: it is the
*single* carrier of runtime policy, constructed once at the entry point
(CLI ``runtime_from_args``, ``V2V.fit``, or directly by a library user)
and passed whole through every stage.

Crucially, nothing in the context affects *what* is computed — only
*how*: where checkpoints land, how many processes run, what gets
supervised, what gets logged. Model identity (dimensions, seeds, walk
modes) stays in the stage configs (``RandomWalkConfig``/``TrainConfig``),
so two runs with different contexts but equal configs produce identical
results.

Layering note: this module sits *above* ``repro.obs``, ``repro.parallel``
and ``repro.resilience`` but *below* the stage implementations. The
low-level engines (``repro.walks.engine``, ``repro.core.trainer``)
accept a context duck-typed and only import this module lazily inside
their public compatibility shims — never at module level — which is
what ``scripts/check_import_cycles.py`` enforces.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from repro.obs.recorder import ObsConfig, current_recorder, session
from repro.parallel.seeding import spawn_seeds, worker_seed_sequence
from repro.pipeline.checkpointing import FingerprintedCheckpoints
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.guard import ResourceBudget
from repro.resilience.lifecycle import (
    CancellationToken,
    CancelScope,
    Deadline,
    cancel_scope,
    current_cancel_scope,
)
from repro.resilience.supervisor import SupervisorConfig

__all__ = ["ExecutionContext", "UNSET", "context_from_legacy"]

# Sentinel distinguishing "caller did not pass this legacy kwarg" from
# every real value (including None and False).
UNSET: Any = object()

_DEPRECATED_RUNTIME_KWARGS = ("checkpoint_dir", "resume", "supervisor")


@dataclass(frozen=True)
class ExecutionContext:
    """Runtime policy for one pipeline run.

    Parameters
    ----------
    observability:
        Telemetry settings. When set and no recorder is already
        installed, :meth:`session` opens a full observability session
        (sinks, recorder, run manifest) for the duration of the run.
    checkpoint_dir:
        Root directory for durable artifacts. ``None`` disables
        checkpointing entirely. Stages namespace their artifacts under
        this root (see :meth:`scoped`).
    resume:
        Reuse compatible checkpoints found under ``checkpoint_dir``
        instead of recomputing. Fingerprint mismatches raise
        :class:`repro.pipeline.checkpointing.FingerprintMismatch`.
    workers:
        Process count for parallelizable stages (the walk engine, chunk
        maps). ``None`` or any value < 1 means auto-detect via
        :func:`repro.parallel.pool.resolve_workers`. Note the *trainer*
        worker count stays in ``TrainConfig.workers`` — it changes the
        RNG stream layout and is therefore model identity, not runtime
        policy.
    shards:
        Cap on how many graph-store shard tasks run concurrently per
        walk exchange round (see :mod:`repro.walks.sharded`). ``None``
        (default) means min(workers, store shard count). Pure
        scheduling — the sharded engine's corpus is bitwise-identical
        for every value — so it is runtime policy like ``workers``, not
        model identity. Ignored by in-memory stages.
    supervisor:
        Liveness policy for parallel workers (heartbeats, watchdog,
        respawn ladder); ``None`` disables supervision.
    fault_injector:
        Chaos hook: a callable mapping a stage's worker task function to
        a replacement (typically wrapping it in a
        :class:`repro.resilience.chaos.FaultInjector`). Applied by
        :meth:`wrap_task` wherever a stage fans work out. ``None`` (the
        default) is a transparent pass-through.
    seed:
        Root of the context's seed tree for *auxiliary* stage
        randomness (downstream tasks without their own seed). Stage
        configs keep their own seeds for anything that defines model
        identity.
    cancellation:
        Cooperative shutdown latch (see
        :mod:`repro.resilience.lifecycle`). The CLI wires its signal
        handlers to this token; engines poll it at checkpointable
        boundaries. Excluded from equality — requesting cancellation
        never changes what a run *would* compute.
    deadline:
        Wall-clock budget for the run. Expiry behaves like
        cancellation with reason ``"deadline"`` (exit code 124).
    budget:
        Resource ceilings (:class:`repro.resilience.guard.ResourceBudget`,
        from ``--memory-budget`` / ``--disk-budget``). When armed,
        ``Pipeline.execute`` runs a preflight footprint check and keeps
        a pressure watchdog sampling for the duration. Excluded from
        equality — like cancellation, a budget changes *whether/how
        fast* a run computes, never what it computes.
    """

    observability: ObsConfig | None = None
    checkpoint_dir: Path | None = None
    resume: bool = False
    workers: int | None = 1
    shards: int | None = None
    supervisor: SupervisorConfig | None = None
    fault_injector: Callable[[Callable], Callable] | None = field(
        default=None, compare=False
    )
    seed: int | None = None
    cancellation: CancellationToken | None = field(default=None, compare=False)
    deadline: Deadline | None = field(default=None, compare=False)
    budget: ResourceBudget | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.checkpoint_dir is not None and not isinstance(
            self.checkpoint_dir, Path
        ):
            object.__setattr__(self, "checkpoint_dir", Path(self.checkpoint_dir))

    # -- telemetry ------------------------------------------------------
    @property
    def recorder(self):
        """The process-wide recorder (no-op unless a session is open)."""
        return current_recorder()

    @contextlib.contextmanager
    def session(self, run_config: dict | None = None) -> Iterator[Any]:
        """Open an observability session if one is wanted and absent.

        No-ops (yielding the already-current recorder) when the context
        has no :class:`ObsConfig` or an enclosing session — e.g. the
        CLI's — already installed a recorder, so nested pipelines never
        double-install sinks.
        """
        if self.observability is None or current_recorder().enabled:
            yield current_recorder()
            return
        with session(self.observability, run_config=run_config) as rec:
            yield rec

    # -- lifecycle ------------------------------------------------------
    def lifecycle(self) -> contextlib.AbstractContextManager[CancelScope]:
        """Activate this context's cancellation/deadline as the ambient
        scope (merging with any enclosing one). Engines enter this at
        their public boundary; hot loops then poll via
        :func:`repro.resilience.lifecycle.current_cancel_scope`."""
        return cancel_scope(self.cancellation, self.deadline)

    @property
    def cancel_requested(self) -> bool:
        """True once this run should wind down (token or deadline)."""
        return self._scope().cancelled()

    def check_cancelled(self) -> None:
        """Raise :class:`repro.resilience.lifecycle.RunInterrupted` if
        shutdown was requested — for code holding a context directly."""
        self._scope().check()

    def _scope(self) -> CancelScope:
        ambient = current_cancel_scope()
        if self.cancellation is None and self.deadline is None:
            return ambient
        return CancelScope(
            self.cancellation or ambient.token,
            self.deadline or ambient.deadline,
        )

    # -- workers / supervision / chaos ---------------------------------
    def resolve_workers(self) -> int:
        """The concrete worker count for parallel stages (always >= 1)."""
        from repro.parallel.pool import resolve_workers

        return resolve_workers(self.workers)

    def wrap_task(self, fn: Callable) -> Callable:
        """Apply the chaos hook to a stage's worker task, if one is set."""
        if self.fault_injector is None:
            return fn
        return self.fault_injector(fn)

    # -- checkpointing --------------------------------------------------
    def checkpoints(self, scope: str | None = None) -> CheckpointManager | None:
        """A checkpoint manager under ``checkpoint_dir`` (or ``None``).

        ``scope`` selects a subdirectory — stages use their own names so
        artifacts from different stages never collide.
        """
        if self.checkpoint_dir is None:
            return None
        directory = (
            self.checkpoint_dir if scope is None else self.checkpoint_dir / scope
        )
        return CheckpointManager(directory)

    def fingerprinted(
        self,
        fingerprint: dict[str, Any],
        *,
        scope: str | None = None,
        what: str = "checkpoint",
        described: str = "configuration",
    ) -> FingerprintedCheckpoints | None:
        """Fingerprint-verified checkpoint slots, or ``None`` when disabled."""
        manager = self.checkpoints(scope)
        if manager is None:
            return None
        return FingerprintedCheckpoints(
            manager, fingerprint, what=what, described=described
        )

    def scoped(self, name: str) -> "ExecutionContext":
        """A copy whose ``checkpoint_dir`` is the ``name`` subdirectory.

        Stages call ``ctx.scoped(stage.name)`` so each stage owns a
        directory namespace; with checkpointing disabled this is a
        no-op copy.
        """
        if self.checkpoint_dir is None:
            return self
        return replace(self, checkpoint_dir=self.checkpoint_dir / name)

    def with_supervisor(
        self, supervisor: SupervisorConfig | None
    ) -> "ExecutionContext":
        """A copy with ``supervisor`` filled in (legacy-config merging)."""
        if supervisor is None or self.supervisor is not None:
            return self
        return replace(self, supervisor=supervisor)

    # -- seed tree ------------------------------------------------------
    def spawn_seeds(self, count: int) -> list[np.random.SeedSequence]:
        """``count`` independent child streams of the context seed."""
        return spawn_seeds(self.seed, count)

    def seed_sequence(self, *key: int | str) -> np.random.SeedSequence:
        """An addressable child stream named by ``key``.

        String components are hashed stably (so
        ``ctx.seed_sequence("detect")`` names the same stream in every
        process); integer components pass through. Unlike
        :meth:`spawn_seeds` the result does not depend on call order.
        """
        entropy = np.random.SeedSequence(self.seed).entropy
        numeric = tuple(
            k if isinstance(k, int) else _stable_key(k) for k in key
        )
        return worker_seed_sequence(entropy, *numeric)


def _stable_key(name: str) -> int:
    """A deterministic 32-bit key for a string (no PYTHONHASHSEED wobble)."""
    import zlib

    return zlib.crc32(name.encode())


def context_from_legacy(
    context: "ExecutionContext | None",
    *,
    stacklevel: int = 3,
    **legacy: Any,
) -> "ExecutionContext":
    """Build the effective context for a public compatibility shim.

    ``legacy`` maps :class:`ExecutionContext` field names to the values
    of the old per-function keyword arguments, with :data:`UNSET`
    marking "not passed". Passing both ``context`` and any legacy
    keyword is an error (the settings would conflict); passing legacy
    *runtime-threading* keywords (``checkpoint_dir``/``resume``/
    ``supervisor``) without a context emits the migration
    ``DeprecationWarning``. ``workers=`` stays warning-free — it is
    documented shorthand for ``ExecutionContext(workers=...)``.
    """
    supplied = {k: v for k, v in legacy.items() if v is not UNSET}
    if context is not None:
        if supplied:
            raise TypeError(
                "pass runtime settings either via context= or as legacy "
                f"keyword arguments, not both: {sorted(supplied)} conflict "
                "with the explicit ExecutionContext"
            )
        return context
    deprecated = sorted(set(supplied) & set(_DEPRECATED_RUNTIME_KWARGS))
    if deprecated:
        warnings.warn(
            f"passing {', '.join(deprecated)} as individual keyword "
            "arguments is deprecated; build a "
            "repro.pipeline.ExecutionContext and pass it as context= "
            "(see docs/architecture.md for the migration note)",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    return ExecutionContext(**supplied)
