"""The Pipeline runner: chain stages under one ExecutionContext.

``Pipeline([WalkStage(...), TrainStage(...)])`` is the executable form
of the paper's flow diagram — each stage's output feeds the next stage's
input, while the runner supplies the cross-cutting runtime behaviour
every stage used to reimplement:

* a tracing span per stage (``pipeline.stage`` with the stage name), so
  any run's timeline decomposes by stage in the event stream;
* per-stage durable caching: a stage that opts in (``cache_output``)
  has its output checkpointed under ``<checkpoint_dir>/stages/`` and is
  *skipped* on resume when a cached output with a matching fingerprint
  exists. Heavy stages (walks, train) instead resume incrementally
  inside their engines — mid-stage, not just at stage boundaries;
* typed error transparency: exceptions raised by a stage propagate
  unchanged (annotated with the stage name via ``add_note``), so
  callers keep catching the engines' own error types;
* run lifecycle control: the context's cancellation token / deadline
  become the ambient :class:`~repro.resilience.lifecycle.CancelScope`
  for the whole chain, a cooperative cancel check runs between stages,
  and a :class:`~repro.resilience.lifecycle.RunInterrupted` escaping a
  stage is recorded as a ``pipeline.interrupted`` event before it
  propagates (the engines have already written their final
  checkpoints by then — interruption is durable, not lossy).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.profiler import SamplingProfiler
from repro.obs.recorder import current_recorder
from repro.obs.resources import ResourceSnapshot, resource_delta
from repro.pipeline.context import ExecutionContext
from repro.pipeline.stage import Stage, StageError
from repro.resilience.guard import PressureWatchdog, preflight
from repro.resilience.lifecycle import RunInterrupted, current_cancel_scope

__all__ = ["Pipeline", "PipelineResult", "StageReport"]

#: Subdirectory of the context's checkpoint_dir holding cached stage
#: outputs. Separate from the stages' own incremental artifacts
#: (``walks/``, ``trainer.ckpt.npz``) so the two never collide.
STAGE_CACHE_SCOPE = "stages"


@dataclass(frozen=True)
class StageReport:
    """What one stage did during :meth:`Pipeline.execute`."""

    name: str
    seconds: float
    #: True when the stage never ran because a fingerprint-matched cached
    #: output was restored (pipeline-level resume).
    skipped: bool = False
    #: Per-stage resource deltas (:func:`repro.obs.resources.resource_delta`)
    #: when a recorder was active; None on the disabled path.
    resources: dict | None = None


@dataclass(frozen=True)
class PipelineResult:
    """Final value plus every intermediate output and per-stage report."""

    value: Any
    outputs: dict[str, Any] = field(default_factory=dict)
    reports: list[StageReport] = field(default_factory=list)

    def report_for(self, name: str) -> StageReport:
        for report in self.reports:
            if report.name == name:
                return report
        raise KeyError(name)

    def seconds_for(self, *names: str) -> float:
        """Total wall-clock of the named stages (CLI timing summaries)."""
        return sum(self.report_for(n).seconds for n in names)


class Pipeline:
    """An ordered chain of :class:`~repro.pipeline.stage.Stage` objects."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        stages = list(stages)
        if not stages:
            raise StageError("a Pipeline needs at least one stage")
        seen: set[str] = set()
        for stage in stages:
            name = getattr(stage, "name", None)
            if not name or not isinstance(name, str):
                raise StageError(f"stage {stage!r} has no usable name")
            if name in seen:
                raise StageError(f"duplicate stage name {name!r} in pipeline")
            seen.add(name)
        self.stages = stages

    @property
    def names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def extended(self, *stages: Stage) -> "Pipeline":
        """A new pipeline with ``stages`` appended (composition helper)."""
        return Pipeline([*self.stages, *stages])

    # ------------------------------------------------------------------
    def execute(
        self, value: Any = None, context: ExecutionContext | None = None
    ) -> PipelineResult:
        """Run every stage in order, feeding each the previous output.

        With an armed :class:`~repro.resilience.guard.ResourceBudget` on
        the context, a preflight footprint check runs first (raising
        :class:`~repro.resilience.guard.BudgetExceeded`, or degrading
        workers under ``auto_degrade``) and a
        :class:`~repro.resilience.guard.PressureWatchdog` samples
        RSS/shm/disk for the duration, driving the degradation ladder on
        breach — whose last rung cancels the run through the same
        cooperative machinery as a SIGTERM.
        """
        ctx = context or ExecutionContext()
        ctx = preflight(ctx, self.stages, value)
        rec = current_recorder()
        outputs: dict[str, Any] = {}
        reports: list[StageReport] = []
        with ctx.lifecycle(), self._guarded(ctx):
            scope = current_cancel_scope()
            for stage in self.stages:
                # Between-stage boundary: never start a stage the run no
                # longer wants. In-stage checks are the engines' job.
                scope.check()
                started = time.perf_counter()
                before, profiler = self._stage_obs_begin(rec, stage.name)
                with rec.span("pipeline.stage", stage=stage.name) as span:
                    try:
                        value, skipped = self._run_stage(stage, ctx, value)
                    except RunInterrupted as exc:
                        rec.inc("pipeline.interrupted")
                        rec.event(
                            "pipeline.interrupted",
                            level="warning",
                            stage=stage.name,
                            reason=exc.reason,
                        )
                        raise
                    finally:
                        if profiler is not None:
                            rec.add_profile(
                                f"stage.{stage.name}", profiler.stop()
                            )
                    if rec.enabled:
                        span.annotate(skipped=skipped)
                outputs[stage.name] = value
                report = StageReport(
                    name=stage.name,
                    seconds=time.perf_counter() - started,
                    skipped=skipped,
                    resources=(
                        resource_delta(before, ResourceSnapshot.capture())
                        if before is not None
                        else None
                    ),
                )
                reports.append(report)
                if before is not None:
                    rec.add_stage_report(
                        {
                            "stage": report.name,
                            "seconds": report.seconds,
                            "skipped": report.skipped,
                            "resources": report.resources,
                        }
                    )
        if rec.live is not None:
            rec.live.update(stage=None)
        return PipelineResult(value=value, outputs=outputs, reports=reports)

    @contextlib.contextmanager
    def _guarded(self, ctx: ExecutionContext):
        """Run the block under a pressure watchdog when a budget is armed.

        Entered inside ``ctx.lifecycle()`` so the ladder's cancel rung
        can reach the run's ambient cancellation token; without a token
        (pure library call, no CLI lifecycle) the ladder still applies
        every non-terminal mitigation. The ladder is reset on entry —
        degradation is per-run state, not process history.
        """
        budget = ctx.budget
        if budget is None or not budget.armed:
            yield
            return
        token = current_cancel_scope().token
        cancel = (
            (lambda: token.cancel("resource_pressure", detail="guard ladder"))
            if token is not None
            else None
        )
        watchdog = PressureWatchdog(
            budget, checkpoint_dir=ctx.checkpoint_dir, cancel=cancel
        )
        with watchdog:
            yield

    def _stage_obs_begin(self, rec, name: str):
        """Arm per-stage observability; (None, None) on the disabled path.

        Returns the before-:class:`ResourceSnapshot` and, when the run is
        profiled, a started :class:`SamplingProfiler` whose collapsed
        stacks land in the recorder under ``stage.<name>``.
        """
        if not rec.enabled:
            return None, None
        if rec.live is not None:
            rec.live.update(stage=name, stages=self.names)
        profiler = None
        if rec.profile_hz is not None:
            profiler = SamplingProfiler(rec.profile_hz, all_threads=True)
            profiler.start()
        return ResourceSnapshot.capture(), profiler

    def run(
        self, value: Any = None, context: ExecutionContext | None = None
    ) -> Any:
        """:meth:`execute`, returning only the final stage's output."""
        return self.execute(value, context).value

    # ------------------------------------------------------------------
    def _run_stage(
        self, stage: Stage, ctx: ExecutionContext, value: Any
    ) -> tuple[Any, bool]:
        cache = self._stage_cache(stage, ctx, value)
        if cache is not None and ctx.resume:
            cached = cache.load(stage.name)
            if cached is not None:
                return stage.restore(dict(cached.arrays)), True
        try:
            output = stage.run(ctx, value)
        except Exception as exc:
            # Typed errors must reach the caller unchanged; the note only
            # adds where in the pipeline they happened.
            if hasattr(exc, "add_note"):  # pragma: no branch - 3.11+
                exc.add_note(f"raised by pipeline stage {stage.name!r}")
            raise
        if cache is not None:
            cache.save(stage.name, stage.dump(output))
        return output, False

    def _stage_cache(self, stage: Stage, ctx: ExecutionContext, value: Any):
        """The stage's fingerprinted output cache, or None when inapplicable."""
        if not getattr(stage, "cache_output", False):
            return None
        fingerprint = stage.fingerprint(ctx, value)
        if fingerprint is None:
            return None
        return ctx.fingerprinted(
            fingerprint,
            scope=STAGE_CACHE_SCOPE,
            what="stage checkpoint",
            described="configuration",
        )
