"""Staged pipeline runtime: Stage / Pipeline / ExecutionContext.

The composable execution layer the ROADMAP's production north star needs:
the walks → train → tasks flow is a :class:`Pipeline` of
:class:`~repro.pipeline.stage.Stage` objects, and every runtime concern
(checkpoint/resume, workers, supervision, chaos, telemetry, seeds)
travels in one :class:`~repro.pipeline.context.ExecutionContext` instead
of per-function keyword arguments. See docs/architecture.md.
"""

from repro.pipeline.checkpointing import (
    FingerprintedCheckpoints,
    FingerprintMismatch,
)
from repro.pipeline.context import ExecutionContext
from repro.pipeline.runner import Pipeline, PipelineResult, StageReport
from repro.pipeline.stage import PipelineStage, Stage, StageError
from repro.pipeline.stages import (
    DetectStage,
    LayoutStage,
    PredictStage,
    TrainStage,
    WalkStage,
)

__all__ = [
    "ExecutionContext",
    "FingerprintMismatch",
    "FingerprintedCheckpoints",
    "Pipeline",
    "PipelineResult",
    "PipelineStage",
    "Stage",
    "StageError",
    "StageReport",
    "DetectStage",
    "LayoutStage",
    "PredictStage",
    "TrainStage",
    "WalkStage",
]
