"""The Stage contract: one pipeline step, runtime-agnostic.

A stage is a named unit of work with three obligations:

* ``name`` — a stable identifier used for checkpoint scoping, span
  labels, and progress reports;
* ``fingerprint(ctx, value)`` — an optional JSON-able identity of the
  work about to run, letting the :class:`~repro.pipeline.runner.Pipeline`
  skip a stage on resume when a cached output with the same fingerprint
  exists (return ``None`` to opt out of output caching);
* ``run(ctx, value)`` — the work itself, taking the previous stage's
  output and the shared :class:`~repro.pipeline.context.ExecutionContext`.

Stages never receive ``checkpoint_dir``/``resume``/``workers``/
``supervisor`` as individual arguments — those live on the context,
exactly once.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.pipeline.context import ExecutionContext

__all__ = ["Stage", "PipelineStage", "StageError"]


class StageError(RuntimeError):
    """A pipeline wiring problem (duplicate names, bad cache contract).

    Distinct from errors *inside* a stage's work — those propagate
    unchanged so callers keep seeing the engines' typed exceptions
    (``FingerprintMismatch``, ``CheckpointCorrupt``, ...).
    """


@runtime_checkable
class Stage(Protocol):
    """Structural type for pipeline steps — any object with this shape runs."""

    name: str

    def fingerprint(
        self, ctx: ExecutionContext, value: Any
    ) -> dict[str, Any] | None: ...

    def run(self, ctx: ExecutionContext, value: Any) -> Any: ...


class PipelineStage:
    """Convenience base class implementing the :class:`Stage` protocol.

    Subclasses set ``name``, implement :meth:`run`, and may opt into
    pipeline-level output caching by setting ``cache_output = True`` and
    returning a fingerprint. Cached outputs are stored as single-array
    checkpoints, so caching stages must return something
    :meth:`dump`/:meth:`restore` can round-trip (a numpy array or scalar
    by default; override both for richer payloads).
    """

    name: str = "stage"

    #: When True (and :meth:`fingerprint` returns a dict), the Pipeline
    #: checkpoints this stage's output and skips re-running it on resume.
    #: Heavy stages that manage their own incremental checkpoints (walks,
    #: train) leave this False and get resume from their engines instead.
    cache_output: bool = False

    def fingerprint(
        self, ctx: ExecutionContext, value: Any
    ) -> dict[str, Any] | None:
        return None

    def run(self, ctx: ExecutionContext, value: Any) -> Any:
        raise NotImplementedError

    # -- output caching hooks ------------------------------------------
    def dump(self, output: Any) -> dict[str, np.ndarray]:
        """Encode ``output`` as named arrays for the stage cache."""
        return {"output": np.asarray(output)}

    def restore(self, arrays: dict[str, np.ndarray]) -> Any:
        """Inverse of :meth:`dump`."""
        return arrays["output"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
