"""Concrete stages for the V2V flow: walks → train → downstream tasks.

``WalkStage`` and ``TrainStage`` wrap the two heavy engines; they do
*not* opt into pipeline-level output caching because their engines
already resume incrementally (chunk-wise for walks, epoch-wise for
training) — a mid-stage kill loses at most one wave/epoch, which is
strictly better than stage-boundary granularity. The same engines also
poll the ambient cancel scope the runner activates, so a SIGTERM or
deadline expiry during either heavy stage raises
:class:`~repro.resilience.lifecycle.RunInterrupted` at the next
checkpointable unit with a final snapshot already on disk.

``DetectStage``/``PredictStage``/``LayoutStage`` are the paper's three
applications as thin, cacheable stages: each is cheap to recompute but
opts into output caching (``cache_output``) so a resumed run skips them
when inputs and settings are unchanged — and so future downstream stages
can be registered the same way without touching the runner.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.core import Graph
from repro.obs.recorder import current_recorder
from repro.pipeline.context import ExecutionContext
from repro.pipeline.stage import PipelineStage
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, generate_walks

__all__ = [
    "WalkStage",
    "TrainStage",
    "DetectStage",
    "PredictStage",
    "LayoutStage",
]

#: Subdirectory of the run's checkpoint root where the walk engine keeps
#: its chunk checkpoints — the layout ``V2V.fit`` has always used
#: (``<dir>/walks/walks-0000.ckpt.npz`` ...).
WALKS_SCOPE = "walks"


def _digest(arr: np.ndarray) -> str:
    """Content hash of an array, for fingerprinting stage inputs."""
    data = np.ascontiguousarray(arr)
    return hashlib.sha256(data.tobytes()).hexdigest()


def _vectors_of(value: Any) -> np.ndarray:
    """Accept an EmbeddingResult, a fitted V2V, or a bare matrix."""
    return np.asarray(getattr(value, "vectors", value))


class WalkStage(PipelineStage):
    """Generate the walk corpus (paper Section II-A) from a graph view.

    The input is any :class:`repro.graph.view.GraphView` backend: an
    in-memory :class:`Graph` runs the lock-step engine; a memory-mapped
    :class:`repro.graph.store.GraphStore` dispatches to the
    shard-parallel engine (:mod:`repro.walks.sharded`), whose
    concurrency is capped by ``ExecutionContext.shards``. Checkpointed
    chunks (``checkpoint_chunks``) apply to the in-memory path only —
    shard rounds are idempotent and recompute instead.
    """

    name = "walks"

    def __init__(
        self,
        config: RandomWalkConfig | None = None,
        *,
        keep_shared: bool = False,
        checkpoint_chunks: int | None = None,
    ) -> None:
        self.config = config or RandomWalkConfig()
        self.keep_shared = keep_shared
        self.checkpoint_chunks = checkpoint_chunks

    def run(self, ctx: ExecutionContext, graph: Graph) -> WalkCorpus:
        return generate_walks(
            graph,
            self.config,
            context=ctx.scoped(WALKS_SCOPE),
            keep_shared=self.keep_shared,
            checkpoint_chunks=self.checkpoint_chunks,
        )


class TrainStage(PipelineStage):
    """Train embeddings (paper Section II-B) on a walk corpus."""

    name = "train"

    def __init__(
        self,
        config: TrainConfig | None = None,
        *,
        init_vectors: np.ndarray | None = None,
        checkpoint_every: int = 1,
        epoch_callback=None,
    ) -> None:
        self.config = config or TrainConfig()
        self.init_vectors = init_vectors
        self.checkpoint_every = checkpoint_every
        self.epoch_callback = epoch_callback

    def run(self, ctx: ExecutionContext, corpus: WalkCorpus):
        # Unscoped on purpose: the trainer snapshot lives directly at
        # <checkpoint_dir>/trainer.ckpt.npz, the layout V2V.fit pins.
        return train_embeddings(
            corpus,
            self.config,
            context=ctx,
            init_vectors=self.init_vectors,
            checkpoint_every=self.checkpoint_every,
            epoch_callback=self.epoch_callback,
        )


class DetectStage(PipelineStage):
    """K-means community detection over the embedding (Section III)."""

    name = "detect"
    cache_output = True

    def __init__(self, k: int, *, n_init: int = 100, seed: int | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.n_init = n_init
        self.seed = seed

    def fingerprint(self, ctx: ExecutionContext, value: Any):
        vectors = _vectors_of(value)
        return {
            "stage": self.name,
            "k": self.k,
            "n_init": self.n_init,
            "seed": self.seed,
            "vectors": _digest(vectors),
        }

    def run(self, ctx: ExecutionContext, value: Any) -> np.ndarray:
        from repro.ml.kmeans import KMeans

        vectors = _vectors_of(value)
        rec = current_recorder()
        with rec.span("detect.cluster", k=self.k, n_init=self.n_init):
            km = KMeans(self.k, n_init=self.n_init, seed=self.seed)
            result = km.fit(vectors)
        membership = result.labels.astype(np.int64)
        if rec.enabled:
            rec.set("detect.inertia", float(result.inertia))
            rec.event(
                "detect.done",
                num_communities=int(membership.max()) + 1 if membership.size else 0,
                inertia=round(float(result.inertia), 6),
            )
        return membership


class PredictStage(PipelineStage):
    """Cross-validated k-NN label prediction (Section IV); returns accuracy."""

    name = "predict"
    cache_output = True

    def __init__(
        self,
        labels: np.ndarray,
        *,
        k: int = 3,
        folds: int = 10,
        repeats: int = 1,
        seed: int | None = None,
    ) -> None:
        self.labels = np.asarray(labels)
        self.k = k
        self.folds = folds
        self.repeats = repeats
        self.seed = seed

    def fingerprint(self, ctx: ExecutionContext, value: Any):
        vectors = _vectors_of(value)
        return {
            "stage": self.name,
            "k": self.k,
            "folds": self.folds,
            "repeats": self.repeats,
            "seed": self.seed,
            "labels": _digest(self.labels),
            "vectors": _digest(vectors),
        }

    def run(self, ctx: ExecutionContext, value: Any) -> float:
        from repro.ml.cross_validation import cross_validate_knn

        vectors = _vectors_of(value)
        if self.labels.shape[0] != vectors.shape[0]:
            raise ValueError(
                f"label count {self.labels.shape[0]} does not match "
                f"vector count {vectors.shape[0]}"
            )
        return float(
            cross_validate_knn(
                vectors,
                self.labels,
                k=self.k,
                n_splits=self.folds,
                repeats=self.repeats,
                seed=self.seed,
            )
        )

    def restore(self, arrays: dict[str, np.ndarray]) -> float:
        return float(arrays["output"])


class LayoutStage(PipelineStage):
    """ForceAtlas positions for visualization (Section V); graph in."""

    name = "layout"
    cache_output = True

    def __init__(self, *, iterations: int = 200, seed: int | None = None):
        self.iterations = iterations
        self.seed = seed

    def fingerprint(self, ctx: ExecutionContext, graph: Graph):
        return {
            "stage": self.name,
            "iterations": self.iterations,
            "seed": self.seed,
            "n": int(graph.n),
            "num_edges": int(graph.num_edges),
            "directed": bool(graph.directed),
            "edges": _digest(graph.indptr) + _digest(graph.indices),
        }

    def run(self, ctx: ExecutionContext, graph: Graph) -> np.ndarray:
        from repro.viz.forceatlas import force_atlas_layout

        layout = force_atlas_layout(
            graph, iterations=self.iterations, seed=self.seed
        )
        return np.asarray(layout.positions)
