"""repro — full reproduction of *V2V: Vector Embedding of a Graph and
Applications* (Nguyen & Tirthapura, IPDPSW 2018).

Public API highlights::

    from repro import V2V, V2VConfig, Graph
    from repro import ExecutionContext, Pipeline
    from repro.graph import planted_partition
    from repro.community import V2VCommunityDetector, cnm_communities
    from repro.ml import KMeans, KNNClassifier, PCA

See README.md for the architecture overview, docs/architecture.md for
the staged pipeline runtime, and DESIGN.md for the experiment index.
"""

from repro.core.model import V2V, V2VConfig
from repro.core.trainer import EmbeddingResult, TrainConfig, train_embeddings
from repro.graph.core import EdgeList, Graph
from repro.pipeline import (
    DetectStage,
    ExecutionContext,
    LayoutStage,
    Pipeline,
    PipelineResult,
    PredictStage,
    TrainStage,
    WalkStage,
)
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, WalkMode, generate_walks

__version__ = "1.0.0"

__all__ = [
    "V2V",
    "V2VConfig",
    "Graph",
    "EdgeList",
    "WalkCorpus",
    "WalkMode",
    "RandomWalkConfig",
    "generate_walks",
    "TrainConfig",
    "EmbeddingResult",
    "train_embeddings",
    "ExecutionContext",
    "Pipeline",
    "PipelineResult",
    "WalkStage",
    "TrainStage",
    "DetectStage",
    "PredictStage",
    "LayoutStage",
    "__version__",
]
