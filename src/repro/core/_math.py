"""Numerics shared by the embedding objectives."""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = [
    "sigmoid",
    "log_sigmoid",
    "masked_context_mean",
    "scatter_add_rows",
    "MAX_EXP",
]

# word2vec clips scores to [-6, 6]; we use a slightly wider, still-safe clip.
MAX_EXP = 12.0


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically clipped logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -MAX_EXP, MAX_EXP)))


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """log(sigmoid(x)) computed stably via softplus."""
    x = np.clip(x, -MAX_EXP, MAX_EXP)
    return -np.log1p(np.exp(-x))


# Reused across calls: the CSR selector's data/col buffers depend only on
# the batch size, and the scatter runs hundreds of times per epoch with a
# fixed batch shape — rebuilding them per call showed up in profiles.
_ones_cache = np.empty(0)
_arange_cache = np.empty(0, dtype=np.int64)


def scatter_add_rows(target: np.ndarray, idx: np.ndarray, rows: np.ndarray) -> None:
    """``target[idx] += rows`` with duplicate indices accumulated.

    Equivalent to ``np.add.at(target, idx, rows)`` but expressed as a
    sparse-matrix product: a (V × N) one-hot selector times the (N × d)
    row block. Profiling (see DESIGN.md §6) puts this ~6× ahead of
    ``ufunc.at`` and ~8× ahead of sort+``reduceat`` on minibatch-SGD
    index patterns — the scatter is the training hot spot.

    Two micro-optimizations on top of the CSR formulation (measured in
    ``benchmarks/test_micro_kernels.py``): the per-batch ``ones``/
    ``arange`` buffers are cached between calls, and a duplicate-free
    index batch (checked with one ``bincount``) skips CSR construction
    entirely — plain fancy-index add is exact when no index repeats.
    """
    global _ones_cache, _arange_cache
    n = idx.shape[0]
    if n == 0:
        return
    if int(np.bincount(idx).max()) <= 1:
        target[idx] += rows
        return
    if _ones_cache.shape[0] < n:
        _ones_cache = np.ones(n)
        _arange_cache = np.arange(n, dtype=np.int64)
    selector = sparse.csr_matrix(
        (_ones_cache[:n], (idx, _arange_cache[:n])), shape=(target.shape[0], n)
    )
    target += selector @ rows


def masked_context_mean(
    w_in: np.ndarray, contexts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mean input vector over the real (non ``-1``) context slots.

    Returns ``(h, mask, counts)`` where ``h`` is (B × d), ``mask`` is the
    boolean validity matrix (B × C) and ``counts`` the per-row number of
    real contexts (always >= 1 for rows produced by the corpus).
    """
    mask = contexts >= 0
    counts = mask.sum(axis=1)
    if np.any(counts == 0):
        raise ValueError("every example must have at least one context token")
    safe = np.where(mask, contexts, 0)
    vecs = w_in[safe]  # (B, C, d)
    vecs = vecs * mask[:, :, None]
    h = vecs.sum(axis=1) / counts[:, None]
    return h, mask, counts
