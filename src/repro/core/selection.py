"""Principled hyper-parameter selection for V2V.

The paper's conclusion (§VII) lists as open work "a principled manner of
selecting the various parameters for representation learning — these
should be chosen keeping in mind the time complexity of learning as well
as their accuracy." This module implements two such procedures:

- :func:`select_dimension` — train candidate dimensions on one shared
  corpus and score each embedding with an *unsupervised* criterion
  (silhouette of a k-means clustering, or seed-stability), optionally
  trading quality against training time.
- :func:`select_walk_budget` — grow the walk budget geometrically until
  the embedding's neighborhood structure stabilizes between consecutive
  budgets, returning the smallest sufficient budget.

Both procedures need no ground-truth labels, matching the unsupervised
setting of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import V2V, V2VConfig
from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.core import Graph
from repro.ml.kmeans import KMeans
from repro.ml.metrics import silhouette_score
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, generate_walks

__all__ = [
    "DimensionScore",
    "select_dimension",
    "BudgetStep",
    "select_walk_budget",
    "neighborhood_overlap",
]


@dataclass(frozen=True)
class DimensionScore:
    """Quality/cost record for one candidate dimension."""

    dim: int
    score: float
    train_seconds: float
    epochs_run: int


def _silhouette_criterion(vectors: np.ndarray, k: int, seed: int | None) -> float:
    labels = KMeans(k, n_init=10, seed=seed).fit_predict(vectors)
    if np.unique(labels).shape[0] < 2:
        return -1.0
    return silhouette_score(vectors, labels)


def _stability_criterion(
    corpus: WalkCorpus, config: TrainConfig, seed: int | None
) -> float:
    """Mean neighborhood overlap between two training seeds.

    A dimension whose embedding geometry is an artifact of the random
    init scores low; a dimension that captures real structure reproduces
    the same nearest-neighbor sets from any seed.
    """
    seeds = np.random.SeedSequence(seed).spawn(2)
    runs = []
    for child in seeds:
        cfg = TrainConfig(
            **{**config.__dict__, "seed": int(child.generate_state(1)[0])}
        )
        runs.append(train_embeddings(corpus, cfg).vectors)
    return neighborhood_overlap(runs[0], runs[1], k=10)


def neighborhood_overlap(a: np.ndarray, b: np.ndarray, *, k: int = 10) -> float:
    """Mean Jaccard overlap of each vertex's k-NN sets in two embeddings.

    1.0 means the two embeddings agree exactly on local geometry; a pair
    of random embeddings scores ≈ k / n.
    """
    if a.shape[0] != b.shape[0]:
        raise ValueError("embeddings must cover the same vertices")
    n = a.shape[0]
    if n <= k:
        raise ValueError("need more vertices than k")

    def knn_sets(x: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(x, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        xn = x / norms
        sims = xn @ xn.T
        np.fill_diagonal(sims, -np.inf)
        return np.argpartition(-sims, k - 1, axis=1)[:, :k]

    na, nb = knn_sets(a), knn_sets(b)
    overlaps = np.empty(n)
    for i in range(n):
        sa, sb = set(na[i].tolist()), set(nb[i].tolist())
        overlaps[i] = len(sa & sb) / len(sa | sb)
    return float(overlaps.mean())


def select_dimension(
    graph_or_corpus: Graph | WalkCorpus,
    dims: tuple[int, ...] = (10, 20, 50, 100, 200),
    *,
    k: int = 10,
    criterion: str = "silhouette",
    time_penalty: float = 0.0,
    config: V2VConfig | None = None,
    seed: int | None = 0,
) -> tuple[int, list[DimensionScore]]:
    """Pick an embedding dimension without labels.

    Parameters
    ----------
    graph_or_corpus:
        A graph (walks are generated once and shared) or a pre-built
        corpus.
    dims:
        Candidate dimensions.
    k:
        Cluster count used by the silhouette criterion.
    criterion:
        ``"silhouette"`` (cluster quality) or ``"stability"``
        (seed-to-seed neighborhood agreement).
    time_penalty:
        Subtracts ``time_penalty * train_seconds`` from each score —
        the paper's "keeping in mind the time complexity" knob. 0 means
        pure quality.
    config:
        Base V2V config (its ``dim`` is overridden per candidate).

    Returns
    -------
    ``(best_dim, scores)`` with per-candidate records.
    """
    if criterion not in ("silhouette", "stability"):
        raise ValueError("criterion must be 'silhouette' or 'stability'")
    if not dims:
        raise ValueError("dims must be non-empty")
    if time_penalty < 0:
        raise ValueError("time_penalty must be non-negative")
    base = config or V2VConfig(seed=seed)
    if isinstance(graph_or_corpus, WalkCorpus):
        corpus = graph_or_corpus
    else:
        corpus = generate_walks(graph_or_corpus, base.walk_config())

    scores: list[DimensionScore] = []
    for dim in dims:
        cfg = base.with_dim(dim)
        model = V2V(cfg).fit_corpus(corpus)
        if criterion == "silhouette":
            raw = _silhouette_criterion(model.vectors, k, seed)
        else:
            raw = _stability_criterion(corpus, cfg.train_config(), seed)
        scores.append(
            DimensionScore(
                dim=dim,
                score=raw - time_penalty * model.result.train_seconds,
                train_seconds=model.result.train_seconds,
                epochs_run=model.result.epochs_run,
            )
        )
    best = max(scores, key=lambda s: (s.score, -s.dim))
    return best.dim, scores


@dataclass(frozen=True)
class BudgetStep:
    """One step of the walk-budget search."""

    walks_per_vertex: int
    tokens: int
    overlap_with_previous: float


def select_walk_budget(
    graph: Graph,
    *,
    walk_length: int = 40,
    start: int = 1,
    max_walks_per_vertex: int = 64,
    stability_threshold: float = 0.6,
    dim: int = 32,
    seed: int | None = 0,
) -> tuple[int, list[BudgetStep]]:
    """Find the smallest walk budget whose embedding is stable.

    Doubles ``walks_per_vertex`` from ``start``; at each step trains an
    embedding and measures :func:`neighborhood_overlap` against the
    previous step's embedding. Stops when the overlap exceeds
    ``stability_threshold`` — more walks would no longer change the
    geometry materially.
    """
    if start < 1 or max_walks_per_vertex < start:
        raise ValueError("need 1 <= start <= max_walks_per_vertex")
    if not 0 < stability_threshold <= 1:
        raise ValueError("stability_threshold must be in (0, 1]")
    steps: list[BudgetStep] = []
    prev_vectors: np.ndarray | None = None
    t = start
    chosen = max_walks_per_vertex
    while t <= max_walks_per_vertex:
        corpus = generate_walks(
            graph,
            RandomWalkConfig(
                walks_per_vertex=t, walk_length=walk_length, seed=seed
            ),
        )
        cfg = V2VConfig(dim=dim, seed=seed)
        vectors = V2V(cfg).fit_corpus(corpus).vectors
        overlap = (
            float("nan")
            if prev_vectors is None
            else neighborhood_overlap(prev_vectors, vectors, k=10)
        )
        steps.append(
            BudgetStep(
                walks_per_vertex=t,
                tokens=corpus.num_tokens,
                overlap_with_previous=overlap,
            )
        )
        if prev_vectors is not None and overlap >= stability_threshold:
            chosen = t
            break
        prev_vectors = vectors
        t *= 2
    return chosen, steps
