"""CBOW objectives: negative sampling and hierarchical softmax.

The paper trains V2V with the Continuous Bag-of-Words model (Section
II-B): the mean of the context vertex vectors predicts the center vertex.
Both output layers are provided:

- :class:`CBOWNegativeSampling` — the word2vec default: the center vertex
  is scored against itself plus K noise vertices with logistic loss.
- :class:`CBOWHierarchicalSoftmax` — Huffman-tree output layer with
  O(log V) decisions per example.

Each objective owns its parameter matrices and exposes ``batch_step``,
a single vectorized SGD update over a minibatch of (center, contexts)
examples (contexts padded with ``-1``). Gradient scatter-adds use
``np.add.at`` so repeated ids within a batch accumulate correctly.
"""

from __future__ import annotations

import numpy as np

from repro.core._math import (
    log_sigmoid,
    masked_context_mean,
    scatter_add_rows,
    sigmoid,
)
from repro.core.huffman import HuffmanCoding
from repro.core.negative import NegativeSampler

__all__ = ["CBOWNegativeSampling", "CBOWHierarchicalSoftmax"]


def _init_matrix(rows: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """word2vec-style input init: uniform in [-0.5/dim, 0.5/dim)."""
    return (rng.random((rows, dim)) - 0.5) / dim


class CBOWNegativeSampling:
    """CBOW with a sampled logistic output layer.

    Parameters
    ----------
    vocab_size, dim:
        Embedding matrix shape.
    sampler:
        Noise distribution over output ids.
    negatives:
        Number of noise samples per example (word2vec's ``negative``).
    rng:
        Used only for parameter initialization.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        sampler: NegativeSampler,
        *,
        negatives: int = 5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if vocab_size < 1 or dim < 1:
            raise ValueError("vocab_size and dim must be positive")
        if negatives < 1:
            raise ValueError("negatives must be >= 1")
        if sampler.vocab_size != vocab_size:
            raise ValueError("sampler vocabulary does not match vocab_size")
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.dim = dim
        self.negatives = negatives
        self.sampler = sampler
        self.w_in = _init_matrix(vocab_size, dim, rng)
        self.w_out = np.zeros((vocab_size, dim))

    @property
    def vectors(self) -> np.ndarray:
        """The learned input embeddings (the V2V vectors)."""
        return self.w_in

    def batch_step(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> float:
        """One SGD step over a minibatch; returns the mean example loss."""
        h, mask, counts = masked_context_mean(self.w_in, contexts)
        batch = centers.shape[0]
        negs = self.sampler.sample(
            (batch, self.negatives), rng, avoid=centers[:, None]
        )
        targets = np.concatenate([centers[:, None], negs], axis=1)  # (B, 1+K)
        labels = np.zeros((batch, 1 + self.negatives))
        labels[:, 0] = 1.0

        out_vecs = self.w_out[targets]  # (B, 1+K, d)
        scores = np.einsum("bd,bkd->bk", h, out_vecs)
        preds = sigmoid(scores)
        # loss = -log σ(s⁺) - Σ log σ(-s⁻)
        loss = -(log_sigmoid(scores[:, 0]).sum() + log_sigmoid(-scores[:, 1:]).sum())

        g = (labels - preds) * lr  # (B, 1+K)
        grad_h = np.einsum("bk,bkd->bd", g, out_vecs)  # before w_out update
        scatter_add_rows(
            self.w_out,
            targets.ravel(),
            (g[:, :, None] * h[:, None, :]).reshape(-1, self.dim),
        )

        # Each context token receives grad_h / (#contexts in its example).
        per_ctx = grad_h / counts[:, None]  # (B, d)
        example_of, _slot = np.nonzero(mask)
        scatter_add_rows(self.w_in, contexts[mask], per_ctx[example_of])
        return float(loss / batch)


class CBOWHierarchicalSoftmax:
    """CBOW with a Huffman-tree output layer (hierarchical softmax)."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        coding: HuffmanCoding,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if vocab_size < 1 or dim < 1:
            raise ValueError("vocab_size and dim must be positive")
        if coding.codes.shape[0] != vocab_size:
            raise ValueError("Huffman coding does not match vocab_size")
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.dim = dim
        self.coding = coding
        self.w_in = _init_matrix(vocab_size, dim, rng)
        self.w_out = np.zeros((coding.num_inner, dim))

    @property
    def vectors(self) -> np.ndarray:
        return self.w_in

    def batch_step(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> float:
        """One SGD step; ``rng`` is unused (HS is deterministic given data)."""
        h, mask, counts = masked_context_mean(self.w_in, contexts)
        codes = self.coding.codes[centers]  # (B, D) int8, -1 pad
        points = self.coding.points[centers]  # (B, D)
        path_mask = codes >= 0
        if not np.any(path_mask):
            return 0.0

        node_vecs = self.w_out[points]  # (B, D, d)
        scores = np.einsum("bd,bkd->bk", h, node_vecs)
        preds = sigmoid(scores)
        # Convention: label at a node is 1 - code (code 0 = "predict 1").
        labels = np.where(path_mask, 1.0 - codes, 0.0)
        g = (labels - preds) * path_mask * lr  # (B, D)

        with np.errstate(divide="ignore"):
            ll = np.where(
                codes == 0, log_sigmoid(scores), log_sigmoid(-scores)
            )
        loss = -float((ll * path_mask).sum())

        grad_h = np.einsum("bk,bkd->bd", g, node_vecs)
        scatter_add_rows(
            self.w_out,
            points.ravel(),
            (g[:, :, None] * h[:, None, :]).reshape(-1, self.dim),
        )

        per_ctx = grad_h / counts[:, None]
        example_of, _slot = np.nonzero(mask)
        scatter_add_rows(self.w_in, contexts[mask], per_ctx[example_of])
        return loss / centers.shape[0]
