"""Vectorized negative sampling from the unigram^0.75 noise distribution.

Draws use inverse-CDF sampling (``searchsorted`` on the cumulative
distribution), which is O(log V) per draw, fully vectorized, and — unlike
word2vec's 100M-slot table — exact for any distribution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Sample negative target ids, optionally avoiding given positives."""

    def __init__(self, distribution: np.ndarray) -> None:
        dist = np.asarray(distribution, dtype=np.float64)
        if dist.ndim != 1 or dist.size == 0:
            raise ValueError("distribution must be a non-empty 1-D array")
        if np.any(dist < 0):
            raise ValueError("distribution must be non-negative")
        total = dist.sum()
        if not np.isclose(total, 1.0):
            if total <= 0:
                raise ValueError("distribution must have positive mass")
            dist = dist / total
        self._cdf = np.cumsum(dist)
        self._cdf[-1] = 1.0  # guard float drift so searchsorted stays in range
        self._support = int(np.count_nonzero(dist))

    @property
    def vocab_size(self) -> int:
        return int(self._cdf.shape[0])

    @property
    def support_size(self) -> int:
        """Number of ids with non-zero probability."""
        return self._support

    def sample(
        self,
        shape: tuple[int, ...] | int,
        rng: np.random.Generator,
        *,
        avoid: np.ndarray | None = None,
        max_retries: int = 4,
    ) -> np.ndarray:
        """Draw ids with the noise distribution.

        ``avoid`` (broadcastable to ``shape``) marks per-slot forbidden
        ids (the positive target); collisions are re-drawn up to
        ``max_retries`` rounds. Any survivors are left in place — exactly
        word2vec's behaviour, where an occasional positive drawn as a
        negative is harmless noise.
        """
        if isinstance(shape, int):
            shape = (shape,)
        draws = np.searchsorted(self._cdf, rng.random(shape), side="right")
        draws = draws.astype(np.int64)
        if avoid is not None and self._support > 1:
            avoid_arr = np.broadcast_to(np.asarray(avoid, dtype=np.int64), shape)
            for _ in range(max_retries):
                clash = draws == avoid_arr
                if not np.any(clash):
                    break
                redraw = np.searchsorted(
                    self._cdf, rng.random(int(clash.sum())), side="right"
                )
                draws[clash] = redraw
        return draws
