"""Minibatch SGD training loop with linear LR decay and convergence stop.

The paper (Fig 7) observes that V2V training time *decreases* as
community structure strengthens: strong structure makes walk contexts
predictable, the loss plateaus sooner, and training halts early. The
trainer implements that behaviour explicitly: per-epoch mean loss is
tracked, and training stops once the relative improvement stays below
``tol`` for ``patience`` consecutive epochs.

Durability: with ``checkpoint_dir`` set, the full trainer state (weight
matrices, RNG state, loss history, early-stop counters, LR-schedule
position) is snapshotted atomically after each epoch; ``resume=True``
restores the latest snapshot and continues, producing final embeddings
bitwise-identical to an uninterrupted run with the same seed (see
docs/resilience.md).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.cbow import CBOWHierarchicalSoftmax, CBOWNegativeSampling
from repro.core.huffman import build_huffman
from repro.core.negative import NegativeSampler
from repro.core.skipgram import SkipGramNegativeSampling
from repro.core.vocab import VertexVocab
from repro.obs.recorder import current_recorder
from repro.resilience.lifecycle import current_cancel_scope
from repro.walks.corpus import WalkCorpus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.supervisor import SupervisorConfig

__all__ = ["TrainConfig", "EmbeddingResult", "train_embeddings", "resolve_kernel"]

OBJECTIVES = ("cbow", "skipgram")
OUTPUT_LAYERS = ("negative", "hierarchical")
KERNELS = ("auto", "reference", "fused")

TRAINER_CHECKPOINT = "trainer"


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the embedding trainer.

    Defaults follow the paper: CBOW, window ``n = 5``; dimension is
    experiment-specific so it has no privileged default beyond a sane 50.
    """

    dim: int = 50
    window: int = 5
    objective: str = "cbow"
    output_layer: str = "negative"
    negatives: int = 5
    epochs: int = 5
    batch_size: int = 512
    lr: float = 0.025
    lr_min: float = 1e-4
    subsample: float = 0.0
    tol: float = 1e-3
    patience: int = 2
    early_stop: bool = True
    streaming: bool = False
    stream_rows: int = 1024
    workers: int = 1
    seed: int | None = None
    # Which batch kernel to run: "reference" is the float64 einsum kernel
    # (the bitwise-reproducibility anchor), "fused" the batched float32
    # kernel (CBOW + negative sampling only; see repro.core.fused), and
    # "auto" picks fused for multi-worker CBOW/negative runs and the
    # reference kernel everywhere else — so workers=1 output never moves.
    kernel: str = "auto"
    shuffle: bool = field(default=True, compare=False)
    # Liveness policy for the Hogwild worker pool, not model identity:
    # excluded from equality and from the resume fingerprint.
    supervisor: "SupervisorConfig | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("dim must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.objective not in OBJECTIVES:
            raise ValueError(f"objective must be one of {OBJECTIVES}")
        if self.output_layer not in OUTPUT_LAYERS:
            raise ValueError(f"output_layer must be one of {OUTPUT_LAYERS}")
        if self.objective == "skipgram" and self.output_layer == "hierarchical":
            raise ValueError("hierarchical softmax is implemented for CBOW only")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0 < self.lr:
            raise ValueError("lr must be positive")
        if self.lr_min < 0 or self.lr_min > self.lr:
            raise ValueError("need 0 <= lr_min <= lr")
        if self.negatives < 1:
            raise ValueError("negatives must be >= 1")
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.stream_rows < 1:
            raise ValueError("stream_rows must be >= 1")
        if self.workers < 1:
            raise ValueError(
                "workers must be >= 1 (resolve 'auto' before building the "
                "config, e.g. with repro.parallel.pool.resolve_workers)"
            )
        if self.workers > 1 and self.streaming:
            raise ValueError(
                "the streaming trainer is single-process; use workers=1 or "
                "the in-memory (non-streaming) Hogwild path"
            )
        if self.kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}")
        if self.kernel == "fused" and not (
            self.objective == "cbow" and self.output_layer == "negative"
        ):
            raise ValueError(
                "the fused kernel implements CBOW with negative sampling only"
            )


@dataclass(frozen=True)
class EmbeddingResult:
    """Outcome of a training run.

    ``vectors`` is the (V × dim) input-embedding matrix — the V2V vectors.
    """

    vectors: np.ndarray
    loss_history: list[float]
    epochs_run: int
    train_seconds: float
    converged: bool
    config: TrainConfig

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])


def resolve_kernel(config: TrainConfig) -> str:
    """The batch kernel a config actually runs (``auto`` resolved).

    ``auto`` chooses the fused float32 kernel exactly when the run is
    multi-worker CBOW with negative sampling — the regime where bitwise
    identity is already out of contract (Hogwild races) and throughput
    is the point. Every other configuration — and in particular every
    ``workers=1`` run — resolves to the float64 reference kernel, which
    is what keeps the golden pipeline checksum stable.
    """
    if config.kernel != "auto":
        return config.kernel
    if (
        config.workers > 1
        and config.objective == "cbow"
        and config.output_layer == "negative"
    ):
        return "fused"
    return "reference"


def _build_objective(
    config: TrainConfig,
    vocab: VertexVocab,
    rng: np.random.Generator,
    init_vectors: np.ndarray | None = None,
):
    if config.output_layer == "hierarchical":
        coding = build_huffman(vocab.counts)
        objective = CBOWHierarchicalSoftmax(vocab.size, config.dim, coding, rng=rng)
    elif config.objective == "cbow" and resolve_kernel(config) == "fused":
        from repro.core.fused import FusedCBOWNegativeSampling

        objective = FusedCBOWNegativeSampling(
            vocab.size,
            config.dim,
            vocab.noise_distribution(),
            negatives=config.negatives,
            rng=rng,
        )
    else:
        sampler = NegativeSampler(vocab.noise_distribution())
        if config.objective == "cbow":
            objective = CBOWNegativeSampling(
                vocab.size, config.dim, sampler, negatives=config.negatives, rng=rng
            )
        else:
            objective = SkipGramNegativeSampling(
                vocab.size, config.dim, sampler, negatives=config.negatives, rng=rng
            )
    if init_vectors is not None:
        init_vectors = np.asarray(init_vectors, dtype=np.float64)
        if init_vectors.shape != (vocab.size, config.dim):
            raise ValueError(
                f"init_vectors must be ({vocab.size}, {config.dim}), "
                f"got {init_vectors.shape}"
            )
        # Cast the warm start to the objective's weight dtype (float32
        # for the fused kernel); np.array always copies.
        objective.w_in = np.array(init_vectors, dtype=objective.w_in.dtype)
    return objective


# ----------------------------------------------------------------------
# Epoch-level state (shared by the in-memory and streaming loops) and
# its checkpoint plumbing.
# ----------------------------------------------------------------------
@dataclass
class _TrainState:
    """Everything that survives an epoch boundary."""

    epoch: int = 0  # completed epochs
    loss_history: list[float] = field(default_factory=list)
    best_loss: float = np.inf
    stall: int = 0
    batch_index: int = 0
    converged: bool = False

    def record_epoch(self, mean_loss: float, config: TrainConfig) -> None:
        self.loss_history.append(mean_loss)
        self.epoch += 1
        if config.early_stop:
            improvement = (self.best_loss - mean_loss) / max(
                abs(self.best_loss), 1e-12
            )
            if np.isfinite(self.best_loss) and improvement < config.tol:
                self.stall += 1
                if self.stall >= config.patience:
                    self.converged = True
            else:
                self.stall = 0
            self.best_loss = min(self.best_loss, mean_loss)


class _TrainerSnapshots:
    """Per-epoch atomic snapshots of a training run.

    A thin policy layer (what to store, how often) over the shared
    fingerprinted-slot machinery in
    :class:`repro.pipeline.checkpointing.FingerprintedCheckpoints` —
    the fingerprint stamping/verification itself lives there now,
    shared with the walk engine.
    """

    def __init__(self, store, every: int) -> None:
        if every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.store = store  # a FingerprintedCheckpoints
        self.every = every

    def restore(
        self, objective, rng: np.random.Generator
    ) -> _TrainState | None:
        """Load the trainer snapshot, if any, into objective/rng/state."""
        ckpt = self.store.load(TRAINER_CHECKPOINT)
        if ckpt is None:
            return None
        # Preserve the objective's weight dtype (float32 for the fused
        # kernel, float64 for the reference kernels).
        objective.w_in = np.ascontiguousarray(
            ckpt.arrays["w_in"], dtype=objective.w_in.dtype
        )
        objective.w_out = np.ascontiguousarray(
            ckpt.arrays["w_out"], dtype=objective.w_out.dtype
        )
        rng.bit_generator.state = ckpt.meta["rng_state"]
        return _TrainState(
            epoch=int(ckpt.meta["epoch"]),
            loss_history=[float(x) for x in ckpt.meta["loss_history"]],
            best_loss=float(ckpt.meta["best_loss"]),
            stall=int(ckpt.meta["stall"]),
            batch_index=int(ckpt.meta["batch_index"]),
            converged=bool(ckpt.meta["converged"]),
        )

    def save(
        self, objective, rng: np.random.Generator, state: _TrainState, *, final: bool
    ) -> None:
        if not final and state.epoch % self.every != 0:
            return
        self.store.save(
            TRAINER_CHECKPOINT,
            {"w_in": objective.w_in, "w_out": objective.w_out},
            {
                "rng_state": rng.bit_generator.state,
                "epoch": state.epoch,
                "loss_history": state.loss_history,
                "best_loss": state.best_loss,
                "stall": state.stall,
                "batch_index": state.batch_index,
                "converged": state.converged,
            },
        )


def _trainer_snapshots(
    corpus: WalkCorpus,
    config: TrainConfig,
    ctx,
    init_vectors: np.ndarray | None,
    every: int,
) -> _TrainerSnapshots | None:
    """The run's snapshot slot, or None when checkpointing is off."""
    store = ctx.fingerprinted(
        _train_fingerprint(corpus, config, init_vectors),
        what="trainer checkpoint",
        described="configuration or corpus",
    )
    if store is None:
        return None
    return _TrainerSnapshots(store, every)


def _train_fingerprint(
    corpus: WalkCorpus, config: TrainConfig, init_vectors: np.ndarray | None
) -> dict:
    """Identity of a training job: config + corpus shape + warm start."""
    config_dict = asdict(config)
    config_dict.pop("supervisor", None)  # liveness policy, not identity
    return {
        "config": config_dict,
        "corpus": {
            "num_walks": corpus.num_walks,
            "max_length": corpus.max_length,
            "num_tokens": corpus.num_tokens,
            "num_vertices": corpus.num_vertices,
        },
        "has_init_vectors": init_vectors is not None,
    }


# Local "not passed" sentinel for the legacy keyword shims (the pipeline
# layer has its own; this module must not import it at module level).
_UNSET = object()


def train_embeddings(
    corpus: WalkCorpus,
    config: TrainConfig | None = None,
    *,
    context=None,
    init_vectors: np.ndarray | None = None,
    checkpoint_dir: "str | Path | None" = _UNSET,  # type: ignore[assignment]
    resume: bool = _UNSET,  # type: ignore[assignment]
    checkpoint_every: int = 1,
    epoch_callback: Callable[[int, float], None] | None = None,
) -> EmbeddingResult:
    """Train vertex embeddings on a walk corpus.

    Returns an :class:`EmbeddingResult`; ``vectors`` rows for vertices
    that never appear in the corpus keep their random initialization
    (they carry no information, matching word2vec's treatment of
    out-of-corpus words).

    ``init_vectors`` warm-starts the input embedding matrix — used by
    :meth:`repro.core.model.V2V.refit` to retrain after small graph
    changes without re-learning from scratch.

    Runtime concerns travel in ``context``
    (:class:`repro.pipeline.ExecutionContext`): with
    ``context.checkpoint_dir`` set the trainer snapshots atomically
    every ``checkpoint_every`` epochs, and with ``context.resume`` an
    existing snapshot (written by the same config and corpus — anything
    else raises ``ValueError``) is restored and training continues from
    the epoch after it, replaying the exact RNG stream of an
    uninterrupted run. ``epoch_callback(epoch_index, mean_loss)`` fires
    after each completed epoch (after the snapshot, so a crash inside
    the callback is itself resumable). The individual
    ``checkpoint_dir=``/``resume=`` keyword arguments remain accepted
    for compatibility with a ``DeprecationWarning`` and cannot be
    combined with ``context``.

    ``config.workers > 1`` dispatches to the shared-memory Hogwild
    trainer (:func:`repro.parallel.hogwild.train_hogwild`): the weight
    matrices move into ``multiprocessing.shared_memory`` and the example
    set is sharded across lock-free SGD worker processes. ``workers=1``
    always takes this serial path and is bitwise-reproducible.
    """
    from repro.pipeline.context import UNSET, context_from_legacy

    ctx = context_from_legacy(
        context,
        checkpoint_dir=UNSET if checkpoint_dir is _UNSET else checkpoint_dir,
        resume=UNSET if resume is _UNSET else resume,
    )
    return _train_embeddings(
        corpus,
        config,
        ctx,
        init_vectors=init_vectors,
        checkpoint_every=checkpoint_every,
        epoch_callback=epoch_callback,
    )


def _train_embeddings(
    corpus: WalkCorpus,
    config: TrainConfig | None,
    ctx,
    *,
    init_vectors: np.ndarray | None = None,
    checkpoint_every: int = 1,
    epoch_callback: Callable[[int, float], None] | None = None,
) -> EmbeddingResult:
    """Context-based trainer entry (``ctx`` is an ExecutionContext)."""
    config = config or TrainConfig()
    # TrainConfig.supervisor predates the context; honor it when the
    # context does not name its own supervision policy.
    ctx = ctx.with_supervisor(config.supervisor)
    if config.workers > 1:
        from repro.parallel.hogwild import hogwild_supported, train_hogwild

        if hogwild_supported():
            return train_hogwild(
                corpus,
                config,
                context=ctx,
                init_vectors=init_vectors,
                checkpoint_every=checkpoint_every,
                epoch_callback=epoch_callback,
            )
        warnings.warn(
            "shared memory is unavailable on this platform; training "
            f"serially instead of with {config.workers} workers",
            RuntimeWarning,
            stacklevel=2,
        )
        current_recorder().event(
            "train.serial_fallback", level="warning", workers=config.workers
        )
        config = replace(config, workers=1)
    rec = current_recorder()
    with ctx.lifecycle(), rec.span(
        "train.run",
        objective=config.objective,
        output_layer=config.output_layer,
        dim=config.dim,
        epochs=config.epochs,
        streaming=config.streaming,
    ) as span:
        rng = np.random.default_rng(config.seed)
        vocab = VertexVocab.from_corpus(corpus)
        if vocab.total_tokens == 0:
            raise ValueError("corpus is empty; nothing to train on")

        checkpointer = _trainer_snapshots(
            corpus, config, ctx, init_vectors, checkpoint_every
        )

        if config.streaming:
            return _train_streaming(
                corpus,
                config,
                vocab,
                rng,
                init_vectors,
                checkpointer=checkpointer,
                resume=ctx.resume,
                epoch_callback=epoch_callback,
            )

        centers, contexts = corpus.context_arrays(config.window)
        if centers.size == 0:
            raise ValueError("corpus has no (center, context) examples")

        if config.subsample > 0:
            keep_p = vocab.keep_probabilities(config.subsample)
            keep = rng.random(centers.shape[0]) < keep_p[centers]
            if np.any(keep):  # never subsample away the whole corpus
                centers, contexts = centers[keep], contexts[keep]

        objective = _build_objective(config, vocab, rng, init_vectors)
        state = _TrainState()
        if checkpointer is not None and ctx.resume:
            state = checkpointer.restore(objective, rng) or state

        elapsed = _run_dense_epochs(
            objective,
            centers,
            contexts,
            config,
            rng,
            state,
            checkpointer=checkpointer,
            epoch_callback=epoch_callback,
        )

        if rec.enabled:
            span.annotate(
                epochs_run=len(state.loss_history), converged=state.converged
            )
        return EmbeddingResult(
            vectors=objective.vectors.copy(),
            loss_history=state.loss_history,
            epochs_run=len(state.loss_history),
            train_seconds=elapsed,
            converged=state.converged,
            config=config,
        )


def _record_epoch_telemetry(
    rec,
    span,
    state: _TrainState,
    mean_loss: float,
    lr: float,
    examples: int,
    seconds: float,
) -> None:
    """Per-epoch metrics + span attributes (dense and streaming loops)."""
    words_per_sec = examples / max(seconds, 1e-9)
    rec.observe("train.epoch_seconds", seconds)
    rec.inc("train.epochs_run")
    rec.inc("train.examples", examples)
    rec.set("train.last_loss", mean_loss)
    rec.set("train.lr", lr)
    rec.set("train.words_per_sec", words_per_sec)
    span.annotate(
        loss=round(mean_loss, 6),
        lr=round(lr, 6),
        examples=examples,
        words_per_sec=round(words_per_sec, 1),
    )
    if state.converged:
        rec.event(
            "train.early_stop",
            epoch=state.epoch,
            loss=round(mean_loss, 6),
            stall=state.stall,
        )


def _run_dense_epochs(
    objective,
    centers: np.ndarray,
    contexts: np.ndarray,
    config: TrainConfig,
    rng: np.random.Generator,
    state: _TrainState,
    *,
    checkpointer: _TrainerSnapshots | None = None,
    epoch_callback: Callable[[int, float], None] | None = None,
) -> float:
    """The serial in-memory epoch loop; returns elapsed seconds.

    Shared verbatim by the default trainer and the ``workers=1``
    shared-memory path (:func:`repro.parallel.hogwild.train_hogwild`):
    both drive exactly this sequence of RNG draws and float ops, which
    is what makes the two bitwise-identical.
    """
    num_examples = centers.shape[0]
    batches_per_epoch = max(1, int(np.ceil(num_examples / config.batch_size)))
    total_batches = batches_per_epoch * config.epochs
    rec = current_recorder()
    scope = current_cancel_scope()

    start = time.perf_counter()
    for _epoch in range(state.epoch, config.epochs):
        if state.converged:
            break
        if scope.cancelled():
            # Clean epoch boundary: weights/RNG match the last completed
            # epoch exactly, so this final snapshot is resume-safe.
            if checkpointer is not None:
                checkpointer.save(objective, rng, state, final=True)
            scope.check()
        with rec.span("train.epoch", epoch=state.epoch) as span:
            epoch_start = time.perf_counter()
            order = rng.permutation(num_examples) if config.shuffle else np.arange(num_examples)
            epoch_loss = 0.0
            lr = config.lr
            for lo in range(0, num_examples, config.batch_size):
                # Mid-epoch cancel raises *without* saving: the weights
                # already hold partial-epoch updates, so only the last
                # epoch-boundary snapshot is a valid resume point.
                scope.check()
                sel = order[lo : lo + config.batch_size]
                # Linear LR decay over the scheduled (not early-stopped) run.
                frac = state.batch_index / max(total_batches - 1, 1)
                lr = config.lr + (config.lr_min - config.lr) * frac
                epoch_loss += objective.batch_step(centers[sel], contexts[sel], lr, rng)
                state.batch_index += 1
            mean_loss = epoch_loss / batches_per_epoch
            state.record_epoch(mean_loss, config)
            if rec.enabled:
                _record_epoch_telemetry(
                    rec,
                    span,
                    state,
                    mean_loss,
                    lr,
                    num_examples,
                    time.perf_counter() - epoch_start,
                )
        if checkpointer is not None:
            checkpointer.save(
                objective,
                rng,
                state,
                final=state.converged or state.epoch == config.epochs,
            )
        if epoch_callback is not None:
            epoch_callback(state.epoch - 1, mean_loss)
    return time.perf_counter() - start


def _train_streaming(
    corpus: WalkCorpus,
    config: TrainConfig,
    vocab: VertexVocab,
    rng: np.random.Generator,
    init_vectors: np.ndarray | None,
    *,
    checkpointer: _TrainerSnapshots | None = None,
    resume: bool = False,
    epoch_callback: Callable[[int, float], None] | None = None,
) -> EmbeddingResult:
    """Memory-bounded training: context examples are extracted one walk
    chunk at a time instead of materialized for the whole corpus.

    Peak memory is O(stream_rows × walk_length × window + buffer) — the
    path that makes the paper's t = ℓ = 1000 corpora (10⁹ tokens →
    ~10¹⁰ context slots) trainable. Shuffling is hierarchical: walk rows
    are permuted globally, then examples pass through a shuffle buffer
    of several batches before being consumed — without the buffer, a
    small chunk feeds whole batches from a handful of walks, whose
    heavily repeated vertices over-step the SGD update.
    """
    num_examples = corpus.num_examples(config.window)
    if num_examples == 0:
        raise ValueError("corpus has no (center, context) examples")
    objective = _build_objective(config, vocab, rng, init_vectors)
    state = _TrainState()
    if checkpointer is not None and resume:
        state = checkpointer.restore(objective, rng) or state

    keep_p = (
        vocab.keep_probabilities(config.subsample)
        if config.subsample > 0
        else None
    )
    batches_per_epoch = max(1, int(np.ceil(num_examples / config.batch_size)))
    total_batches = batches_per_epoch * config.epochs
    rec = current_recorder()
    scope = current_cancel_scope()

    start = time.perf_counter()
    for _epoch in range(state.epoch, config.epochs):
        if state.converged:
            break
        if scope.cancelled():
            if checkpointer is not None:
                checkpointer.save(objective, rng, state, final=True)
            scope.check()
        with rec.span("train.epoch", epoch=state.epoch, streaming=True) as span:
            epoch_start = time.perf_counter()
            if config.shuffle:
                row_order = rng.permutation(corpus.num_walks)
                shuffled = WalkCorpus(
                    corpus.walks[row_order], num_vertices=corpus.num_vertices
                )
            else:
                shuffled = corpus
            epoch_loss = 0.0
            epoch_batches = 0
            buffer_target = 8 * config.batch_size
            buf_centers: list[np.ndarray] = []
            buf_contexts: list[np.ndarray] = []
            buffered = 0

            def drain(final: bool) -> tuple[float, int]:
                nonlocal buf_centers, buf_contexts, buffered
                centers = np.concatenate(buf_centers)
                contexts = np.vstack(buf_contexts)
                if config.shuffle:
                    perm = rng.permutation(centers.shape[0])
                    centers, contexts = centers[perm], contexts[perm]
                # Keep a partial batch in the buffer unless this is the
                # final drain of the epoch.
                full = centers.shape[0] - (
                    0 if final else centers.shape[0] % config.batch_size
                )
                loss = 0.0
                steps = 0
                for lo in range(0, full, config.batch_size):
                    scope.check()
                    frac = min(state.batch_index, total_batches - 1) / max(
                        total_batches - 1, 1
                    )
                    lr = config.lr + (config.lr_min - config.lr) * frac
                    loss += objective.batch_step(
                        centers[lo : lo + config.batch_size],
                        contexts[lo : lo + config.batch_size],
                        lr,
                        rng,
                    )
                    state.batch_index += 1
                    steps += 1
                if full < centers.shape[0]:
                    buf_centers = [centers[full:]]
                    buf_contexts = [contexts[full:]]
                    buffered = centers.shape[0] - full
                else:
                    buf_centers, buf_contexts, buffered = [], [], 0
                return loss, steps

            for centers, contexts in shuffled.context_batches(
                config.window, rows_per_batch=config.stream_rows
            ):
                if keep_p is not None:
                    keep = rng.random(centers.shape[0]) < keep_p[centers]
                    if np.any(keep):
                        centers, contexts = centers[keep], contexts[keep]
                buf_centers.append(centers)
                buf_contexts.append(contexts)
                buffered += centers.shape[0]
                if buffered >= buffer_target:
                    loss, steps = drain(final=False)
                    epoch_loss += loss
                    epoch_batches += steps
            if buffered:
                loss, steps = drain(final=True)
                epoch_loss += loss
                epoch_batches += steps
            mean_loss = epoch_loss / max(epoch_batches, 1)
            state.record_epoch(mean_loss, config)
            if rec.enabled:
                frac = min(max(state.batch_index - 1, 0), total_batches - 1) / max(
                    total_batches - 1, 1
                )
                _record_epoch_telemetry(
                    rec,
                    span,
                    state,
                    mean_loss,
                    config.lr + (config.lr_min - config.lr) * frac,
                    num_examples,
                    time.perf_counter() - epoch_start,
                )
            if checkpointer is not None:
                checkpointer.save(
                    objective,
                    rng,
                    state,
                    final=state.converged or state.epoch == config.epochs,
                )
            if epoch_callback is not None:
                epoch_callback(state.epoch - 1, mean_loss)
    elapsed = time.perf_counter() - start

    return EmbeddingResult(
        vectors=objective.vectors.copy(),
        loss_history=state.loss_history,
        epochs_run=len(state.loss_history),
        train_seconds=elapsed,
        converged=state.converged,
        config=config,
    )
