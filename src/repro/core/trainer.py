"""Minibatch SGD training loop with linear LR decay and convergence stop.

The paper (Fig 7) observes that V2V training time *decreases* as
community structure strengthens: strong structure makes walk contexts
predictable, the loss plateaus sooner, and training halts early. The
trainer implements that behaviour explicitly: per-epoch mean loss is
tracked, and training stops once the relative improvement stays below
``tol`` for ``patience`` consecutive epochs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.cbow import CBOWHierarchicalSoftmax, CBOWNegativeSampling
from repro.core.huffman import build_huffman
from repro.core.negative import NegativeSampler
from repro.core.skipgram import SkipGramNegativeSampling
from repro.core.vocab import VertexVocab
from repro.walks.corpus import WalkCorpus

__all__ = ["TrainConfig", "EmbeddingResult", "train_embeddings"]

OBJECTIVES = ("cbow", "skipgram")
OUTPUT_LAYERS = ("negative", "hierarchical")


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the embedding trainer.

    Defaults follow the paper: CBOW, window ``n = 5``; dimension is
    experiment-specific so it has no privileged default beyond a sane 50.
    """

    dim: int = 50
    window: int = 5
    objective: str = "cbow"
    output_layer: str = "negative"
    negatives: int = 5
    epochs: int = 5
    batch_size: int = 512
    lr: float = 0.025
    lr_min: float = 1e-4
    subsample: float = 0.0
    tol: float = 1e-3
    patience: int = 2
    early_stop: bool = True
    streaming: bool = False
    stream_rows: int = 1024
    seed: int | None = None
    shuffle: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("dim must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.objective not in OBJECTIVES:
            raise ValueError(f"objective must be one of {OBJECTIVES}")
        if self.output_layer not in OUTPUT_LAYERS:
            raise ValueError(f"output_layer must be one of {OUTPUT_LAYERS}")
        if self.objective == "skipgram" and self.output_layer == "hierarchical":
            raise ValueError("hierarchical softmax is implemented for CBOW only")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0 < self.lr:
            raise ValueError("lr must be positive")
        if self.lr_min < 0 or self.lr_min > self.lr:
            raise ValueError("need 0 <= lr_min <= lr")
        if self.negatives < 1:
            raise ValueError("negatives must be >= 1")
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.stream_rows < 1:
            raise ValueError("stream_rows must be >= 1")


@dataclass(frozen=True)
class EmbeddingResult:
    """Outcome of a training run.

    ``vectors`` is the (V × dim) input-embedding matrix — the V2V vectors.
    """

    vectors: np.ndarray
    loss_history: list[float]
    epochs_run: int
    train_seconds: float
    converged: bool
    config: TrainConfig

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])


def _build_objective(
    config: TrainConfig,
    vocab: VertexVocab,
    rng: np.random.Generator,
    init_vectors: np.ndarray | None = None,
):
    if config.output_layer == "hierarchical":
        coding = build_huffman(vocab.counts)
        objective = CBOWHierarchicalSoftmax(vocab.size, config.dim, coding, rng=rng)
    else:
        sampler = NegativeSampler(vocab.noise_distribution())
        if config.objective == "cbow":
            objective = CBOWNegativeSampling(
                vocab.size, config.dim, sampler, negatives=config.negatives, rng=rng
            )
        else:
            objective = SkipGramNegativeSampling(
                vocab.size, config.dim, sampler, negatives=config.negatives, rng=rng
            )
    if init_vectors is not None:
        init_vectors = np.asarray(init_vectors, dtype=np.float64)
        if init_vectors.shape != (vocab.size, config.dim):
            raise ValueError(
                f"init_vectors must be ({vocab.size}, {config.dim}), "
                f"got {init_vectors.shape}"
            )
        objective.w_in = init_vectors.copy()
    return objective


def train_embeddings(
    corpus: WalkCorpus,
    config: TrainConfig | None = None,
    *,
    init_vectors: np.ndarray | None = None,
) -> EmbeddingResult:
    """Train vertex embeddings on a walk corpus.

    Returns an :class:`EmbeddingResult`; ``vectors`` rows for vertices
    that never appear in the corpus keep their random initialization
    (they carry no information, matching word2vec's treatment of
    out-of-corpus words).

    ``init_vectors`` warm-starts the input embedding matrix — used by
    :meth:`repro.core.model.V2V.refit` to retrain after small graph
    changes without re-learning from scratch.
    """
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    vocab = VertexVocab.from_corpus(corpus)
    if vocab.total_tokens == 0:
        raise ValueError("corpus is empty; nothing to train on")

    if config.streaming:
        return _train_streaming(corpus, config, vocab, rng, init_vectors)

    centers, contexts = corpus.context_arrays(config.window)
    if centers.size == 0:
        raise ValueError("corpus has no (center, context) examples")

    if config.subsample > 0:
        keep_p = vocab.keep_probabilities(config.subsample)
        keep = rng.random(centers.shape[0]) < keep_p[centers]
        if np.any(keep):  # never subsample away the whole corpus
            centers, contexts = centers[keep], contexts[keep]

    objective = _build_objective(config, vocab, rng, init_vectors)

    num_examples = centers.shape[0]
    batches_per_epoch = max(1, int(np.ceil(num_examples / config.batch_size)))
    total_batches = batches_per_epoch * config.epochs

    loss_history: list[float] = []
    best_loss = np.inf
    stall = 0
    converged = False
    start = time.perf_counter()
    batch_index = 0
    for _epoch in range(config.epochs):
        order = rng.permutation(num_examples) if config.shuffle else np.arange(num_examples)
        epoch_loss = 0.0
        for lo in range(0, num_examples, config.batch_size):
            sel = order[lo : lo + config.batch_size]
            # Linear LR decay over the scheduled (not early-stopped) run.
            frac = batch_index / max(total_batches - 1, 1)
            lr = config.lr + (config.lr_min - config.lr) * frac
            epoch_loss += objective.batch_step(centers[sel], contexts[sel], lr, rng)
            batch_index += 1
        mean_loss = epoch_loss / batches_per_epoch
        loss_history.append(mean_loss)
        if config.early_stop:
            improvement = (best_loss - mean_loss) / max(abs(best_loss), 1e-12)
            if np.isfinite(best_loss) and improvement < config.tol:
                stall += 1
                if stall >= config.patience:
                    converged = True
                    break
            else:
                stall = 0
            best_loss = min(best_loss, mean_loss)
    elapsed = time.perf_counter() - start

    return EmbeddingResult(
        vectors=objective.vectors.copy(),
        loss_history=loss_history,
        epochs_run=len(loss_history),
        train_seconds=elapsed,
        converged=converged,
        config=config,
    )


def _train_streaming(
    corpus: WalkCorpus,
    config: TrainConfig,
    vocab: VertexVocab,
    rng: np.random.Generator,
    init_vectors: np.ndarray | None,
) -> EmbeddingResult:
    """Memory-bounded training: context examples are extracted one walk
    chunk at a time instead of materialized for the whole corpus.

    Peak memory is O(stream_rows × walk_length × window + buffer) — the
    path that makes the paper's t = ℓ = 1000 corpora (10⁹ tokens →
    ~10¹⁰ context slots) trainable. Shuffling is hierarchical: walk rows
    are permuted globally, then examples pass through a shuffle buffer
    of several batches before being consumed — without the buffer, a
    small chunk feeds whole batches from a handful of walks, whose
    heavily repeated vertices over-step the SGD update.
    """
    num_examples = corpus.num_examples(config.window)
    if num_examples == 0:
        raise ValueError("corpus has no (center, context) examples")
    objective = _build_objective(config, vocab, rng, init_vectors)

    keep_p = (
        vocab.keep_probabilities(config.subsample)
        if config.subsample > 0
        else None
    )
    batches_per_epoch = max(1, int(np.ceil(num_examples / config.batch_size)))
    total_batches = batches_per_epoch * config.epochs

    loss_history: list[float] = []
    best_loss = np.inf
    stall = 0
    converged = False
    start = time.perf_counter()
    batch_index = 0
    for _epoch in range(config.epochs):
        if config.shuffle:
            row_order = rng.permutation(corpus.num_walks)
            shuffled = WalkCorpus(
                corpus.walks[row_order], num_vertices=corpus.num_vertices
            )
        else:
            shuffled = corpus
        epoch_loss = 0.0
        epoch_batches = 0
        buffer_target = 8 * config.batch_size
        buf_centers: list[np.ndarray] = []
        buf_contexts: list[np.ndarray] = []
        buffered = 0

        def drain(final: bool) -> tuple[float, int]:
            nonlocal batch_index, buf_centers, buf_contexts, buffered
            centers = np.concatenate(buf_centers)
            contexts = np.vstack(buf_contexts)
            if config.shuffle:
                perm = rng.permutation(centers.shape[0])
                centers, contexts = centers[perm], contexts[perm]
            # Keep a partial batch in the buffer unless this is the
            # final drain of the epoch.
            full = centers.shape[0] - (
                0 if final else centers.shape[0] % config.batch_size
            )
            loss = 0.0
            steps = 0
            for lo in range(0, full, config.batch_size):
                frac = min(batch_index, total_batches - 1) / max(
                    total_batches - 1, 1
                )
                lr = config.lr + (config.lr_min - config.lr) * frac
                loss += objective.batch_step(
                    centers[lo : lo + config.batch_size],
                    contexts[lo : lo + config.batch_size],
                    lr,
                    rng,
                )
                batch_index += 1
                steps += 1
            if full < centers.shape[0]:
                buf_centers = [centers[full:]]
                buf_contexts = [contexts[full:]]
                buffered = centers.shape[0] - full
            else:
                buf_centers, buf_contexts, buffered = [], [], 0
            return loss, steps

        for centers, contexts in shuffled.context_batches(
            config.window, rows_per_batch=config.stream_rows
        ):
            if keep_p is not None:
                keep = rng.random(centers.shape[0]) < keep_p[centers]
                if np.any(keep):
                    centers, contexts = centers[keep], contexts[keep]
            buf_centers.append(centers)
            buf_contexts.append(contexts)
            buffered += centers.shape[0]
            if buffered >= buffer_target:
                loss, steps = drain(final=False)
                epoch_loss += loss
                epoch_batches += steps
        if buffered:
            loss, steps = drain(final=True)
            epoch_loss += loss
            epoch_batches += steps
        mean_loss = epoch_loss / max(epoch_batches, 1)
        loss_history.append(mean_loss)
        if config.early_stop:
            improvement = (best_loss - mean_loss) / max(abs(best_loss), 1e-12)
            if np.isfinite(best_loss) and improvement < config.tol:
                stall += 1
                if stall >= config.patience:
                    converged = True
                    break
            else:
                stall = 0
            best_loss = min(best_loss, mean_loss)
    elapsed = time.perf_counter() - start

    return EmbeddingResult(
        vectors=objective.vectors.copy(),
        loss_history=loss_history,
        epochs_run=len(loss_history),
        train_seconds=elapsed,
        converged=converged,
        config=config,
    )
