"""SkipGram with negative sampling — the DeepWalk/node2vec objective.

Included as the comparison point the paper's Related Work discusses
(Perozzi et al., Grover & Leskovec use SkipGram; V2V uses CBOW). The
ablation bench contrasts the two objectives on identical walk corpora.

SkipGram inverts CBOW's direction: the *center* vector predicts each
context token independently, so a (center, contexts) example expands into
one training pair per real context slot.
"""

from __future__ import annotations

import numpy as np

from repro.core._math import log_sigmoid, scatter_add_rows, sigmoid
from repro.core.negative import NegativeSampler

__all__ = ["SkipGramNegativeSampling"]


class SkipGramNegativeSampling:
    """SkipGram objective with sampled logistic output layer."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        sampler: NegativeSampler,
        *,
        negatives: int = 5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if vocab_size < 1 or dim < 1:
            raise ValueError("vocab_size and dim must be positive")
        if negatives < 1:
            raise ValueError("negatives must be >= 1")
        if sampler.vocab_size != vocab_size:
            raise ValueError("sampler vocabulary does not match vocab_size")
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.dim = dim
        self.negatives = negatives
        self.sampler = sampler
        self.w_in = (rng.random((vocab_size, dim)) - 0.5) / dim
        self.w_out = np.zeros((vocab_size, dim))

    @property
    def vectors(self) -> np.ndarray:
        return self.w_in

    def batch_step(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> float:
        """One SGD step over a (center, padded-contexts) minibatch.

        The batch is flattened to (input=center, output=context) pairs so
        the update shares the CBOW machinery's vectorized shape. Loss is
        normalized per original example to stay comparable with CBOW's
        loss curve.
        """
        mask = contexts >= 0
        pair_in = np.repeat(centers, contexts.shape[1])[mask.ravel()]
        pair_out = contexts[mask]
        if pair_in.size == 0:
            return 0.0

        h = self.w_in[pair_in]  # (P, d)
        negs = self.sampler.sample(
            (pair_in.shape[0], self.negatives), rng, avoid=pair_out[:, None]
        )
        targets = np.concatenate([pair_out[:, None], negs], axis=1)
        labels = np.zeros((pair_in.shape[0], 1 + self.negatives))
        labels[:, 0] = 1.0

        out_vecs = self.w_out[targets]
        scores = np.einsum("pd,pkd->pk", h, out_vecs)
        preds = sigmoid(scores)
        loss = -(log_sigmoid(scores[:, 0]).sum() + log_sigmoid(-scores[:, 1:]).sum())

        g = (labels - preds) * lr
        grad_h = np.einsum("pk,pkd->pd", g, out_vecs)
        scatter_add_rows(
            self.w_out,
            targets.ravel(),
            (g[:, :, None] * h[:, None, :]).reshape(-1, self.dim),
        )
        scatter_add_rows(self.w_in, pair_in, grad_h)
        return float(loss / centers.shape[0])
