"""Huffman coding over vertex frequencies, for hierarchical softmax.

Hierarchical softmax replaces the V-way output softmax with a walk down a
binary Huffman tree: each vertex is a leaf, each inner node carries an
output vector, and predicting a vertex means making the correct
left/right decision at every inner node on its root path. Frequent
vertices get short codes, so the expected path length is the entropy
bound — this is what makes HS training O(log V) per example.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["HuffmanCoding", "build_huffman"]


@dataclass(frozen=True)
class HuffmanCoding:
    """Padded code/point matrices for vectorized hierarchical softmax.

    Attributes
    ----------
    codes:
        int8 matrix (V × max_depth); the left/right (0/1) decisions on
        each leaf's root path, padded with ``-1``.
    points:
        int64 matrix (V × max_depth); inner-node ids aligned with
        ``codes``, padded with ``0`` (masked by ``codes == -1``).
    depths:
        int64 vector; true code length per leaf (0 for ids that never
        occur — they have no path and are never trained).
    num_inner:
        Number of inner nodes (= number of merges = leaves - 1 when
        more than one leaf has mass).
    """

    codes: np.ndarray
    points: np.ndarray
    depths: np.ndarray
    num_inner: int

    @property
    def max_depth(self) -> int:
        return int(self.codes.shape[1])


def build_huffman(counts: np.ndarray) -> HuffmanCoding:
    """Build Huffman codes for every id with positive count.

    Ids with zero count receive empty codes (depth 0). Ties are broken by
    id for determinism.
    """
    counts = np.asarray(counts, dtype=np.int64)
    vocab = int(counts.shape[0])
    leaves = np.flatnonzero(counts > 0)
    if leaves.size == 0:
        raise ValueError("cannot build a Huffman tree with no occurring ids")

    # Heap items: (count, tiebreak, node_id). Leaves are 0..V-1; inner
    # nodes take ids V, V+1, ... in merge order.
    heap: list[tuple[int, int, int]] = [
        (int(counts[v]), int(v), int(v)) for v in leaves
    ]
    heapq.heapify(heap)
    next_id = vocab
    parent: dict[int, int] = {}
    bit: dict[int, int] = {}
    while len(heap) > 1:
        c1, _, n1 = heapq.heappop(heap)
        c2, _, n2 = heapq.heappop(heap)
        parent[n1], bit[n1] = next_id, 0
        parent[n2], bit[n2] = next_id, 1
        heapq.heappush(heap, (c1 + c2, next_id, next_id))
        next_id += 1
    root = heap[0][2]
    num_inner = next_id - vocab

    # Read off each leaf's path root->leaf. Inner node `x` is addressed
    # as `x - vocab` in the output-vector matrix.
    depths = np.zeros(vocab, dtype=np.int64)
    paths: dict[int, tuple[list[int], list[int]]] = {}
    max_depth = 0
    for v in leaves:
        node = int(v)
        rev_bits: list[int] = []
        rev_points: list[int] = []
        while node != root:
            rev_bits.append(bit[node])
            rev_points.append(parent[node] - vocab)
            node = parent[node]
        rev_bits.reverse()
        rev_points.reverse()
        paths[int(v)] = (rev_bits, rev_points)
        depths[v] = len(rev_bits)
        max_depth = max(max_depth, len(rev_bits))

    max_depth = max(max_depth, 1)
    codes = np.full((vocab, max_depth), -1, dtype=np.int8)
    points = np.zeros((vocab, max_depth), dtype=np.int64)
    for v, (bits, pts) in paths.items():
        if bits:
            codes[v, : len(bits)] = bits
            points[v, : len(pts)] = pts
    return HuffmanCoding(
        codes=codes, points=points, depths=depths, num_inner=max(num_inner, 1)
    )
