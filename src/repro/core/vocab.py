"""Vertex vocabulary: token frequencies and derived sampling distributions.

Mirrors the word2vec vocabulary object: every vertex id is its own
"word", counts come from the walk corpus, and the vocabulary exposes the
``count^0.75`` noise distribution used by negative sampling plus the
optional frequent-token subsampling probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.walks.corpus import WalkCorpus

__all__ = ["VertexVocab"]


class VertexVocab:
    """Frequency statistics of a walk corpus over ``num_vertices`` ids."""

    def __init__(self, counts: np.ndarray) -> None:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1:
            raise ValueError("counts must be 1-D")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        self._counts = counts
        self._total = int(counts.sum())

    @classmethod
    def from_corpus(cls, corpus: WalkCorpus) -> "VertexVocab":
        return cls(corpus.token_counts())

    @property
    def counts(self) -> np.ndarray:
        return self._counts

    @property
    def size(self) -> int:
        """Vocabulary size — the vertex-universe size, including zero-count ids."""
        return int(self._counts.shape[0])

    @property
    def total_tokens(self) -> int:
        return self._total

    @property
    def observed(self) -> np.ndarray:
        """Ids that appear at least once."""
        return np.flatnonzero(self._counts > 0)

    def frequencies(self) -> np.ndarray:
        """Relative frequency per id (zeros stay zero)."""
        if self._total == 0:
            return np.zeros(self.size)
        return self._counts / self._total

    def noise_distribution(self, power: float = 0.75) -> np.ndarray:
        """word2vec negative-sampling noise: P(v) ∝ count(v)^power.

        Ids that never occur get probability 0 — they are never drawn as
        negatives, matching word2vec's table construction.
        """
        if power < 0:
            raise ValueError("power must be non-negative")
        weights = self._counts.astype(np.float64) ** power
        weights[self._counts == 0] = 0.0
        total = weights.sum()
        if total == 0:
            raise ValueError("cannot build noise distribution from empty vocab")
        return weights / total

    def keep_probabilities(self, subsample: float) -> np.ndarray:
        """word2vec frequent-token subsampling keep-probability per id.

        ``keep(v) = min(1, sqrt(t / f(v)) + t / f(v))`` with threshold ``t``.
        ``subsample <= 0`` disables (all ones).
        """
        if subsample <= 0:
            return np.ones(self.size)
        freq = self.frequencies()
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = subsample / freq
            keep = np.sqrt(ratio) + ratio
        keep[~np.isfinite(keep)] = 1.0
        return np.minimum(keep, 1.0)
