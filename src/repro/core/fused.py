"""Fused batched CBOW negative-sampling kernel (float32).

The reference :class:`repro.core.cbow.CBOWNegativeSampling` kernel is the
reproducibility anchor: float64, einsum-based, collision-avoiding
negative draws. This module is its throughput-oriented twin, used by the
multi-worker (Hogwild) trainer where bitwise identity across worker
counts is already out of contract. The fusions, each measured on the
bench corpus (see docs/PERFORMANCE.md):

- **float32 weights** — halves the bytes every gather/scatter moves; the
  training race (Hogwild) is far noisier than the precision loss.
- **h-trick context mean** — pad slots gather row 0 and one subtraction
  of ``pad_count * w_in[0]`` fixes the sum, instead of materializing the
  ``(B, C, d)`` masked product.
- **alias-table negatives** — one :class:`~repro.walks.alias.AliasTable`
  draw per batch, O(1) per sample with no ``searchsorted`` and no
  collision-avoidance redraw loop (word2vec's C implementation also
  keeps accidental positives; they are harmless noise).
- **matmul scoring** — ``(B, 1+K, d) @ (B, d, 1)`` batched matmul in
  place of ``einsum``, plus in-place clip/sigmoid/gradient arithmetic on
  one ``(B, 1+K)`` buffer.
- **preallocated target/label buffers** — reused across batches of the
  same size, so the steady-state loop allocates only the gathers.

The public surface matches the reference kernel exactly —
``batch_step(centers, contexts, lr, rng)``, ``w_in``/``w_out``
attributes, a ``vectors`` property — so the serial epoch loop and the
Hogwild worker task drive either kernel unchanged.
:attr:`vectors` returns float64 to keep the downstream contract
(similarity queries, checkpoints compare) dtype-stable.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core._math import MAX_EXP
from repro.walks.alias import AliasTable, build_alias

__all__ = ["FusedCBOWNegativeSampling"]


# Float32 twins of the caches in repro.core._math.scatter_add_rows; the
# selector matrix must match the row-block dtype or scipy promotes the
# product back to float64.
_ones_cache = np.empty(0, dtype=np.float32)
_arange_cache = np.empty(0, dtype=np.int64)


def _scatter_add_rows_f32(
    target: np.ndarray, idx: np.ndarray, rows: np.ndarray
) -> None:
    """``target[idx] += rows`` with duplicates accumulated, float32 end to end."""
    global _ones_cache, _arange_cache
    n = idx.shape[0]
    if n == 0:
        return
    if int(np.bincount(idx).max()) <= 1:
        target[idx] += rows
        return
    if _ones_cache.shape[0] < n:
        _ones_cache = np.ones(n, dtype=np.float32)
        _arange_cache = np.arange(n, dtype=np.int64)
    selector = sparse.csr_matrix(
        (_ones_cache[:n], (idx, _arange_cache[:n])), shape=(target.shape[0], n)
    )
    target += selector @ rows


class FusedCBOWNegativeSampling:
    """CBOW + negative sampling with the fused float32 batch kernel.

    Construction takes the noise *distribution* directly (not a
    :class:`~repro.core.negative.NegativeSampler`): negatives are drawn
    from a single alias table over the vocabulary, built once here.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        noise_distribution: np.ndarray,
        *,
        negatives: int = 5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if vocab_size < 1 or dim < 1:
            raise ValueError("vocab_size and dim must be positive")
        if negatives < 1:
            raise ValueError("negatives must be >= 1")
        dist = np.asarray(noise_distribution, dtype=np.float64)
        if dist.shape != (vocab_size,):
            raise ValueError("noise distribution must have one entry per vocab id")
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.dim = dim
        self.negatives = negatives
        prob, alias = build_alias(dist)
        self._noise = AliasTable(prob=prob, alias=alias)
        # Same init draw count/order as the reference kernel, cast down.
        self.w_in = (
            ((rng.random((vocab_size, dim)) - 0.5) / dim).astype(np.float32)
        )
        self.w_out = np.zeros((vocab_size, dim), dtype=np.float32)
        self._targets = np.empty((0, 1 + negatives), dtype=np.int64)
        self._labels = np.empty((0, 1 + negatives), dtype=np.float32)

    @property
    def vectors(self) -> np.ndarray:
        """The learned input embeddings, upcast to the float64 contract."""
        return self.w_in.astype(np.float64)

    def batch_step(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> float:
        """One SGD step over a minibatch; returns the mean example loss."""
        w_in, w_out = self.w_in, self.w_out
        batch = centers.shape[0]
        mask = contexts >= 0
        counts = mask.sum(axis=1)
        if np.any(counts == 0):
            raise ValueError("every example must have at least one context token")
        safe = np.where(mask, contexts, 0)
        # h-trick: pad slots gathered row 0, so subtracting pad_count
        # copies of w_in[0] yields the true context sum.
        pad = (contexts.shape[1] - counts).astype(np.float32)
        inv = np.float32(1.0) / counts.astype(np.float32)
        h = w_in[safe].sum(axis=1)
        h -= pad[:, None] * w_in[0]
        h *= inv[:, None]

        negs = self._noise.sample(
            0, self.vocab_size, rng, shape=(batch, self.negatives)
        )
        if self._targets.shape[0] != batch:
            self._targets = np.empty((batch, 1 + self.negatives), dtype=np.int64)
            self._labels = np.zeros((batch, 1 + self.negatives), dtype=np.float32)
            self._labels[:, 0] = 1.0
        targets = self._targets
        targets[:, 0] = centers
        targets[:, 1:] = negs

        out_vecs = w_out[targets]  # (B, 1+K, d)
        scores = (out_vecs @ h[:, :, None])[:, :, 0]  # (B, 1+K)
        np.clip(scores, -MAX_EXP, MAX_EXP, out=scores)
        # loss = -log σ(s⁺) - Σ log σ(-s⁻), read off before `scores` is
        # transformed in place into predictions and then gradients.
        loss = float(
            np.log1p(np.exp(-scores[:, 0])).sum()
            + np.log1p(np.exp(scores[:, 1:])).sum()
        )
        np.negative(scores, out=scores)
        np.exp(scores, out=scores)
        scores += np.float32(1.0)
        np.reciprocal(scores, out=scores)  # scores := σ(scores)
        np.subtract(self._labels, scores, out=scores)
        scores *= np.float32(lr)  # scores := (labels - preds) * lr
        g = scores

        grad_h = (g[:, None, :] @ out_vecs)[:, 0, :]  # before w_out update
        _scatter_add_rows_f32(
            w_out,
            targets.ravel(),
            (g[:, :, None] * h[:, None, :]).reshape(-1, self.dim),
        )
        per_ctx = grad_h * inv[:, None]
        example_of, _slot = np.nonzero(mask)
        _scatter_add_rows_f32(w_in, contexts[mask], per_ctx[example_of])
        return loss / batch
