"""V2V embedding core: the paper's primary contribution.

Pipeline: walk corpus -> vocabulary/frequency statistics -> CBOW (or
SkipGram) trained with negative sampling or hierarchical softmax -> one
dense vector per vertex. Everything is from-scratch numpy with vectorized
minibatch SGD (no per-token Python loops in the training path).
"""

from repro.core.cbow import CBOWHierarchicalSoftmax, CBOWNegativeSampling
from repro.core.huffman import HuffmanCoding, build_huffman
from repro.core.model import V2V, V2VConfig
from repro.core.negative import NegativeSampler
from repro.core.selection import (
    neighborhood_overlap,
    select_dimension,
    select_walk_budget,
)
from repro.core.skipgram import SkipGramNegativeSampling
from repro.core.trainer import EmbeddingResult, TrainConfig, train_embeddings
from repro.core.vocab import VertexVocab

__all__ = [
    "V2V",
    "V2VConfig",
    "TrainConfig",
    "EmbeddingResult",
    "train_embeddings",
    "VertexVocab",
    "NegativeSampler",
    "HuffmanCoding",
    "build_huffman",
    "CBOWNegativeSampling",
    "CBOWHierarchicalSoftmax",
    "SkipGramNegativeSampling",
    "select_dimension",
    "select_walk_budget",
    "neighborhood_overlap",
]
