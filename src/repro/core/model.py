"""The high-level V2V estimator: graph in, vertex vectors out.

This is the public face of the reproduction. Typical use::

    from repro import V2V, V2VConfig
    from repro.graph import planted_partition

    g = planted_partition(alpha=0.5, seed=0)
    model = V2V(V2VConfig(dim=50, seed=0)).fit(g)
    vectors = model.vectors            # (n, 50)
    model.most_similar(0, topn=5)      # nearest vertices in embedding space
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.trainer import EmbeddingResult, TrainConfig, train_embeddings
from repro.graph.core import Graph
from repro.obs.recorder import ObsConfig, current_recorder, session
from repro.resilience.checkpoint import (
    CheckpointCorrupt,
    atomic_write_bytes,
    integrity_record,
    verify_integrity,
)
from repro.resilience.supervisor import SupervisorConfig
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, WalkMode, generate_walks

__all__ = ["V2V", "V2VConfig"]


@dataclass(frozen=True)
class V2VConfig:
    """End-to-end V2V configuration (walk stage + training stage).

    Paper defaults: ``window = 5``; walk count and length default to
    t = ℓ = 1000 in the paper, scaled here to a laptop corpus (see
    DESIGN.md). All the paper's constrained-walk modes are available via
    ``walk_mode``/``time_window``.

    ``train_workers > 1`` trains with the shared-memory Hogwild mode
    (:mod:`repro.parallel.hogwild`); ``1`` is the bitwise-deterministic
    serial trainer. Walk-stage workers are a per-call choice
    (``fit(workers=...)``) because they don't change the model identity
    the way the trainer's worker count does.
    """

    dim: int = 50
    window: int = 5
    walks_per_vertex: int = 10
    walk_length: int = 80
    walk_mode: WalkMode = WalkMode.UNIFORM
    time_window: float | None = None
    p: float = 1.0
    q: float = 1.0
    objective: str = "cbow"
    output_layer: str = "negative"
    negatives: int = 5
    epochs: int = 5
    batch_size: int = 512
    lr: float = 0.025
    lr_min: float = 1e-4
    subsample: float = 0.0
    tol: float = 1e-3
    patience: int = 2
    early_stop: bool = True
    streaming: bool = False
    stream_rows: int = 1024
    train_workers: int = 1
    seed: int | None = None
    # Telemetry is not part of the model's identity: excluded from
    # equality so configs differing only in observability stay equal.
    observability: ObsConfig | None = field(default=None, compare=False)
    # Worker supervision (liveness, not identity — same exclusion).
    # ``worker_deadline`` set → parallel stages run supervised: hung or
    # dead workers are killed/respawned within that many seconds.
    worker_deadline: float | None = field(default=None, compare=False)
    max_respawns: int = field(default=3, compare=False)

    def __post_init__(self) -> None:
        # Fail fast: constructing the stage configs runs their full
        # validation, so a bad V2VConfig raises here, not inside fit().
        self.walk_config()
        self.train_config()

    def walk_config(self) -> RandomWalkConfig:
        return RandomWalkConfig(
            walks_per_vertex=self.walks_per_vertex,
            walk_length=self.walk_length,
            mode=self.walk_mode,
            time_window=self.time_window,
            p=self.p,
            q=self.q,
            seed=self.seed,
        )

    def train_config(self) -> TrainConfig:
        return TrainConfig(
            dim=self.dim,
            window=self.window,
            objective=self.objective,
            output_layer=self.output_layer,
            negatives=self.negatives,
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            lr_min=self.lr_min,
            subsample=self.subsample,
            tol=self.tol,
            patience=self.patience,
            early_stop=self.early_stop,
            streaming=self.streaming,
            stream_rows=self.stream_rows,
            workers=self.train_workers,
            seed=self.seed,
            supervisor=self.supervisor_config(),
        )

    def supervisor_config(self) -> SupervisorConfig | None:
        """The supervision policy, or ``None`` when disabled (default)."""
        if self.worker_deadline is None:
            return None
        return SupervisorConfig(
            worker_deadline=self.worker_deadline,
            max_respawns=self.max_respawns,
        )

    def with_dim(self, dim: int) -> "V2VConfig":
        """Convenience for the dimension sweeps in Figs 5/6/9/10."""
        return replace(self, dim=dim)


class V2V:
    """Vertex-to-Vector model (fit/transform interface).

    The model is reusable: ``fit`` runs walks + training; ``fit_corpus``
    trains on a pre-generated corpus (the paper trains many dimensions on
    *the same* walk set — reusing the corpus is both faster and truer to
    the experiment in Section V).
    """

    def __init__(self, config: V2VConfig | None = None) -> None:
        self.config = config or V2VConfig()
        self._result: EmbeddingResult | None = None
        self._corpus: WalkCorpus | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        graph: Graph,
        *,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        workers: int | None = 1,
    ) -> "V2V":
        """Generate walks on ``graph`` and train the embedding.

        ``workers`` parallelizes the *walk* stage (``None``/< 1 = auto
        via :func:`repro.parallel.pool.resolve_workers`); the *training*
        stage fans out when ``config.train_workers > 1`` (shared-memory
        Hogwild, see docs/PERFORMANCE.md).

        ``checkpoint_dir`` makes the whole pipeline durable: completed
        walk chunks land under ``<dir>/walks/`` and the trainer snapshot
        at ``<dir>/trainer.ckpt.npz``, each written atomically. A run
        killed at any point restarts with ``resume=True`` and continues
        from the last checkpoint, ending in embeddings bitwise-identical
        to an uninterrupted run with the same seed (docs/resilience.md).
        The trainer fingerprint includes the worker count, so a resume
        with a different ``train_workers`` is refused rather than mixing
        determinism regimes.

        With ``config.observability`` set (and no recorder already
        installed by an enclosing session, e.g. the CLI's), ``fit``
        opens its own :func:`repro.obs.session` for the duration of the
        pipeline, so library users get logs/metrics/manifest without
        touching global state themselves.
        """
        obs_cfg = self.config.observability
        if obs_cfg is not None and not current_recorder().enabled:
            run_config = {
                k: v
                for k, v in self.config.__dict__.items()
                if k != "observability"
            }
            run_config["entrypoint"] = "V2V.fit"
            with session(obs_cfg, run_config=run_config):
                return self._fit(
                    graph,
                    checkpoint_dir=checkpoint_dir,
                    resume=resume,
                    workers=workers,
                )
        return self._fit(
            graph, checkpoint_dir=checkpoint_dir, resume=resume, workers=workers
        )

    def _fit(
        self,
        graph: Graph,
        *,
        checkpoint_dir: str | Path | None,
        resume: bool,
        workers: int | None,
    ) -> "V2V":
        rec = current_recorder()
        with rec.span("pipeline.fit", n=int(graph.n), dim=self.config.dim):
            walk_dir = Path(checkpoint_dir) / "walks" if checkpoint_dir else None
            corpus = generate_walks(
                graph,
                self.config.walk_config(),
                workers=workers,
                checkpoint_dir=walk_dir,
                resume=resume,
                supervisor=self.config.supervisor_config(),
            )
            return self.fit_corpus(
                corpus, checkpoint_dir=checkpoint_dir, resume=resume
            )

    def fit_corpus(
        self,
        corpus: WalkCorpus,
        *,
        init_vectors: np.ndarray | None = None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
    ) -> "V2V":
        """Train on an existing walk corpus (optionally warm-started)."""
        self._corpus = corpus
        self._result = train_embeddings(
            corpus,
            self.config.train_config(),
            init_vectors=init_vectors,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        return self

    def refit(self, graph: Graph) -> "V2V":
        """Re-train on a (slightly) changed graph, warm-starting from the
        current vectors.

        The paper's §VII asks about graphs with missing/changing data;
        warm-starting converges in a fraction of the cold-start epochs
        when the change is small, because the embedding geometry is
        already near the new optimum. Requires the new graph to have the
        same vertex set size.
        """
        current = self._require_fitted()
        if graph.n != current.vectors.shape[0]:
            raise ValueError(
                "refit requires the same vertex universe; "
                f"model has {current.vectors.shape[0]} vertices, graph has {graph.n}"
            )
        corpus = generate_walks(graph, self.config.walk_config())
        return self.fit_corpus(corpus, init_vectors=current.vectors)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._result is not None

    def _require_fitted(self) -> EmbeddingResult:
        if self._result is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self._result

    @property
    def vectors(self) -> np.ndarray:
        """(n × dim) embedding matrix; row ``v`` is vertex ``v``'s vector."""
        return self._require_fitted().vectors

    @property
    def result(self) -> EmbeddingResult:
        """Full training record (loss history, epochs, wall time)."""
        return self._require_fitted()

    @property
    def corpus(self) -> WalkCorpus:
        if self._corpus is None:
            raise RuntimeError("model has no corpus; call fit() first")
        return self._corpus

    def embedding_for(self, vertex: int) -> np.ndarray:
        vectors = self.vectors
        if not 0 <= vertex < vectors.shape[0]:
            raise IndexError(f"vertex {vertex} out of range")
        return vectors[vertex]

    # ------------------------------------------------------------------
    # Similarity queries
    # ------------------------------------------------------------------
    def similarity(self, u: int, v: int) -> float:
        """Cosine similarity between two vertex embeddings."""
        a, b = self.embedding_for(u), self.embedding_for(v)
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(a @ b / (na * nb))

    def most_similar(self, vertex: int, topn: int = 10) -> list[tuple[int, float]]:
        """``topn`` nearest vertices by cosine similarity (self excluded)."""
        vectors = self.vectors
        query = self.embedding_for(vertex)
        norms = np.linalg.norm(vectors, axis=1)
        qn = np.linalg.norm(query)
        with np.errstate(divide="ignore", invalid="ignore"):
            sims = vectors @ query / (norms * qn)
        sims[~np.isfinite(sims)] = -np.inf
        sims[vertex] = -np.inf
        topn = min(topn, vectors.shape[0] - 1)
        idx = np.argpartition(-sims, topn - 1)[:topn] if topn > 0 else np.empty(0, int)
        idx = idx[np.argsort(-sims[idx])]
        return [(int(i), float(sims[i])) for i in idx]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the learned vectors (+ loss history) as .npz.

        The write is atomic (tmp → fsync → rename, see
        :func:`repro.resilience.checkpoint.atomic_write_bytes`) and the
        file embeds a SHA-256/CRC32 integrity record that :meth:`load`
        verifies, so a torn or bit-flipped model file is detected
        instead of silently loading garbage vectors.
        """
        result = self._require_fitted()
        path = Path(path)
        if path.suffix != ".npz":  # match np.savez_compressed behavior
            path = path.with_name(path.name + ".npz")
        arrays = {
            "vectors": np.asarray(result.vectors),
            "loss_history": np.asarray(result.loss_history),
            "epochs_run": np.asarray(result.epochs_run),
            "converged": np.asarray(int(result.converged)),
        }
        record = integrity_record(arrays)
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            **arrays,
            __integrity__=np.frombuffer(json.dumps(record).encode(), np.uint8),
        )
        atomic_write_bytes(path, buf.getvalue())

    @classmethod
    def load(cls, path: str | Path, config: V2VConfig | None = None) -> "V2V":
        """Load vectors saved by :meth:`save` into a fitted model.

        Raises :class:`repro.resilience.checkpoint.CheckpointCorrupt`
        when the file is unreadable or fails its integrity record
        (models saved before integrity records load unverified).
        """
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {k: data[k] for k in data.files if k != "__integrity__"}
                record = (
                    json.loads(bytes(data["__integrity__"]).decode())
                    if "__integrity__" in data.files
                    else None
                )
        except FileNotFoundError:
            raise
        except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as exc:
            raise CheckpointCorrupt(path, f"unreadable container: {exc}") from exc
        if record is not None:
            verify_integrity(arrays, record, path=path)
        model = cls(config)
        model._result = EmbeddingResult(
            vectors=arrays["vectors"],
            loss_history=[float(x) for x in arrays["loss_history"]],
            epochs_run=int(arrays["epochs_run"]),
            train_seconds=0.0,
            converged=bool(int(arrays["converged"])),
            config=model.config.train_config(),
        )
        return model
