"""The high-level V2V estimator: graph in, vertex vectors out.

This is the public face of the reproduction. Typical use::

    from repro import V2V, V2VConfig
    from repro.graph import planted_partition

    g = planted_partition(alpha=0.5, seed=0)
    model = V2V(V2VConfig(dim=50, seed=0)).fit(g)
    vectors = model.vectors            # (n, 50)
    model.most_similar(0, topn=5)      # nearest vertices in embedding space
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

import numpy as np

from repro.core.trainer import EmbeddingResult, TrainConfig, train_embeddings
from repro.graph.core import Graph
from repro.obs.recorder import ObsConfig, current_recorder
from repro.resilience.checkpoint import (
    CheckpointCorrupt,
    atomic_write_bytes,
    integrity_record,
    verify_integrity,
)
from repro.resilience.supervisor import SupervisorConfig
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, WalkMode, generate_walks

__all__ = ["V2V", "V2VConfig"]


@dataclass(frozen=True)
class V2VConfig:
    """End-to-end V2V configuration (walk stage + training stage).

    Paper defaults: ``window = 5``; walk count and length default to
    t = ℓ = 1000 in the paper, scaled here to a laptop corpus (see
    DESIGN.md). All the paper's constrained-walk modes are available via
    ``walk_mode``/``time_window``.

    ``train_workers > 1`` trains with the shared-memory Hogwild mode
    (:mod:`repro.parallel.hogwild`); ``1`` is the bitwise-deterministic
    serial trainer. Walk-stage workers are a per-call choice
    (``fit(workers=...)``) because they don't change the model identity
    the way the trainer's worker count does.
    """

    dim: int = 50
    window: int = 5
    walks_per_vertex: int = 10
    walk_length: int = 80
    walk_mode: WalkMode = WalkMode.UNIFORM
    time_window: float | None = None
    p: float = 1.0
    q: float = 1.0
    objective: str = "cbow"
    output_layer: str = "negative"
    negatives: int = 5
    epochs: int = 5
    batch_size: int = 512
    lr: float = 0.025
    lr_min: float = 1e-4
    subsample: float = 0.0
    tol: float = 1e-3
    patience: int = 2
    early_stop: bool = True
    streaming: bool = False
    stream_rows: int = 1024
    train_workers: int = 1
    seed: int | None = None
    # Telemetry is not part of the model's identity: excluded from
    # equality so configs differing only in observability stay equal.
    observability: ObsConfig | None = field(default=None, compare=False)
    # Worker supervision (liveness, not identity — same exclusion).
    # ``worker_deadline`` set → parallel stages run supervised: hung or
    # dead workers are killed/respawned within that many seconds.
    worker_deadline: float | None = field(default=None, compare=False)
    max_respawns: int = field(default=3, compare=False)

    def __post_init__(self) -> None:
        # Fail fast: constructing the stage configs runs their full
        # validation, so a bad V2VConfig raises here, not inside fit().
        self.walk_config()
        self.train_config()

    def walk_config(self) -> RandomWalkConfig:
        return RandomWalkConfig(
            walks_per_vertex=self.walks_per_vertex,
            walk_length=self.walk_length,
            mode=self.walk_mode,
            time_window=self.time_window,
            p=self.p,
            q=self.q,
            seed=self.seed,
        )

    def train_config(self) -> TrainConfig:
        return TrainConfig(
            dim=self.dim,
            window=self.window,
            objective=self.objective,
            output_layer=self.output_layer,
            negatives=self.negatives,
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            lr_min=self.lr_min,
            subsample=self.subsample,
            tol=self.tol,
            patience=self.patience,
            early_stop=self.early_stop,
            streaming=self.streaming,
            stream_rows=self.stream_rows,
            workers=self.train_workers,
            seed=self.seed,
            supervisor=self.supervisor_config(),
        )

    def supervisor_config(self) -> SupervisorConfig | None:
        """The supervision policy, or ``None`` when disabled (default)."""
        if self.worker_deadline is None:
            return None
        return SupervisorConfig(
            worker_deadline=self.worker_deadline,
            max_respawns=self.max_respawns,
        )

    def with_dim(self, dim: int) -> "V2VConfig":
        """Convenience for the dimension sweeps in Figs 5/6/9/10."""
        return replace(self, dim=dim)

    # ------------------------------------------------------------------
    # Serialization — the single source of truth for persisting a config
    # (used by V2V.save/load and the observability run manifest).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form of the config.

        ``observability`` is excluded: telemetry settings are per-run
        plumbing (file handles, sinks), not model identity, and they do
        not survive serialization meaningfully.
        """
        data = {k: v for k, v in self.__dict__.items() if k != "observability"}
        data["walk_mode"] = str(WalkMode(self.walk_mode).value)
        return data

    def to_json(self) -> str:
        """Canonical JSON encoding of :meth:`to_dict` (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "V2VConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown V2VConfig keys: {', '.join(unknown)} "
                "(file written by an incompatible version?)"
            )
        data = dict(data)
        if "walk_mode" in data:
            data["walk_mode"] = WalkMode(data["walk_mode"])
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "V2VConfig":
        return cls.from_dict(json.loads(text))


class V2V:
    """Vertex-to-Vector model (fit/transform interface).

    The model is reusable: ``fit`` runs walks + training; ``fit_corpus``
    trains on a pre-generated corpus (the paper trains many dimensions on
    *the same* walk set — reusing the corpus is both faster and truer to
    the experiment in Section V).
    """

    def __init__(self, config: V2VConfig | None = None) -> None:
        self.config = config or V2VConfig()
        self._result: EmbeddingResult | None = None
        self._corpus: WalkCorpus | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _context(
        self,
        context,
        *,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        workers: int | None = 1,
    ):
        """Resolve the :class:`~repro.pipeline.ExecutionContext` to run under.

        Either the caller hands us a prebuilt context, or we assemble one
        from the convenience kwargs — never both. The model config then
        fills any runtime concern the context left unset (supervision
        policy, telemetry, seed), so a bare ``fit(graph)`` still honors
        ``V2VConfig.observability`` and friends.
        """
        from repro.pipeline.context import ExecutionContext

        if context is not None:
            if checkpoint_dir is not None or resume or workers != 1:
                raise TypeError(
                    "pass runtime settings either via context= or as "
                    "checkpoint_dir/resume/workers keyword arguments, not both"
                )
            ctx = context
        else:
            ctx = ExecutionContext(
                checkpoint_dir=checkpoint_dir, resume=resume, workers=workers
            )
        ctx = ctx.with_supervisor(self.config.supervisor_config())
        if ctx.observability is None and self.config.observability is not None:
            ctx = replace(ctx, observability=self.config.observability)
        if ctx.seed is None and self.config.seed is not None:
            ctx = replace(ctx, seed=self.config.seed)
        return ctx

    def fit(
        self,
        graph: Graph,
        *,
        context=None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        workers: int | None = 1,
    ) -> "V2V":
        """Generate walks on ``graph`` and train the embedding.

        ``fit`` is a facade over the staged runtime: it executes
        ``Pipeline([WalkStage, TrainStage])`` (:mod:`repro.pipeline`)
        under one :class:`~repro.pipeline.ExecutionContext`. Pass a
        prebuilt context via ``context=`` for full control, or use the
        convenience kwargs below (mutually exclusive with ``context=``).

        ``workers`` parallelizes the *walk* stage (``None``/< 1 = auto
        via :func:`repro.parallel.pool.resolve_workers`); the *training*
        stage fans out when ``config.train_workers > 1`` (shared-memory
        Hogwild, see docs/PERFORMANCE.md).

        ``checkpoint_dir`` makes the whole pipeline durable: completed
        walk chunks land under ``<dir>/walks/`` and the trainer snapshot
        at ``<dir>/trainer.ckpt.npz``, each written atomically. A run
        killed at any point restarts with ``resume=True`` and continues
        from the last checkpoint, ending in embeddings bitwise-identical
        to an uninterrupted run with the same seed (docs/resilience.md).
        The trainer fingerprint includes the worker count, so a resume
        with a different ``train_workers`` is refused rather than mixing
        determinism regimes.

        With observability configured (on the context or via
        ``config.observability``) and no recorder already installed by an
        enclosing session (e.g. the CLI's), ``fit`` opens its own
        :func:`repro.obs.session` for the duration of the pipeline, so
        library users get logs/metrics/manifest without touching global
        state themselves.
        """
        ctx = self._context(
            context, checkpoint_dir=checkpoint_dir, resume=resume, workers=workers
        )
        run_config = self.config.to_dict()
        run_config["entrypoint"] = "V2V.fit"
        with ctx.session(run_config=run_config):
            return self._fit(graph, ctx)

    def _fit(self, graph: Graph, ctx) -> "V2V":
        from repro.pipeline import Pipeline, TrainStage, WalkStage

        rec = current_recorder()
        with rec.span("pipeline.fit", n=int(graph.n), dim=self.config.dim):
            result = Pipeline(
                [
                    WalkStage(self.config.walk_config()),
                    TrainStage(self.config.train_config()),
                ]
            ).execute(graph, context=ctx)
        self._corpus = result.outputs["walks"]
        self._result = result.outputs["train"]
        return self

    def fit_corpus(
        self,
        corpus: WalkCorpus,
        *,
        init_vectors: np.ndarray | None = None,
        context=None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
    ) -> "V2V":
        """Train on an existing walk corpus (optionally warm-started)."""
        ctx = self._context(context, checkpoint_dir=checkpoint_dir, resume=resume)
        self._corpus = corpus
        self._result = train_embeddings(
            corpus,
            self.config.train_config(),
            context=ctx,
            init_vectors=init_vectors,
        )
        return self

    def refit(self, graph: Graph) -> "V2V":
        """Re-train on a (slightly) changed graph, warm-starting from the
        current vectors.

        The paper's §VII asks about graphs with missing/changing data;
        warm-starting converges in a fraction of the cold-start epochs
        when the change is small, because the embedding geometry is
        already near the new optimum. Requires the new graph to have the
        same vertex set size.
        """
        current = self._require_fitted()
        if graph.n != current.vectors.shape[0]:
            raise ValueError(
                "refit requires the same vertex universe; "
                f"model has {current.vectors.shape[0]} vertices, graph has {graph.n}"
            )
        corpus = generate_walks(graph, self.config.walk_config())
        return self.fit_corpus(corpus, init_vectors=current.vectors)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._result is not None

    def _require_fitted(self) -> EmbeddingResult:
        if self._result is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self._result

    @property
    def vectors(self) -> np.ndarray:
        """(n × dim) embedding matrix; row ``v`` is vertex ``v``'s vector."""
        return self._require_fitted().vectors

    @property
    def result(self) -> EmbeddingResult:
        """Full training record (loss history, epochs, wall time)."""
        return self._require_fitted()

    @property
    def corpus(self) -> WalkCorpus:
        if self._corpus is None:
            raise RuntimeError("model has no corpus; call fit() first")
        return self._corpus

    def embedding_for(self, vertex: int) -> np.ndarray:
        vectors = self.vectors
        if not 0 <= vertex < vectors.shape[0]:
            raise IndexError(f"vertex {vertex} out of range")
        return vectors[vertex]

    # ------------------------------------------------------------------
    # Similarity queries
    # ------------------------------------------------------------------
    def similarity(self, u: int, v: int) -> float:
        """Cosine similarity between two vertex embeddings."""
        a, b = self.embedding_for(u), self.embedding_for(v)
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(a @ b / (na * nb))

    def most_similar(self, vertex: int, topn: int = 10) -> list[tuple[int, float]]:
        """``topn`` nearest vertices by cosine similarity (self excluded)."""
        vectors = self.vectors
        query = self.embedding_for(vertex)
        norms = np.linalg.norm(vectors, axis=1)
        qn = np.linalg.norm(query)
        with np.errstate(divide="ignore", invalid="ignore"):
            sims = vectors @ query / (norms * qn)
        sims[~np.isfinite(sims)] = -np.inf
        sims[vertex] = -np.inf
        topn = min(topn, vectors.shape[0] - 1)
        idx = np.argpartition(-sims, topn - 1)[:topn] if topn > 0 else np.empty(0, int)
        idx = idx[np.argsort(-sims[idx])]
        return [(int(i), float(sims[i])) for i in idx]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the learned vectors (+ loss history) as .npz.

        The write is atomic (tmp → fsync → rename, see
        :func:`repro.resilience.checkpoint.atomic_write_bytes`) and the
        file embeds a SHA-256/CRC32 integrity record that :meth:`load`
        verifies, so a torn or bit-flipped model file is detected
        instead of silently loading garbage vectors.
        """
        result = self._require_fitted()
        path = Path(path)
        if path.suffix != ".npz":  # match np.savez_compressed behavior
            path = path.with_name(path.name + ".npz")
        arrays = {
            "vectors": np.asarray(result.vectors),
            "loss_history": np.asarray(result.loss_history),
            "epochs_run": np.asarray(result.epochs_run),
            "converged": np.asarray(int(result.converged)),
            # The config rides along (integrity-covered), so load() can
            # rebuild the exact model without the caller re-supplying it.
            "config_json": np.frombuffer(
                self.config.to_json().encode(), np.uint8
            ),
        }
        record = integrity_record(arrays)
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            **arrays,
            __integrity__=np.frombuffer(json.dumps(record).encode(), np.uint8),
        )
        atomic_write_bytes(path, buf.getvalue())

    @classmethod
    def load(cls, path: str | Path, config: V2VConfig | None = None) -> "V2V":
        """Load vectors saved by :meth:`save` into a fitted model.

        Raises :class:`repro.resilience.checkpoint.CheckpointCorrupt`
        when the file is unreadable or fails its integrity record
        (models saved before integrity records load unverified).
        """
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {k: data[k] for k in data.files if k != "__integrity__"}
                record = (
                    json.loads(bytes(data["__integrity__"]).decode())
                    if "__integrity__" in data.files
                    else None
                )
        except FileNotFoundError:
            raise
        except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as exc:
            raise CheckpointCorrupt(path, f"unreadable container: {exc}") from exc
        if record is not None:
            verify_integrity(arrays, record, path=path)
        config_json = arrays.pop("config_json", None)
        if config is None and config_json is not None:
            config = V2VConfig.from_json(bytes(config_json).decode())
        model = cls(config)
        model._result = EmbeddingResult(
            vectors=arrays["vectors"],
            loss_history=[float(x) for x in arrays["loss_history"]],
            epochs_run=int(arrays["epochs_run"]),
            train_seconds=0.0,
            converged=bool(int(arrays["converged"])),
            config=model.config.train_config(),
        )
        return model
