"""Zachary's karate club (1977) — the classic community benchmark.

34 members of a university karate club, edges recording interactions
outside the club; the club later split into two factions (around the
instructor, vertex 0, and the administrator, vertex 33). The faction
each member joined is the standard ground truth for community detection
and is included as vertex label ``"faction"``.

Edge list transcribed from Zachary, W. W. (1977), "An Information Flow
Model for Conflict and Fission in Small Groups", Journal of
Anthropological Research 33, 452–473 (public data).
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import EdgeList, Graph

__all__ = ["karate_club"]

_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21),
    (0, 31), (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19),
    (1, 21), (1, 30), (2, 3), (2, 7), (2, 8), (2, 9), (2, 13),
    (2, 27), (2, 28), (2, 32), (3, 7), (3, 12), (3, 13), (4, 6),
    (4, 10), (5, 6), (5, 10), (5, 16), (6, 16), (8, 30), (8, 32),
    (8, 33), (9, 33), (13, 33), (14, 32), (14, 33), (15, 32),
    (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32),
    (23, 33), (24, 25), (24, 27), (24, 31), (25, 31), (26, 29),
    (26, 33), (27, 33), (28, 31), (28, 33), (29, 32), (29, 33),
    (30, 32), (30, 33), (31, 32), (31, 33), (32, 33),
]

# Faction joined after the split (0 = instructor's club, 1 = officers').
_FACTION = np.asarray(
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 0,
     0, 1, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1],
    dtype=np.int64,
)


def karate_club() -> Graph:
    """The 34-vertex karate-club graph with ``"faction"`` labels."""
    src = np.asarray([u for u, _ in _EDGES], dtype=np.int64)
    dst = np.asarray([v for _, v in _EDGES], dtype=np.int64)
    g = Graph(34, EdgeList(src, dst), directed=False)
    g.set_vertex_labels("faction", _FACTION)
    return g
