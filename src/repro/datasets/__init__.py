"""Datasets: the paper's synthetic community benchmark and the synthetic
OpenFlights substitute (see DESIGN.md §3 for the substitution rationale).
"""

from repro.datasets.openflights import (
    CONTINENTS,
    OpenFlightsSpec,
    synthetic_openflights,
)
from repro.datasets.karate import karate_club
from repro.datasets.synthetic import alpha_sweep, community_benchmark

__all__ = [
    "community_benchmark",
    "alpha_sweep",
    "karate_club",
    "synthetic_openflights",
    "OpenFlightsSpec",
    "CONTINENTS",
]
