"""Synthetic OpenFlights: a geographically structured flight-route graph.

The paper's Sections IV-A and V use the OpenFlights.org dump (~10k
airports, ~67k directed routes) with continent/country metadata. That
dump is unavailable offline, so this module generates a synthetic
equivalent that preserves the only properties the experiments exercise:

1. a *directed* route graph whose topology is correlated with geography
   (nearby airports are densely interconnected; long-haul routes connect
   hub airports);
2. continent and country labels that are *recoverable from topology*
   but never shown to the embedding.

Generation model:

- 10 continents (the paper's Fig 8 legend) at fixed sphere coordinates,
  each with a configurable number of countries scattered around the
  continent center, each country with airports scattered around the
  country center.
- Every airport gets a heavy-tailed hub weight (Pareto); its out-degree
  is proportional to that weight.
- Route targets are drawn by Gumbel-top-k over scores
  ``log(hub_weight_target) - distance / decay_length``, so short routes
  dominate but hubs attract long-haul connections — the mix that makes
  continents cluster while keeping the graph connected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.core import EdgeList, Graph

__all__ = ["CONTINENTS", "OpenFlightsSpec", "synthetic_openflights", "great_circle"]

# The ten regions in the paper's Fig 8 legend, with representative
# (latitude, longitude) anchors in degrees.
CONTINENTS: tuple[tuple[str, float, float], ...] = (
    ("North America", 45.0, -100.0),
    ("Europe", 50.0, 10.0),
    ("Asia", 35.0, 105.0),
    ("Middle East", 27.0, 45.0),
    ("Central America", 15.0, -90.0),
    ("Oceania", -25.0, 140.0),
    ("South America", -15.0, -60.0),
    ("Africa", 5.0, 20.0),
    ("Balkans", 43.0, 21.0),
    ("Caribbean", 18.0, -70.0),
)


@dataclass(frozen=True)
class OpenFlightsSpec:
    """Shape of the synthetic dataset.

    Defaults give a ~1.5k-airport graph (laptop-scale stand-in for the
    10k-airport original — the same construction at any size). Route
    scoring is dense O(n²) in memory (three n×n float64 matrices), so
    ~3000 airports is a practical ceiling on a 16 GB machine; the
    ``V2V_SCALE=paper`` benches use exactly that.
    """

    num_airports: int = 1500
    countries_per_continent: int = 12
    routes_per_airport: float = 6.0
    country_spread_deg: float = 6.0
    airport_spread_deg: float = 2.0
    decay_length_km: float = 800.0
    domestic_bonus: float = 12.0
    hub_exponent: float = 1.5
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.num_airports < len(CONTINENTS) * 2:
            raise ValueError("need at least two airports per continent")
        if self.countries_per_continent < 1:
            raise ValueError("countries_per_continent must be >= 1")
        if self.routes_per_airport <= 0:
            raise ValueError("routes_per_airport must be positive")
        if self.decay_length_km <= 0:
            raise ValueError("decay_length_km must be positive")
        if self.domestic_bonus < 1.0:
            raise ValueError("domestic_bonus must be >= 1")
        if self.hub_exponent <= 1.0:
            raise ValueError("hub_exponent must exceed 1 (Pareto shape)")


EARTH_RADIUS_KM = 6371.0


def great_circle(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Haversine great-circle distance in km (degrees in, broadcasting)."""
    p1, p2 = np.radians(lat1), np.radians(lat2)
    dphi = p2 - p1
    dlam = np.radians(lon2) - np.radians(lon1)
    h = np.sin(dphi / 2.0) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


def synthetic_openflights(spec: OpenFlightsSpec | None = None) -> Graph:
    """Generate the synthetic flight-route graph.

    Returns a directed :class:`Graph` with vertex labels ``continent``
    (str), ``country`` (str like ``"Europe-03"``), ``lat`` and ``lon``
    (floats) — metadata for evaluation only.
    """
    spec = spec or OpenFlightsSpec()
    rng = np.random.default_rng(spec.seed)
    n = spec.num_airports
    num_continents = len(CONTINENTS)

    # --- place airports: continent -> country -> airport jitter ---------
    continent_of = _proportional_assignment(n, num_continents, rng)
    continent_names = np.asarray([c[0] for c in CONTINENTS])
    anchors = np.asarray([(c[1], c[2]) for c in CONTINENTS])

    country_local = rng.integers(0, spec.countries_per_continent, size=n)
    country_id = continent_of * spec.countries_per_continent + country_local
    total_countries = num_continents * spec.countries_per_continent
    country_centers = np.empty((total_countries, 2))
    for cid in range(total_countries):
        cont = cid // spec.countries_per_continent
        country_centers[cid] = anchors[cont] + rng.normal(
            scale=spec.country_spread_deg, size=2
        )
    pos = country_centers[country_id] + rng.normal(
        scale=spec.airport_spread_deg, size=(n, 2)
    )
    lat = np.clip(pos[:, 0], -85.0, 85.0)
    lon = (pos[:, 1] + 180.0) % 360.0 - 180.0

    # --- hub weights and out-degrees ------------------------------------
    hub = rng.pareto(spec.hub_exponent, size=n) + 1.0
    mean_deg = spec.routes_per_airport
    degrees = np.maximum(
        1, np.round(mean_deg * hub / hub.mean()).astype(np.int64)
    )
    np.minimum(degrees, n - 1, out=degrees)

    # --- route targets: Gumbel top-k over log-hub minus distance cost ---
    # Domestic routes get a multiplicative preference (real route maps are
    # dominated by intra-country hops), which is what makes *country*
    # labels recoverable from topology in the Section V experiment.
    dist = great_circle(lat[:, None], lon[:, None], lat[None, :], lon[None, :])
    base = np.log(hub)[None, :] - dist / spec.decay_length_km
    same_country = country_id[:, None] == country_id[None, :]
    base += np.log(spec.domestic_bonus) * same_country
    np.fill_diagonal(base, -np.inf)
    gumbel = rng.gumbel(size=(n, n))
    scores = base + gumbel
    order = np.argsort(-scores, axis=1)

    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    dst = np.concatenate([order[i, : degrees[i]] for i in range(n)]).astype(np.int64)

    g = Graph(n, EdgeList(src, dst), directed=True)
    g.set_vertex_labels("continent", continent_names[continent_of])
    countries = np.asarray(
        [
            f"{continent_names[continent_of[i]]}-{country_local[i]:02d}"
            for i in range(n)
        ]
    )
    g.set_vertex_labels("country", countries)
    g.set_vertex_labels("lat", lat)
    g.set_vertex_labels("lon", lon)
    return g


def _proportional_assignment(
    n: int, buckets: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign n items to buckets with uneven (realistic) proportions.

    Continents differ in airport counts; we draw bucket shares from a
    Dirichlet concentrated enough that no continent is empty.
    """
    shares = rng.dirichlet(np.full(buckets, 8.0))
    counts = np.floor(shares * n).astype(np.int64)
    counts[counts == 0] = 1
    # Fix the rounding drift on the largest bucket.
    counts[np.argmax(counts)] += n - counts.sum()
    if counts.min() < 1 or counts.sum() != n:
        # Degenerate fallback: even split.
        counts = np.full(buckets, n // buckets, dtype=np.int64)
        counts[: n % buckets] += 1
    out = np.repeat(np.arange(buckets, dtype=np.int64), counts)
    return rng.permutation(out)
