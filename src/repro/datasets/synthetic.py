"""The paper's synthetic community benchmark (Section III-A).

1000 vertices, 10 communities of 100, each an α quasi-clique, 200
inter-community edges. ``alpha_sweep`` yields the α ∈ {0.1, ..., 1.0}
series used by Table I and Figs 5–7.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.core import Graph
from repro.graph.generators import planted_partition

__all__ = ["community_benchmark", "alpha_sweep", "PAPER_ALPHAS"]

PAPER_ALPHAS: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 11))


def community_benchmark(
    alpha: float,
    *,
    n: int = 1000,
    groups: int = 10,
    inter_edges: int = 200,
    seed: int | None = None,
) -> Graph:
    """One benchmark graph at community strength ``alpha``.

    Ground truth lives in vertex label ``"community"``. Defaults are the
    paper's exact parameters.
    """
    return planted_partition(
        n=n, groups=groups, alpha=alpha, inter_edges=inter_edges, seed=seed
    )


def alpha_sweep(
    alphas: tuple[float, ...] = PAPER_ALPHAS,
    *,
    n: int = 1000,
    groups: int = 10,
    inter_edges: int = 200,
    seed: int | None = None,
) -> Iterator[tuple[float, Graph]]:
    """Yield ``(alpha, graph)`` over the paper's α grid.

    Each graph gets an independent child seed so the sweep is
    reproducible yet the graphs are statistically independent.
    """
    seeds = np.random.SeedSequence(seed).spawn(len(alphas))
    for alpha, child in zip(alphas, seeds):
        yield alpha, community_benchmark(
            alpha,
            n=n,
            groups=groups,
            inter_edges=inter_edges,
            seed=np.random.default_rng(child),
        )
