"""The paper's V2V community-detection pipeline (Section III).

Embed with V2V, cluster the vectors with k-means (Lloyd, many restarts),
map clusters back to vertex communities. Timing is split into the two
phases Table I reports: the one-time *training* cost and the
sub-10-millisecond *clustering* cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.model import V2V, V2VConfig
from repro.graph.core import Graph
from repro.ml.kmeans import KMeans
from repro.obs.recorder import current_recorder

__all__ = ["V2VCommunityDetector", "V2VDetectionResult"]


@dataclass(frozen=True)
class V2VDetectionResult:
    """Communities plus the phase timings Table I compares."""

    membership: np.ndarray
    train_seconds: float
    cluster_seconds: float
    inertia: float
    model: V2V

    @property
    def num_communities(self) -> int:
        return int(self.membership.max()) + 1 if self.membership.size else 0


class V2VCommunityDetector:
    """Detect communities by k-means clustering of V2V embeddings.

    Parameters
    ----------
    k:
        Number of communities to extract.
    config:
        V2V configuration (paper's Table I uses ``dim=10``).
    n_init:
        k-means restarts; the paper uses 100.
    seed:
        Overrides the config seed for both stages when given.
    """

    def __init__(
        self,
        k: int,
        *,
        config: V2VConfig | None = None,
        n_init: int = 100,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        base = config or V2VConfig(dim=10)
        if seed is not None:
            base = V2VConfig(**{**base.__dict__, "seed": seed})
        self.config = base
        self.n_init = n_init

    def detect(self, graph: Graph) -> V2VDetectionResult:
        """Run both phases on ``graph`` and return labeled communities."""
        t0 = time.perf_counter()
        model = V2V(self.config).fit(graph)
        train_seconds = time.perf_counter() - t0
        return self._cluster(model, train_seconds)

    def detect_with_model(self, model: V2V) -> V2VDetectionResult:
        """Cluster an already-fitted model (training is a one-time cost —
        the paper reuses embeddings across tasks)."""
        return self._cluster(model, model.result.train_seconds)

    def _cluster(self, model: V2V, train_seconds: float) -> V2VDetectionResult:
        vectors = model.vectors
        rec = current_recorder()
        t0 = time.perf_counter()
        with rec.span("detect.cluster", k=self.k, n_init=self.n_init):
            km = KMeans(self.k, n_init=self.n_init, seed=self.config.seed)
            result = km.fit(vectors)
        cluster_seconds = time.perf_counter() - t0
        detection = V2VDetectionResult(
            membership=result.labels.astype(np.int64),
            train_seconds=train_seconds,
            cluster_seconds=cluster_seconds,
            inertia=result.inertia,
            model=model,
        )
        if rec.enabled:
            rec.set("detect.train_seconds", train_seconds)
            rec.set("detect.cluster_seconds", cluster_seconds)
            rec.event(
                "detect.done",
                num_communities=detection.num_communities,
                inertia=round(result.inertia, 6),
                cluster_seconds=round(cluster_seconds, 6),
            )
        return detection
