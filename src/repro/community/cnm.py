"""Clauset–Newman–Moore greedy modularity maximization.

Agglomerative: every vertex starts as its own community; the merge with
the largest modularity gain ΔQ is applied repeatedly; the partition at
the modularity peak is returned. The ΔQ bookkeeping follows the original
paper — sparse ΔQ rows, a lazily-invalidated global max-heap, and the
``a_i = k_i / 2m`` degree fractions — giving O(m d log n) behaviour on
sparse graphs.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.core import Graph
from repro.graph.metrics import modularity

__all__ = ["cnm_communities"]


def cnm_communities(
    g: Graph,
    *,
    target_communities: int | None = None,
) -> np.ndarray:
    """Community membership per vertex via CNM greedy modularity.

    Parameters
    ----------
    g:
        Undirected graph (weights honored).
    target_communities:
        If given, merging stops once this many communities remain
        (useful when k is known, as in the paper's benchmark); otherwise
        the modularity peak decides.

    Returns
    -------
    int64 membership array with community ids ``0..c-1``.
    """
    if g.directed:
        raise ValueError("CNM expects an undirected graph")
    n = g.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    src, dst = g.arc_array()
    w = g.edge_weights if g.edge_weights is not None else np.ones(src.shape[0])
    two_m = float(w.sum())
    if two_m == 0:
        return np.arange(n, dtype=np.int64)

    # e[i][j]: fraction of edge weight between communities i and j.
    e: list[dict[int, float]] = [dict() for _ in range(n)]
    for u, v, weight in zip(src, dst, w):
        if u == v:
            continue
        e[u][int(v)] = e[u].get(int(v), 0.0) + weight / two_m
    a = np.zeros(n)
    np.add.at(a, src, w / two_m)

    # ΔQ_ij = 2 (e_ij - a_i a_j) for connected pairs.
    dq: list[dict[int, float]] = [dict() for _ in range(n)]
    heap: list[tuple[float, int, int]] = []
    for i in range(n):
        for j, eij in e[i].items():
            if j > i:
                gain = 2.0 * (eij - a[i] * a[j])
                dq[i][j] = gain
                dq[j][i] = gain
                heapq.heappush(heap, (-gain, i, j))

    alive = np.ones(n, dtype=bool)
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    current_q = float(-np.sum(a**2) + sum(e[i].get(i, 0.0) for i in range(n)))
    best_q = current_q
    merges: list[tuple[int, int]] = []
    best_merge_count = 0
    num_communities = n
    stop_at = target_communities if target_communities is not None else 1

    while heap and num_communities > stop_at:
        neg_gain, i, j = heapq.heappop(heap)
        gain = -neg_gain
        if not (alive[i] and alive[j]):
            continue
        if dq[i].get(j) is None or not np.isclose(dq[i][j], gain):
            continue  # stale heap entry
        if target_communities is None and gain <= 0 and current_q >= best_q:
            break  # no positive merge left and we are at the peak

        # Merge community i into j (j absorbs i).
        alive[i] = False
        parent[i] = j
        merges.append((i, j))
        num_communities -= 1
        current_q += gain

        # Update ΔQ rows: neighbors of i ∪ neighbors of j.
        neighbors = set(dq[i]) | set(dq[j])
        neighbors.discard(i)
        neighbors.discard(j)
        new_row: dict[int, float] = {}
        for k in neighbors:
            if not alive[k]:
                continue
            in_i = k in dq[i]
            in_j = k in dq[j]
            if in_i and in_j:
                val = dq[i][k] + dq[j][k]
            elif in_i:
                val = dq[i][k] - 2.0 * a[j] * a[k]
            else:
                val = dq[j][k] - 2.0 * a[i] * a[k]
            new_row[k] = val
        for k, val in new_row.items():
            dq[k].pop(i, None)
            dq[k][j] = val
            lo, hi = (j, k) if j < k else (k, j)
            heapq.heappush(heap, (-val, lo, hi))
        dq[j] = new_row
        dq[i] = {}
        a[j] += a[i]
        a[i] = 0.0

        if target_communities is None and current_q > best_q:
            best_q = current_q
            best_merge_count = len(merges)

    if target_communities is None:
        # Roll the union-find back to the modularity peak by replaying.
        parent = np.arange(n, dtype=np.int64)
        for i, j in merges[:best_merge_count]:
            parent[i] = j

    roots = np.fromiter((find(v) for v in range(n)), dtype=np.int64, count=n)
    _, membership = np.unique(roots, return_inverse=True)
    return membership.astype(np.int64)


def cnm_modularity(g: Graph, **kwargs) -> float:
    """Convenience: modularity of the CNM partition."""
    return modularity(g, cnm_communities(g, **kwargs))
