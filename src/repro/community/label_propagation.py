"""Asynchronous label propagation (Raghavan et al. 2007) — extension.

Near-linear-time community detection: every vertex repeatedly adopts the
most frequent label among its neighbors until labels are stable. Used as
a cheap baseline in the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import Graph

__all__ = ["label_propagation_communities"]


def label_propagation_communities(
    g: Graph,
    *,
    seed: int | None = None,
    max_sweeps: int = 100,
) -> np.ndarray:
    """Community membership via asynchronous label propagation."""
    if g.directed:
        raise ValueError("label propagation expects an undirected graph")
    n = g.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    labels = np.arange(n, dtype=np.int64)
    indptr, indices = g.indptr, g.indices
    weights = g.edge_weights

    for _sweep in range(max_sweeps):
        changed = 0
        for v in rng.permutation(n):
            s, e = indptr[v], indptr[v + 1]
            if s == e:
                continue
            nbr_labels = labels[indices[s:e]]
            if weights is None:
                votes = np.bincount(nbr_labels)
            else:
                votes = np.zeros(int(nbr_labels.max()) + 1)
                np.add.at(votes, nbr_labels, weights[s:e])
            best = votes.max()
            winners = np.flatnonzero(votes == best)
            choice = int(winners[rng.integers(0, winners.shape[0])])
            if choice != labels[v]:
                labels[v] = choice
                changed += 1
        if changed == 0:
            break
    _, out = np.unique(labels, return_inverse=True)
    return out.astype(np.int64)
