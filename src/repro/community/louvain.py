"""Louvain modularity optimization (Blondel et al. 2008) — extension.

Not in the paper's comparison set but the de-facto fast graph-native
baseline; the ablation bench uses it to put the CNM/GN runtimes in
context. Standard two-phase loop: local moves to the neighboring
community with the best ΔQ, then graph aggregation, until modularity
stops improving.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import EdgeList, Graph

__all__ = ["louvain_communities"]


def louvain_communities(
    g: Graph,
    *,
    seed: int | None = None,
    max_passes: int = 10,
    min_gain: float = 1e-7,
) -> np.ndarray:
    """Community membership per vertex via the Louvain method."""
    if g.directed:
        raise ValueError("Louvain expects an undirected graph")
    n = g.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)

    # Work on an arc-list representation we can aggregate cheaply.
    src, dst = g.arc_array()
    w = (
        g.edge_weights.copy()
        if g.edge_weights is not None
        else np.ones(src.shape[0])
    )
    mapping = np.arange(n, dtype=np.int64)  # original vertex -> current comm

    for _pass in range(max_passes):
        num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if src.size else 0
        if num_nodes == 0:
            break
        membership, improved = _one_level(num_nodes, src, dst, w, rng, min_gain)
        mapping = membership[mapping]
        if not improved:
            break
        # Aggregate: communities become vertices; parallel arcs merge.
        csrc, cdst = membership[src], membership[dst]
        key = csrc * (membership.max() + 1) + cdst
        uniq, inv = np.unique(key, return_inverse=True)
        agg_w = np.zeros(uniq.shape[0])
        np.add.at(agg_w, inv, w)
        src = (uniq // (membership.max() + 1)).astype(np.int64)
        dst = (uniq % (membership.max() + 1)).astype(np.int64)
        w = agg_w
        if src.shape[0] == 0:
            break

    _, out = np.unique(mapping, return_inverse=True)
    return out.astype(np.int64)


def _one_level(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    rng: np.random.Generator,
    min_gain: float,
) -> tuple[np.ndarray, bool]:
    """Local-move phase on an arc list; returns (membership, improved)."""
    two_m = float(w.sum())
    if two_m == 0:
        return np.arange(n, dtype=np.int64), False

    order = np.argsort(src, kind="stable")
    s_src, s_dst, s_w = src[order], dst[order], w[order]
    counts = np.bincount(s_src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    degree = np.zeros(n)
    np.add.at(degree, src, w)
    # Self-loop weight per node (from aggregation).
    self_w = np.zeros(n)
    loops = src == dst
    np.add.at(self_w, src[loops], w[loops])

    membership = np.arange(n, dtype=np.int64)
    comm_degree = degree.copy()
    improved_any = False

    for _sweep in range(100):
        moved = 0
        for v in rng.permutation(n):
            s, e = indptr[v], indptr[v + 1]
            nbrs, nw = s_dst[s:e], s_w[s:e]
            old = membership[v]
            comm_degree[old] -= degree[v]
            # Weight from v to each neighboring community.
            link: dict[int, float] = {}
            for u, weight in zip(nbrs, nw):
                if u == v:
                    continue
                c = int(membership[u])
                link[c] = link.get(c, 0.0) + weight
            best_comm, best_gain = old, 0.0
            base = link.get(old, 0.0) - degree[v] * comm_degree[old] / two_m
            for c, kin in link.items():
                gain = (kin - degree[v] * comm_degree[c] / two_m) - base
                if gain > best_gain + min_gain:
                    best_gain, best_comm = gain, c
            membership[v] = best_comm
            comm_degree[best_comm] += degree[v]
            if best_comm != old:
                moved += 1
        if moved == 0:
            break
        improved_any = True
    _, compact = np.unique(membership, return_inverse=True)
    return compact.astype(np.int64), improved_any
