"""Girvan–Newman community detection (edge-betweenness removal).

The classic divisive algorithm: repeatedly recompute edge betweenness,
delete the highest-betweenness edge, and watch components split; report
the partition with maximum modularity along the way (or stop once a
target component count is reached).

Exact GN is O(m²n) — the cost the paper's Table I documents (hours at
n = 1000). Two tractability controls are provided, both standard:

- ``sample_sources``: estimate betweenness from a random subset of BFS
  sources (Brandes' sampled variant).
- ``max_removals``: cap on removed edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import EdgeList, Graph
from repro.graph.metrics import modularity
from repro.graph.traversal import connected_components, edge_betweenness

__all__ = ["girvan_newman_communities"]


def girvan_newman_communities(
    g: Graph,
    *,
    target_communities: int | None = None,
    max_removals: int | None = None,
    sample_sources: int | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Community membership via Girvan–Newman.

    Parameters
    ----------
    g:
        Undirected graph.
    target_communities:
        Stop as soon as the graph splits into this many components and
        return that partition. If None, run until ``max_removals`` (or
        all edges) and return the modularity-peak partition.
    max_removals:
        Upper bound on edge removals (None = up to all edges).
    sample_sources:
        If set, betweenness is estimated from this many random BFS
        sources per iteration instead of all n.
    seed:
        Seed for source sampling.
    """
    if g.directed:
        raise ValueError("Girvan–Newman expects an undirected graph")
    n = g.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)

    e = g.edge_list
    src = e.src.copy()
    dst = e.dst.copy()
    alive = np.ones(src.shape[0], dtype=bool)

    best_membership = connected_components(g)
    best_q = modularity(g, best_membership)
    removals = 0
    limit = max_removals if max_removals is not None else int(alive.sum())

    current = g
    while alive.any() and removals < limit:
        if sample_sources is not None and sample_sources < n:
            sources = rng.choice(n, size=sample_sources, replace=False)
        else:
            sources = None
        bw = edge_betweenness(current, sources=sources)
        if not bw:
            break
        (u, v), _score = max(bw.items(), key=lambda kv: (kv[1], -kv[0][0], -kv[0][1]))
        # Remove that edge from the live set (canonical order match).
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        hit = alive & (lo == u) & (hi == v)
        if not hit.any():
            break
        alive[np.flatnonzero(hit)[0]] = False
        removals += 1

        current = Graph(n, EdgeList(src[alive], dst[alive]), directed=False)
        membership = connected_components(current)
        num_comms = int(membership.max()) + 1
        if target_communities is not None:
            if num_comms >= target_communities:
                return membership
        else:
            q = modularity(g, membership)
            if q > best_q:
                best_q = q
                best_membership = membership

    if target_communities is not None:
        return connected_components(current)
    return best_membership
