"""Community detection: graph-native baselines and the V2V pipeline.

The paper compares V2V + k-means against two classic graph algorithms:
CNM (Clauset–Newman–Moore greedy modularity, top-down in the paper's
framing) and Girvan–Newman (edge-betweenness removal). Louvain and label
propagation are provided as extensions for the ablation benches.
"""

from repro.community.cnm import cnm_communities
from repro.community.consensus import ConsensusResult, consensus_communities
from repro.community.girvan_newman import girvan_newman_communities
from repro.community.label_propagation import label_propagation_communities
from repro.community.louvain import louvain_communities
from repro.community.v2v_detector import V2VCommunityDetector, V2VDetectionResult

__all__ = [
    "cnm_communities",
    "consensus_communities",
    "ConsensusResult",
    "girvan_newman_communities",
    "louvain_communities",
    "label_propagation_communities",
    "V2VCommunityDetector",
    "V2VDetectionResult",
]
