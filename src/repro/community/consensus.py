"""Consensus community detection across embedding seeds.

A single V2V run carries seed noise (random init, walk sampling, k-means
restarts). Consensus clustering runs the pipeline ``runs`` times with
spawned seeds, accumulates a vertex–vertex co-assignment matrix, and
clusters *that* — the standard variance-reduction wrapper (Lancichinetti
& Fortunato 2012) applied to the paper's detector. The co-assignment
fraction is also a per-pair confidence the single-run method cannot
provide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import V2V, V2VConfig
from repro.graph.core import Graph
from repro.ml.kmeans import KMeans

__all__ = ["ConsensusResult", "consensus_communities"]


@dataclass(frozen=True)
class ConsensusResult:
    """Final membership plus the evidence behind it."""

    membership: np.ndarray
    coassignment: np.ndarray
    run_memberships: list[np.ndarray]
    mean_pair_confidence: float

    @property
    def num_runs(self) -> int:
        return len(self.run_memberships)


def consensus_communities(
    graph: Graph,
    k: int,
    *,
    runs: int = 5,
    config: V2VConfig | None = None,
    n_init: int = 20,
    seed: int | None = 0,
) -> ConsensusResult:
    """Detect communities by consensus over ``runs`` independent V2V runs.

    Each run uses an independently spawned seed for walks, training and
    clustering. The co-assignment matrix ``C[i, j]`` — the fraction of
    runs placing i and j together — is treated as a similarity matrix
    and clustered with k-means on its rows (a spectral-free consensus
    step adequate at the paper's scales).

    ``mean_pair_confidence`` is the average of ``max(C, 1-C)`` over
    pairs: 1.0 means every run agreed on every pair.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if runs < 1:
        raise ValueError("runs must be >= 1")
    base = config or V2VConfig(dim=16)
    n = graph.n
    coassign = np.zeros((n, n))
    memberships: list[np.ndarray] = []
    children = np.random.SeedSequence(seed).spawn(runs)
    for child in children:
        run_seed = int(child.generate_state(1)[0])
        cfg = V2VConfig(**{**base.__dict__, "seed": run_seed})
        model = V2V(cfg).fit(graph)
        labels = KMeans(k, n_init=n_init, seed=run_seed).fit_predict(
            model.vectors
        )
        memberships.append(labels)
        same = labels[:, None] == labels[None, :]
        coassign += same
    coassign /= runs

    final = KMeans(k, n_init=n_init, seed=seed).fit_predict(coassign)
    iu = np.triu_indices(n, k=1)
    pair_conf = np.maximum(coassign[iu], 1.0 - coassign[iu])
    return ConsensusResult(
        membership=final.astype(np.int64),
        coassignment=coassign,
        run_memberships=memberships,
        mean_pair_confidence=float(pair_conf.mean()) if iu[0].size else 1.0,
    )
