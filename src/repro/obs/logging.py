"""Structured logging on top of the stdlib ``logging`` tree.

Every pipeline event is a *named* record with typed fields, not a
formatted string: ``log.info("pool.serial_fallback", pending=3)``. Two
sinks render the same records:

- a human handler (stderr by default) — ``HH:MM:SS LEVEL logger event
  key=value ...`` — for interactive runs;
- a JSONL handler — one JSON object per line with ``ts``, ``level``,
  ``logger``, ``event`` and the fields verbatim — the machine-readable
  event stream ``--log-json`` writes and the chaos tests parse.

Loggers live under the ``repro`` root, so one :func:`configure_logging`
call scopes the whole library without touching the global root logger.
stdout is never used: command results own stdout, telemetry owns stderr
(see ISSUE satellite on the CLI warning paths).
"""

from __future__ import annotations

import io
import json
import logging
import sys
import time
from pathlib import Path
from typing import Any, TextIO

__all__ = [
    "StructuredLogger",
    "get_logger",
    "configure_logging",
    "teardown_logging",
    "JsonlFormatter",
    "HumanFormatter",
    "parse_jsonl",
]

ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_FIELDS_ATTR = "repro_fields"
_EVENT_ATTR = "repro_event"


def _json_default(value: Any) -> Any:
    """Last-resort JSON coercion so one exotic field can't torch a line."""
    if hasattr(value, "tolist"):  # numpy scalars/arrays
        return value.tolist()
    if isinstance(value, Path):
        return str(value)
    return repr(value)


class JsonlFormatter(logging.Formatter):
    """One JSON object per record: ``{ts, level, logger, event, ...}``."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, _EVENT_ATTR, record.getMessage()),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, value)
        if record.exc_info and record.exc_info[1] is not None:
            payload["exception"] = repr(record.exc_info[1])
        return json.dumps(payload, default=_json_default)


class HumanFormatter(logging.Formatter):
    """Compact single-line rendering for interactive stderr output."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        event = getattr(record, _EVENT_ATTR, record.getMessage())
        parts = [stamp, record.levelname.lower(), record.name, str(event)]
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            parts.extend(f"{k}={_fmt_value(v)}" for k, v in fields.items())
        return " ".join(parts)


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return f'"{text}"' if " " in text else text


class StructuredLogger:
    """Thin wrapper giving ``logging.Logger`` an event-first signature.

    ``log.info("walks.done", walks=600, seconds=0.42)`` — the event name
    is the stable, greppable identity; fields carry the data. The
    wrapped stdlib logger keeps propagation, levels, and handler wiring
    exactly as the ``logging`` module defines them.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def stdlib(self) -> logging.Logger:
        return self._logger

    def log(self, level: int, event: str, /, **fields: Any) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(
                level,
                event,
                extra={_EVENT_ATTR: event, _FIELDS_ATTR: fields},
            )

    def debug(self, event: str, /, **fields: Any) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, /, **fields: Any) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, /, **fields: Any) -> None:
        self.log(logging.WARNING, event, **fields)

    def error(self, event: str, /, **fields: Any) -> None:
        self.log(logging.ERROR, event, **fields)


def get_logger(name: str = "") -> StructuredLogger:
    """A structured logger under the ``repro`` tree (e.g. ``repro.walks``)."""
    full = f"{ROOT_LOGGER_NAME}.{name}" if name else ROOT_LOGGER_NAME
    return StructuredLogger(logging.getLogger(full))


def configure_logging(
    level: str = "info",
    *,
    json_path: str | Path | None = None,
    stream: TextIO | None = None,
    human: bool = True,
) -> list[logging.Handler]:
    """Attach sinks to the ``repro`` root logger; returns the handlers.

    ``level`` gates the human sink; the JSONL sink always records at
    DEBUG so the machine stream stays complete regardless of console
    verbosity. Call :func:`teardown_logging` with the returned handlers
    to detach (the CLI does this per command so repeated in-process
    invocations never double-log).
    """
    if level not in _LEVELS:
        raise ValueError(f"level must be one of {sorted(_LEVELS)}")
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(logging.DEBUG)
    handlers: list[logging.Handler] = []
    if human:
        console = logging.StreamHandler(stream if stream is not None else sys.stderr)
        console.setLevel(_LEVELS[level])
        console.setFormatter(HumanFormatter())
        root.addHandler(console)
        handlers.append(console)
    if json_path is not None:
        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        jsonl = logging.FileHandler(json_path, mode="w", encoding="utf-8")
        jsonl.setLevel(logging.DEBUG)
        jsonl.setFormatter(JsonlFormatter())
        root.addHandler(jsonl)
        handlers.append(jsonl)
    return handlers


def teardown_logging(handlers: list[logging.Handler]) -> None:
    """Detach and close handlers attached by :func:`configure_logging`."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in handlers:
        root.removeHandler(handler)
        handler.close()


def parse_jsonl(
    source: str | Path | TextIO, *, on_error: str = "raise"
) -> list[dict]:
    """Parse a JSONL event stream into dicts (skipping blank lines).

    With ``on_error="raise"`` (the default) a torn line raises
    ``json.JSONDecodeError`` — the chaos tests use this to assert the
    stream survived a worker kill intact. ``on_error="skip"`` drops
    unparseable lines instead, which is how ``repro report`` reads a
    stream truncated by a hard crash: every intact line still renders.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    events: list[dict] = []
    for line in io.StringIO(text):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if on_error == "raise":
                raise
    return events
