"""repro.obs — pipeline telemetry: logging, metrics, tracing, manifests.

The observability subsystem every pipeline layer reports through:

- :mod:`repro.obs.logging` — structured events, human + JSONL sinks.
- :mod:`repro.obs.metrics` — counters / gauges / histograms / timers.
- :mod:`repro.obs.tracing` — phase-scoped spans over the event stream.
- :mod:`repro.obs.recorder` — the per-run hub and the no-op default.
- :mod:`repro.obs.slab` — shared-memory per-worker metric rows.
- :mod:`repro.obs.manifest` — the schema-versioned run manifest.
- :mod:`repro.obs.report` — human rendering (``repro report``).
- :mod:`repro.obs.profiler` — opt-in sampling profiler (collapsed stacks).
- :mod:`repro.obs.resources` — per-stage RSS/CPU/GC/allocation deltas.
- :mod:`repro.obs.export` — Chrome Trace Event export (Perfetto).
- :mod:`repro.obs.live` — live status file + the ``repro top`` monitor.

Instrumented code does::

    from repro.obs import current_recorder

    rec = current_recorder()          # NULL_RECORDER unless installed
    with rec.span("walks.generate", n=g.n):
        ...
        rec.inc("walks.total", corpus.num_walks)

and pays near-zero cost when observability is off (see
docs/observability.md and the overhead guard benchmark).
"""

from repro.obs.logging import (
    HumanFormatter,
    JsonlFormatter,
    StructuredLogger,
    configure_logging,
    get_logger,
    parse_jsonl,
    teardown_logging,
)
from repro.obs.manifest import (
    REQUIRED_KEYS,
    SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    ObsConfig,
    Recorder,
    current_recorder,
    install,
    session,
    use,
)
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.live import (
    LiveStatusFile,
    read_status,
    render_top,
    top_command,
)
from repro.obs.profiler import SamplingProfiler, StackProfile
from repro.obs.resources import ResourceSnapshot, resource_delta
from repro.obs.slab import HOGWILD_SLOTS, MetricsSlab, MetricsSlabSpec
from repro.obs.tracing import Span, Tracer

__all__ = [
    # logging
    "StructuredLogger",
    "get_logger",
    "configure_logging",
    "teardown_logging",
    "JsonlFormatter",
    "HumanFormatter",
    "parse_jsonl",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    # tracing
    "Span",
    "Tracer",
    # recorder
    "ObsConfig",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "install",
    "use",
    "session",
    # slab
    "MetricsSlab",
    "MetricsSlabSpec",
    "HOGWILD_SLOTS",
    # manifest
    "SCHEMA_VERSION",
    "REQUIRED_KEYS",
    "ManifestError",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
    # profiler
    "SamplingProfiler",
    "StackProfile",
    # resources
    "ResourceSnapshot",
    "resource_delta",
    # export
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    # live
    "LiveStatusFile",
    "read_status",
    "render_top",
    "top_command",
]
