"""Phase-scoped trace spans over the structured log + metrics registry.

A span marks one pipeline phase — walk generation, a training epoch, a
k-means fit — with a begin/end event pair in the JSONL stream and its
duration observed into the ``span.<name>.seconds`` histogram. Spans
nest: each carries its parent's name path, so the stream reconstructs
the phase tree (``pipeline.fit > walks.generate > ...``) without any
global collector.

Span identity is process-local and cheap (a monotonically increasing
integer), deliberately not a distributed trace id: the pipeline is one
process tree and the JSONL file is the single sink.
"""

from __future__ import annotations

import itertools
import time
from typing import Any

from repro.obs.logging import StructuredLogger
from repro.obs.metrics import MetricsRegistry, NullRegistry

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """Context manager for one phase; emits begin/end events.

    ``attrs`` ride on both events; anything set via :meth:`annotate`
    inside the block rides on the end event only (e.g. a loss computed
    mid-phase). An exception inside the block marks the end event with
    ``status="error"`` and the exception repr, then propagates.
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent", "_start", "seconds")

    def __init__(
        self, tracer: "Tracer", name: str, parent: "Span | None", attrs: dict
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.span_id = next(tracer._ids)
        self._start = 0.0
        self.seconds = 0.0

    @property
    def path(self) -> str:
        return f"{self.parent.path}>{self.name}" if self.parent else self.name

    def annotate(self, **attrs: Any) -> None:
        """Attach fields to the span's end event."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        self.tracer._stack.append(self)
        self.tracer.log.debug(
            "span.begin",
            span=self.name,
            span_id=self.span_id,
            parent_id=self.parent.span_id if self.parent else None,
            path=self.path,
            **self.attrs,
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer.registry.observe(f"span.{self.name}.seconds", self.seconds)
        fields: dict[str, Any] = {
            "span": self.name,
            "span_id": self.span_id,
            "path": self.path,
            "seconds": round(self.seconds, 6),
            "status": "error" if exc is not None else "ok",
            **self.attrs,
        }
        if exc is not None:
            fields["exception"] = repr(exc)
        self.tracer.log.info("span.end", **fields)


class _NullSpan:
    """Inert span: the disabled-observability path; shared singleton."""

    __slots__ = ()
    name = ""
    seconds = 0.0

    def annotate(self, **attrs: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Factory for spans bound to one logger + registry pair."""

    def __init__(
        self, log: StructuredLogger, registry: MetricsRegistry | NullRegistry
    ) -> None:
        self.log = log
        self.registry = registry
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    def span(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1] if self._stack else None
        return Span(self, name, parent, attrs)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None
