"""The pipeline's telemetry hub: one Recorder per run, or the no-op.

A :class:`Recorder` bundles the three observability primitives —
structured logger, metrics registry, tracer — behind a single handle
that instrumented code fetches with :func:`current_recorder`. When no
recorder is installed (the default), the shared :data:`NULL_RECORDER`
comes back and every call is a no-op; embedding quality and RNG streams
are untouched either way (the bitwise-identity tests assert this).

Install scopes:

- :func:`use` — context manager installing a recorder for a block
  (library embedding, tests).
- :func:`session` — the full run lifecycle the CLI uses: configure log
  sinks from an :class:`ObsConfig`, install a recorder, and on exit
  write the run manifest and detach the sinks.

Fork safety: worker processes inherit the parent's module globals, so a
recorder pins its creating PID and :func:`current_recorder` returns the
no-op in any other process. Cross-process telemetry therefore flows
through explicit channels only — the :mod:`repro.obs.slab` metrics slab
and values returned from worker tasks — never through accidentally
shared file handles (which would interleave torn JSONL lines).
"""

from __future__ import annotations

import contextlib
import logging as _stdlib_logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.obs.logging import (
    StructuredLogger,
    configure_logging,
    get_logger,
    teardown_logging,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.profiler import DEFAULT_HZ, StackProfile
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "ObsConfig",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "install",
    "use",
    "session",
]


@dataclass(frozen=True)
class ObsConfig:
    """Declarative observability settings (CLI flags / ``V2VConfig``).

    ``enabled=False`` is the hard opt-out: no recorder is installed at
    all. ``trace=True`` additionally mirrors span begin/end events to
    the human sink (they always go to the JSONL sink when one exists).
    ``metrics_out`` is where :func:`session` writes the run manifest.
    ``profile=True`` arms the sampling profiler
    (:mod:`repro.obs.profiler`) at ``profile_hz``: per-stage collapsed
    stacks in the parent plus per-pooled-worker profiles collected
    through the environment, all landing in the manifest's ``profiles``
    section. ``status_path`` keeps a live status document
    (:mod:`repro.obs.live`) up to date for ``repro top``.
    """

    enabled: bool = True
    log_level: str = "info"
    log_json: str | None = None
    metrics_out: str | None = None
    trace: bool = False
    profile: bool = False
    profile_hz: float = DEFAULT_HZ
    status_path: str | None = None

    def __post_init__(self) -> None:
        if self.log_level not in ("debug", "info", "warning", "error"):
            raise ValueError("log_level must be debug|info|warning|error")
        if self.profile_hz <= 0:
            raise ValueError("profile_hz must be > 0")


class Recorder:
    """Live telemetry: logger + metrics + tracer, PID-pinned.

    ``trace=True`` lowers the span begin events from DEBUG to INFO so
    they show on the human sink; the JSONL sink records at DEBUG always.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        logger: StructuredLogger | None = None,
        trace: bool = False,
        profile_hz: float | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.log = logger if logger is not None else get_logger()
        self.tracer = Tracer(self.log, self.registry)
        self.trace = trace
        self.pid = os.getpid()
        #: Sampling rate for the per-stage profiler; None = profiling off.
        self.profile_hz = profile_hz
        #: Collapsed-stack profiles keyed by name (stage.<name>, workers).
        self.profiles: dict[str, StackProfile] = {}
        #: Per-stage resource ledger rows appended by Pipeline.execute.
        self.stage_reports: list[dict] = []
        #: Pressure-watchdog samples (repro.resilience.guard); the
        #: manifest keeps them under "pressure".
        self.pressure_records: list[dict] = []
        #: Live status document for `repro top`; set by session().
        self.live = None

    # Events ------------------------------------------------------------
    def event(self, name: str, /, *, level: str = "info", **fields: Any) -> None:
        """Emit one structured event to every configured sink."""
        self.log.log(
            getattr(_stdlib_logging, level.upper()), name, **fields
        )

    # Spans ---------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        return self.tracer.span(name, **attrs)

    # Metrics (delegation keeps call sites one-liner) ---------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.registry.inc(name, amount)

    def set(self, name: str, value: float) -> None:
        self.registry.set(name, value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def time(self, name: str):
        return self.registry.time(name)

    # Performance observability ------------------------------------------
    def add_profile(self, name: str, profile: StackProfile) -> None:
        """Merge a collapsed-stack profile under ``name`` (accumulating)."""
        existing = self.profiles.get(name)
        if existing is None:
            self.profiles[name] = profile
        else:
            existing.merge(profile)

    def add_stage_report(self, report: dict) -> None:
        """Append one per-stage resource row (Pipeline.execute calls this)."""
        self.stage_reports.append(report)

    def add_pressure_record(self, record: dict) -> None:
        """Append one watchdog sample (PressureWatchdog calls this)."""
        self.pressure_records.append(record)

    def profile_summaries(self) -> dict[str, dict]:
        return {name: prof.summary() for name, prof in self.profiles.items()}


class NullRecorder:
    """Inert recorder: the disabled path. All methods are no-ops."""

    enabled = False
    registry = NULL_REGISTRY
    trace = False
    pid = -1
    profile_hz = None
    live = None

    def event(self, name: str, /, *, level: str = "info", **fields: Any) -> None:
        return None

    def span(self, name: str, **attrs: Any):
        return NULL_SPAN

    def inc(self, name: str, amount: float = 1.0) -> None:
        return None

    def set(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def time(self, name: str):
        return NULL_REGISTRY.time(name)

    def add_profile(self, name: str, profile: Any) -> None:
        return None

    def add_stage_report(self, report: dict) -> None:
        return None

    def add_pressure_record(self, record: dict) -> None:
        return None

    def profile_summaries(self) -> dict[str, dict]:
        return {}


def _classify_exit(exc: BaseException) -> tuple[str, str]:
    """Map the exception escaping a session to a manifest status.

    Cooperative shutdown (``RunInterrupted``) and a raw Ctrl-C are both
    ``interrupted`` — the run wound down on purpose; anything else is a
    genuine ``failed``. Lazy import: resilience imports obs, so the
    reverse edge must stay function-local.
    """
    from repro.resilience.lifecycle import RunInterrupted

    if isinstance(exc, RunInterrupted):
        return "interrupted", exc.reason
    if isinstance(exc, KeyboardInterrupt):
        return "interrupted", "keyboard_interrupt"
    return "failed", type(exc).__name__


NULL_RECORDER = NullRecorder()

_current: Recorder | NullRecorder = NULL_RECORDER


def current_recorder() -> Recorder | NullRecorder:
    """The active recorder, or the no-op if none / wrong process.

    The PID check makes forked pool workers observe the no-op even
    though they inherit the parent's module state — their telemetry
    travels through explicit slabs/return values instead.
    """
    rec = _current
    if rec.enabled and rec.pid != os.getpid():
        return NULL_RECORDER
    return rec


def install(recorder: Recorder | NullRecorder | None) -> None:
    """Set (or with ``None`` clear) the process-wide recorder."""
    global _current
    _current = recorder if recorder is not None else NULL_RECORDER


@contextlib.contextmanager
def use(recorder: Recorder | NullRecorder) -> Iterator[Recorder | NullRecorder]:
    """Install ``recorder`` for the duration of the block."""
    previous = _current
    install(recorder)
    try:
        yield recorder
    finally:
        install(previous)


@contextlib.contextmanager
def session(
    config: ObsConfig | None,
    *,
    run_config: dict | None = None,
    stream=None,
) -> Iterator[Recorder | NullRecorder]:
    """One observed run: sinks up, recorder installed, manifest out.

    ``run_config`` is the caller's configuration fingerprint — it lands
    verbatim in the manifest so a metrics file is self-describing.
    ``stream`` overrides the human sink (tests pass a StringIO). With
    ``config=None`` or ``enabled=False`` the block runs with the no-op
    recorder and nothing is written.
    """
    if config is None or not config.enabled:
        with use(NULL_RECORDER):
            yield NULL_RECORDER
        return

    handlers = configure_logging(
        config.log_level, json_path=config.log_json, stream=stream
    )
    recorder = Recorder(
        trace=config.trace,
        profile_hz=config.profile_hz if config.profile else None,
    )
    if config.trace:
        # Mirror span events on the human sink too: drop its bar to DEBUG.
        for handler in handlers:
            handler.setLevel(_stdlib_logging.DEBUG)
    profile_scope = _worker_profiling(config) if config.profile else None
    if config.status_path is not None:
        from repro.obs.live import LiveStatusFile

        recorder.live = LiveStatusFile(config.status_path)
        recorder.live.update(
            command=(run_config or {}).get("command"),
            metrics_out=config.metrics_out,
        )
    try:
        with use(recorder):
            recorder.event(
                "run.begin",
                pid=os.getpid(),
                log_json=config.log_json,
                metrics_out=config.metrics_out,
                profile=config.profile,
            )
            status, reason = "completed", None
            try:
                yield recorder
            except BaseException as exc:
                status, reason = _classify_exit(exc)
                raise
            finally:
                if profile_scope is not None:
                    profile_scope.collect(recorder)
                if recorder.live is not None:
                    recorder.live.update(status=status, interrupt_reason=reason)
                recorder.event(
                    "run.end", status=status, **({"reason": reason} if reason else {})
                )
                if config.metrics_out is not None:
                    from repro.obs.manifest import write_manifest

                    write_manifest(
                        Path(config.metrics_out),
                        registry=recorder.registry,
                        run_config=run_config or {},
                        events_path=config.log_json,
                        status=status,
                        interrupt_reason=reason,
                        stage_reports=recorder.stage_reports or None,
                        profiles=recorder.profile_summaries() or None,
                        pressure=recorder.pressure_records or None,
                    )
    finally:
        teardown_logging(handlers)


class _WorkerProfileScope:
    """Environment-armed worker profiling for one observability session.

    Exports ``REPRO_PROFILE_DIR``/``REPRO_PROFILE_HZ`` into a fresh
    temporary directory *before* worker processes fork (persistent pools
    are shut down so the next map pays a re-fork and inherits the env),
    then merges every worker dump into the recorder on exit.
    """

    def __init__(self, config: ObsConfig) -> None:
        import tempfile

        from repro.obs.profiler import worker_profile_env

        self.tmpdir = tempfile.TemporaryDirectory(prefix="repro_profile_")
        self._saved: dict[str, str | None] = {}
        for key, value in worker_profile_env(
            self.tmpdir.name, config.profile_hz
        ).items():
            self._saved[key] = os.environ.get(key)
            os.environ[key] = value
        # Existing pooled workers predate the env export; refork them so
        # every worker of this run samples itself.
        from repro.parallel.persistent import shutdown_pools

        shutdown_pools()

    def collect(self, recorder: Recorder) -> None:
        from repro.obs.profiler import collect_worker_profiles

        try:
            merged = collect_worker_profiles(self.tmpdir.name)
            if merged is not None:
                recorder.add_profile("workers", merged)
        finally:
            for key, value in self._saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:  # pragma: no cover - nested profiled sessions
                    os.environ[key] = value
            self.tmpdir.cleanup()


def _worker_profiling(config: ObsConfig) -> "_WorkerProfileScope | None":
    try:
        return _WorkerProfileScope(config)
    except OSError:  # pragma: no cover - tmpdir creation failed
        return None
