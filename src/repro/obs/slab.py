"""Cross-process metrics slab over a shared-memory segment.

The Hogwild trainer and the parallel walk engine run their hot loops in
worker processes, where the parent's :class:`~repro.obs.recorder.Recorder`
is deliberately inert (fork guard). Their telemetry travels through this
slab instead: a ``(workers × slots)`` float64 matrix in a
:class:`repro.parallel.shm.SharedArray`. Each worker owns one row and
writes it lock-free (same benign-race regime as Hogwild itself — a row
has a single writer, so there is no race at all); the parent reads the
whole slab whenever it wants a progress snapshot.

The slab rides an *existing* shared segment (usually one registered in
the trainer's ``shared_arrays()`` scope) so its lifetime — including
unlink-on-crash — is governed by the same machinery the /dev/shm leak
tests already cover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.shm import SharedArray, SharedArraySpec

__all__ = ["MetricsSlab", "MetricsSlabSpec", "HOGWILD_SLOTS", "SUPERVISOR_SLOTS"]

# Slot layout used by the Hogwild trainer's per-worker progress rows.
# "cancel" is the lifecycle flag word: the parent broadcasts 1.0 into it
# when cancellation is requested and each worker polls its own row per
# batch — the lock-free path by which a SIGTERM in the parent reaches
# loops running in other processes. "updated" is the worker's heartbeat:
# a wall-clock stamp refreshed per batch so an external monitor
# (``repro top``) can age each row without any extra IPC.
HOGWILD_SLOTS = ("batches", "examples", "loss_sum", "epoch", "cancel", "updated")

# Slot layout used by the worker supervisor's liveness rows: the last
# heartbeat timestamp (time.monotonic), items completed, total beats.
SUPERVISOR_SLOTS = ("heartbeat", "items_done", "beats")


@dataclass(frozen=True)
class MetricsSlabSpec:
    """Picklable identity of a slab: segment spec + slot names."""

    array: SharedArraySpec
    slots: tuple[str, ...]

    @property
    def workers(self) -> int:
        return int(self.array.shape[0])


class MetricsSlab:
    """A (workers × slots) shared float64 matrix of live worker metrics."""

    def __init__(
        self,
        spec: MetricsSlabSpec,
        array: np.ndarray,
        *,
        shared: SharedArray | None = None,
    ) -> None:
        self.spec = spec
        self._array = array
        self._shared = shared  # only set for attached (worker-side) slabs
        self._slot_index = {name: i for i, name in enumerate(spec.slots)}

    # Construction -------------------------------------------------------
    @classmethod
    def over(cls, shared: SharedArray, slots: tuple[str, ...]) -> "MetricsSlab":
        """Wrap a parent-owned segment (e.g. one from a shared scope)."""
        if shared.spec.shape != (shared.spec.shape[0], len(slots)):
            raise ValueError(
                f"segment shape {shared.spec.shape} does not match "
                f"{len(slots)} slots"
            )
        shared.array[:] = 0.0
        return cls(MetricsSlabSpec(shared.spec, tuple(slots)), shared.array)

    @classmethod
    def attach(cls, spec: MetricsSlabSpec) -> "MetricsSlab":
        """Worker-side mapping; call :meth:`close` when the shard ends."""
        shared = SharedArray.attach(spec.array)
        return cls(spec, shared.array, shared=shared)

    def close(self) -> None:
        """Release a worker-side mapping (no-op for parent-side views)."""
        if self._shared is not None:
            self._shared.close()

    def __enter__(self) -> "MetricsSlab":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # Worker-side writes ---------------------------------------------------
    def add(self, worker: int, slot: str, amount: float) -> None:
        self._array[worker, self._slot_index[slot]] += amount

    def put(self, worker: int, slot: str, value: float) -> None:
        self._array[worker, self._slot_index[slot]] = value

    def broadcast(self, slot: str, value: float) -> None:
        """Write ``value`` into ``slot`` for every worker row at once.

        Used by the parent to flip the lifecycle ``cancel`` flag. A
        whole-column numpy store with no allocation beyond the scalar,
        so it is safe to call from a signal-handler-driven callback.
        """
        self._array[:, self._slot_index[slot]] = value

    # Parent-side reads ----------------------------------------------------
    def get(self, worker: int, slot: str) -> float:
        return float(self._array[worker, self._slot_index[slot]])

    def row(self, worker: int) -> dict[str, float]:
        return {
            name: float(self._array[worker, i])
            for name, i in self._slot_index.items()
        }

    def rows(self) -> list[dict[str, float]]:
        return [self.row(w) for w in range(self.spec.workers)]

    def totals(self) -> dict[str, float]:
        """Column sums across workers (the aggregate progress view)."""
        sums = self._array.sum(axis=0)
        return {name: float(sums[i]) for name, i in self._slot_index.items()}

    def reset(self) -> None:
        self._array[:] = 0.0
