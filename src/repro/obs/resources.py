"""Per-stage resource accounting: RSS / CPU-time / GC / allocation deltas.

:class:`ResourceSnapshot` captures the process's resource state at a
stage boundary; :func:`resource_delta` turns a before/after pair into
the JSON-ready delta dict that ``Pipeline.execute`` stores on each
:class:`~repro.pipeline.runner.StageReport` and the run manifest keeps
under ``stage_reports``.

What is measured, and from where:

- **RSS** — current resident set from ``/proc/self/status`` (``VmRSS``),
  with ``ru_maxrss`` as the portable fallback; the delta shows what the
  stage grew, ``peak_rss_kb`` the high-water mark after it.
- **CPU time** — ``getrusage(RUSAGE_SELF)`` user+system for the parent
  *plus* ``RUSAGE_CHILDREN``, so a stage that fans work out to pooled
  workers shows their CPU as ``child_cpu_s`` once those workers are
  reaped (live pooled workers accrue into later stages' children
  deltas — documented, not hidden). ``cpu_utilization`` is total CPU
  over wall, i.e. the effective parallelism of the stage.
- **GC / allocation** — cumulative collector runs and collected-object
  counts from ``gc.get_stats()``, and net allocated blocks from
  ``sys.getallocatedblocks()`` — a cheap allocation-pressure signal that
  needs no ``tracemalloc`` overhead.

A capture is a handful of syscalls (~10 µs) taken once per stage
boundary, never in a hot loop; the disabled path (no recorder) skips it
entirely (guarded in ``benchmarks/test_perf_obs_overhead.py``).
"""

from __future__ import annotations

import gc
import resource
import sys
import time
from dataclasses import dataclass
from typing import Any

__all__ = ["ResourceSnapshot", "resource_delta"]

_RSS_LINE = "VmRSS:"


def _proc_rss_kb() -> float | None:
    """Current resident set in KB from /proc, or None off-Linux."""
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(_RSS_LINE):
                    return float(line.split()[1])
    except (OSError, IndexError, ValueError):
        return None
    return None


@dataclass(frozen=True)
class ResourceSnapshot:
    """Point-in-time resource state of this process (+ reaped children)."""

    wall: float
    cpu_user: float
    cpu_system: float
    child_user: float
    child_system: float
    rss_kb: float
    peak_rss_kb: float
    gc_collections: int
    gc_collected: int
    allocated_blocks: int

    @classmethod
    def capture(cls) -> "ResourceSnapshot":
        own = resource.getrusage(resource.RUSAGE_SELF)
        children = resource.getrusage(resource.RUSAGE_CHILDREN)
        rss = _proc_rss_kb()
        stats = gc.get_stats()
        return cls(
            wall=time.perf_counter(),
            cpu_user=own.ru_utime,
            cpu_system=own.ru_stime,
            child_user=children.ru_utime,
            child_system=children.ru_stime,
            # ru_maxrss is KB on Linux; used for both peak and the
            # current-RSS fallback when /proc is unavailable.
            rss_kb=rss if rss is not None else float(own.ru_maxrss),
            peak_rss_kb=float(own.ru_maxrss),
            gc_collections=sum(g["collections"] for g in stats),
            gc_collected=sum(g["collected"] for g in stats),
            allocated_blocks=sys.getallocatedblocks(),
        )


def resource_delta(
    before: ResourceSnapshot, after: ResourceSnapshot
) -> dict[str, Any]:
    """JSON-ready stage delta; all ``*_s`` values in seconds, RSS in KB."""
    wall = max(after.wall - before.wall, 0.0)
    cpu = (after.cpu_user - before.cpu_user) + (
        after.cpu_system - before.cpu_system
    )
    child_cpu = (after.child_user - before.child_user) + (
        after.child_system - before.child_system
    )
    return {
        "wall_s": round(wall, 6),
        "cpu_s": round(cpu, 6),
        "child_cpu_s": round(child_cpu, 6),
        "cpu_utilization": round((cpu + child_cpu) / wall, 3) if wall > 0 else 0.0,
        "rss_delta_kb": round(after.rss_kb - before.rss_kb, 1),
        "peak_rss_kb": after.peak_rss_kb,
        "gc_collections": after.gc_collections - before.gc_collections,
        "gc_collected": after.gc_collected - before.gc_collected,
        "allocated_blocks_delta": after.allocated_blocks - before.allocated_blocks,
    }
