"""Opt-in sampling wall-clock profiler: collapsed stacks per phase.

A :class:`SamplingProfiler` runs a daemon thread that wakes ``hz`` times
per second, snapshots every Python thread's stack via
``sys._current_frames()``, and accumulates each stack as a *collapsed*
string (``file:func;file:func;...`` root-first — the flamegraph input
format). Thread-based rather than signal-based sampling because the
pipeline already owns SIGTERM/SIGINT/SIGPROF-adjacent machinery
(:mod:`repro.resilience.lifecycle`) and signals only reach the main
thread; a sampler thread works identically in the parent, in forked
Hogwild workers, and inside the persistent pool's worker loop.

The result is a :class:`StackProfile`: total samples, wall duration,
and a ``{collapsed_stack: count}`` mapping with ``top()`` aggregating
self-time by leaf frame. Profiles merge (across workers, across epochs)
and round-trip through a JSON-ready ``summary()`` dict that the run
manifest stores.

Worker processes are profiled through the environment
(:func:`worker_profile_env` / :func:`maybe_profile_worker`): the
observability session exports ``REPRO_PROFILE_DIR``/``REPRO_PROFILE_HZ``
before any worker forks, each pooled worker runs its own sampler and
dumps its cumulative profile into the directory after every task, and
the session merges the dumps into the manifest on exit (see
:mod:`repro.obs.recorder`).

Disabled cost: nothing in this module runs unless a profiler is
started; the disabled-path surface in the pipeline is one attribute
read per *stage* (see ``benchmarks/test_perf_obs_overhead.py``).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_HZ",
    "SamplingProfiler",
    "StackProfile",
    "collect_worker_profiles",
    "maybe_profile_worker",
    "worker_profile_env",
]

DEFAULT_HZ = 97.0  # off-round so the sampler never beats with timers
MAX_STACK_DEPTH = 64
#: ``summary()`` keeps at most this many distinct stacks (by count) so a
#: manifest stays small even for long runs; total sample counts are exact.
SUMMARY_STACK_CAP = 200

PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"
PROFILE_HZ_ENV = "REPRO_PROFILE_HZ"


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


class StackProfile:
    """Aggregated samples: ``{collapsed_stack: count}`` plus totals."""

    __slots__ = ("hz", "samples", "duration", "stacks")

    def __init__(
        self,
        *,
        hz: float = DEFAULT_HZ,
        samples: int = 0,
        duration: float = 0.0,
        stacks: dict[str, int] | None = None,
    ) -> None:
        self.hz = float(hz)
        self.samples = int(samples)
        self.duration = float(duration)
        self.stacks: dict[str, int] = dict(stacks or {})

    def record(self, collapsed: str) -> None:
        self.stacks[collapsed] = self.stacks.get(collapsed, 0) + 1
        self.samples += 1

    def merge(self, other: "StackProfile") -> "StackProfile":
        """Fold ``other`` into this profile in place (returns self)."""
        self.samples += other.samples
        self.duration += other.duration
        for stack, count in other.stacks.items():
            self.stacks[stack] = self.stacks.get(stack, 0) + count
        return self

    def top(self, n: int = 10) -> list[tuple[str, int, float]]:
        """Top-of-stack self samples: ``(leaf_frame, count, fraction)``."""
        leaves: dict[str, int] = {}
        for stack, count in self.stacks.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        total = max(self.samples, 1)
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(leaf, count, count / total) for leaf, count in ranked[:n]]

    def to_collapsed(self) -> str:
        """Flamegraph input: one ``stack count`` line per distinct stack."""
        return "\n".join(
            f"{stack} {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )

    def summary(self, *, top_n: int = 10) -> dict[str, Any]:
        """JSON-ready form stored in the run manifest (stack-capped)."""
        kept = dict(
            sorted(self.stacks.items(), key=lambda kv: (-kv[1], kv[0]))[
                :SUMMARY_STACK_CAP
            ]
        )
        return {
            "hz": self.hz,
            "samples": self.samples,
            "duration_s": round(self.duration, 6),
            "top": [
                {"frame": frame, "samples": count, "fraction": round(frac, 4)}
                for frame, count, frac in self.top(top_n)
            ],
            "stacks": kept,
            "stacks_dropped": max(len(self.stacks) - len(kept), 0),
        }

    @classmethod
    def from_summary(cls, summary: dict[str, Any]) -> "StackProfile":
        return cls(
            hz=summary.get("hz", DEFAULT_HZ),
            samples=summary.get("samples", 0),
            duration=summary.get("duration_s", 0.0),
            stacks=summary.get("stacks") or {},
        )


class SamplingProfiler:
    """Context-managed sampler thread aggregating into a StackProfile.

    ``target_thread`` limits sampling to one thread id (the default is
    the thread that *constructs* the profiler — the phase being
    profiled); ``all_threads=True`` samples every live Python thread,
    which is what the per-worker profiles use.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        *,
        all_threads: bool = False,
        max_depth: int = MAX_STACK_DEPTH,
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be > 0")
        self.hz = float(hz)
        self.all_threads = all_threads
        self.max_depth = max_depth
        self.profile = StackProfile(hz=hz)
        self._target = threading.get_ident()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._started = time.perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> StackProfile:
        if self._thread is None:
            return self.profile
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self.profile.duration += time.perf_counter() - self._started
        return self.profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _sample_loop(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            for tid, frame in frames.items():
                if tid == own:
                    continue
                if not self.all_threads and tid != self._target:
                    continue
                self.profile.record(self._collapse(frame))

    def _collapse(self, frame) -> str:
        labels: list[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            labels.append(_frame_label(frame))
            frame = frame.f_back
            depth += 1
        labels.reverse()
        return ";".join(labels)


# ----------------------------------------------------------------------
# Worker-side profiling through the environment
# ----------------------------------------------------------------------
def worker_profile_env(directory: str | Path, hz: float = DEFAULT_HZ) -> dict[str, str]:
    """Environment exports that arm :func:`maybe_profile_worker`."""
    return {PROFILE_DIR_ENV: str(directory), PROFILE_HZ_ENV: str(hz)}


def maybe_profile_worker() -> SamplingProfiler | None:
    """Start an all-threads sampler if the profile env vars are set.

    Called once from a pooled worker's main loop; returns ``None`` when
    profiling is off (the default). The caller is responsible for
    periodic :func:`dump_worker_profile` calls.
    """
    directory = os.environ.get(PROFILE_DIR_ENV)
    if not directory or not Path(directory).is_dir():
        return None
    try:
        hz = float(os.environ.get(PROFILE_HZ_ENV, DEFAULT_HZ))
    except ValueError:
        hz = DEFAULT_HZ
    return SamplingProfiler(hz, all_threads=True).start()


def dump_worker_profile(profiler: SamplingProfiler) -> None:
    """Write this worker's cumulative profile into the profile dir.

    One file per PID (single writer), rewritten after every task so the
    parent sees a complete profile whenever it collects — pooled workers
    outlive the observability session, so there is no end-of-run hook to
    dump from. Write-then-rename keeps a concurrent collector from ever
    reading a torn file. Failures are swallowed: profiling must never
    take a worker down.
    """
    directory = os.environ.get(PROFILE_DIR_ENV)
    if not directory:
        return
    snapshot = StackProfile(
        hz=profiler.hz,
        samples=profiler.profile.samples,
        duration=time.perf_counter() - profiler._started,
        stacks=profiler.profile.stacks,
    )
    path = Path(directory) / f"worker.{os.getpid()}.json"
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        tmp.write_text(json.dumps(snapshot.summary(), sort_keys=True))
        tmp.replace(path)
    except OSError:
        pass


def collect_worker_profiles(directory: str | Path) -> StackProfile | None:
    """Merge every ``worker.*.json`` dump under ``directory``.

    Returns ``None`` when no worker dumped anything (serial run, or
    profiling started after the pool forked). Unreadable files are
    skipped — a worker may be mid-rename.
    """
    merged: StackProfile | None = None
    for path in sorted(Path(directory).glob("worker.*.json")):
        try:
            summary = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        profile = StackProfile.from_summary(summary)
        merged = profile if merged is None else merged.merge(profile)
    return merged
