"""Live run monitoring: the status file behind ``repro top``.

A monitored run (any command with ``--status-file``) keeps one small
JSON document up to date at stage and epoch boundaries: what is running
(pid, command, current stage), the training fan-out (workers, total
batch budget, cumulative progress), and — the key part — the picklable
identity of the cross-process :class:`~repro.obs.slab.MetricsSlab` the
Hogwild workers are writing *right now*. ``repro top`` in another
process polls the file, attaches the shared-memory slab read-only, and
renders per-worker progress, throughput, and an ETA without touching
the run (a slab attach is a read-only mmap of an existing segment; the
single-writer-per-row regime makes concurrent reads benign).

The file is written atomically (write-tmp → fsync → rename, the
checkpoint writer), so ``repro top`` never sees a torn document; a run
that dies hard simply stops updating, which the monitor reports as a
stale heartbeat against the recorded pid.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Any, TextIO

from repro.obs.slab import MetricsSlab, MetricsSlabSpec
from repro.parallel.shm import SharedArraySpec

__all__ = [
    "LiveStatusFile",
    "read_status",
    "render_top",
    "slab_spec_from_json",
    "slab_spec_to_json",
    "top_command",
]

STATUS_KIND = "repro-live-status"
STATUS_SCHEMA_VERSION = 1
#: Seconds of update silence after which the monitor calls a run stale.
STALE_AFTER = 30.0


def slab_spec_to_json(spec: MetricsSlabSpec) -> dict[str, Any]:
    return {
        "name": spec.array.name,
        "shape": list(spec.array.shape),
        "dtype": spec.array.dtype,
        "slots": list(spec.slots),
    }


def slab_spec_from_json(payload: dict[str, Any]) -> MetricsSlabSpec:
    return MetricsSlabSpec(
        array=SharedArraySpec(
            name=payload["name"],
            shape=tuple(int(v) for v in payload["shape"]),
            dtype=payload["dtype"],
        ),
        slots=tuple(payload["slots"]),
    )


class LiveStatusFile:
    """Atomic JSON status document a monitored run keeps current."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._doc: dict[str, Any] = {
            "kind": STATUS_KIND,
            "schema_version": STATUS_SCHEMA_VERSION,
            "pid": os.getpid(),
            "status": "running",
            "started_unix": round(time.time(), 3),
        }

    def update(self, **fields: Any) -> None:
        """Merge ``fields`` into the document and rewrite it atomically.

        Nested dict values merge key-wise (so ``train`` progress updates
        don't clobber the fan-out description written at train start).
        Write failures are swallowed — monitoring must never take down
        the run it monitors.
        """
        for key, value in fields.items():
            if isinstance(value, dict) and isinstance(self._doc.get(key), dict):
                self._doc[key] = {**self._doc[key], **value}
            else:
                self._doc[key] = value
        self._doc["updated_unix"] = round(time.time(), 3)
        from repro.resilience.checkpoint import atomic_write_bytes

        try:
            atomic_write_bytes(
                self.path,
                (json.dumps(self._doc, default=str) + "\n").encode(),
            )
        except OSError:
            pass


def read_status(path: str | Path) -> dict[str, Any] | None:
    """Parse a status file; None when absent or not yet parseable."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("kind") != STATUS_KIND:
        return None
    return doc


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _fmt_eta(seconds: float) -> str:
    if not math.isfinite(seconds) or seconds < 0:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def attach_status_slab(status: dict[str, Any]) -> MetricsSlab | None:
    """Attach the run's live worker slab, or None when unavailable.

    The segment disappears at every epoch barrier teardown and at run
    end; an attach failure just means "no live worker detail right now".
    """
    payload = status.get("slab")
    if not payload:
        return None
    try:
        return MetricsSlab.attach(slab_spec_from_json(payload))
    except (FileNotFoundError, OSError, KeyError, ValueError):
        return None


def render_top(
    status: dict[str, Any],
    *,
    slab_rows: list[dict[str, float]] | None = None,
    now: float | None = None,
) -> str:
    """One frame of the ``repro top`` display."""
    now = time.time() if now is None else now
    pid = int(status.get("pid", 0))
    run_status = status.get("status", "running")
    updated = float(status.get("updated_unix") or status.get("started_unix") or now)
    age = max(now - updated, 0.0)
    liveness = ""
    if run_status == "running":
        if not _pid_alive(pid):
            liveness = " [pid gone]"
        elif age > STALE_AFTER:
            liveness = f" [stale {age:.0f}s]"
    stage = status.get("stage") or "-"
    stages = status.get("stages") or []
    stage_pos = (
        f" ({stages.index(stage) + 1}/{len(stages)})"
        if stage in stages
        else ""
    )
    lines = [
        f"repro {status.get('command', '?')} — pid {pid} — "
        f"{run_status}{liveness} — stage {stage}{stage_pos} — "
        f"updated {age:.1f}s ago"
    ]

    train = status.get("train") or {}
    total = float(train.get("total_batches") or 0)
    done_base = float(train.get("batches_done") or 0)
    live_batches = 0.0
    live_examples = 0.0
    if slab_rows:
        header = (
            f"  {'worker':>6} {'epoch':>5} {'batches':>8} {'examples':>10} "
            f"{'mean loss':>10} {'age':>6}"
        )
        lines.append(header)
        for w, row in enumerate(slab_rows):
            batches = row.get("batches", 0.0)
            examples = row.get("examples", 0.0)
            live_batches += batches
            live_examples += examples
            loss = row.get("loss_sum", 0.0) / batches if batches else math.nan
            row_updated = row.get("updated", 0.0)
            row_age = f"{max(now - row_updated, 0.0):.1f}s" if row_updated else "-"
            lines.append(
                f"  {w:>6} {int(row.get('epoch', 0)):>5} {int(batches):>8} "
                f"{int(examples):>10} "
                f"{loss:>10.4f} {row_age:>6}"
                if batches
                else f"  {w:>6} {int(row.get('epoch', 0)):>5} {int(batches):>8} "
                f"{int(examples):>10} {'-':>10} {row_age:>6}"
            )

    if total > 0:
        done = min(done_base + live_batches, total)
        started = float(train.get("started_unix") or updated)
        elapsed = max(now - started, 1e-9)
        rate = done / elapsed
        eta = (total - done) / rate if rate > 0 and run_status == "running" else 0.0
        pct = 100.0 * done / total
        bar_width = 24
        filled = int(bar_width * min(done / total, 1.0))
        bar = "#" * filled + "-" * (bar_width - filled)
        lines.append(
            f"  train [{bar}] {pct:5.1f}%  "
            f"{int(done)}/{int(total)} batches  "
            f"{rate:.1f} batches/s  ETA { _fmt_eta(eta) if run_status == 'running' else '-' }"
        )
        if live_examples:
            lines.append(
                f"  throughput {live_examples / elapsed:.0f} examples/s "
                f"(epoch {int(train.get('epoch') or 0)}/{int(train.get('epochs') or 0)}, "
                f"{int(train.get('workers') or 0)} workers)"
            )
    if run_status != "running":
        reason = status.get("interrupt_reason")
        lines.append(
            f"  run finished: {run_status}"
            + (f" (reason: {reason})" if reason else "")
        )
    return "\n".join(lines)


def top_command(
    path: str | Path,
    *,
    interval: float = 1.0,
    once: bool = False,
    timeout: float | None = None,
    stream: TextIO | None = None,
) -> int:
    """The ``repro top`` loop: poll the status file, render, repeat.

    Returns 0 when the monitored run finished (or ``--once`` rendered a
    frame), 2 when no status file showed up within ``timeout``.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    deadline = time.monotonic() + timeout if timeout is not None else None
    first_frame = True
    while True:
        status = read_status(path)
        if status is None:
            if deadline is not None and time.monotonic() > deadline:
                print(f"no status file at {path}", file=out)
                return 2
            if once:
                print(f"no status file at {path}", file=out)
                return 2
            time.sleep(min(interval, 0.2))
            continue
        slab = attach_status_slab(status)
        try:
            rows = slab.rows() if slab is not None else None
        finally:
            if slab is not None:
                slab.close()
        frame = render_top(status, slab_rows=rows)
        if not once and not first_frame and out.isatty():  # pragma: no cover
            out.write("\x1b[2J\x1b[H")
        print(frame, file=out, flush=True)
        first_frame = False
        finished = status.get("status") != "running" or not _pid_alive(
            int(status.get("pid", 0))
        )
        if once or finished:
            return 0
        time.sleep(interval)
