"""Run manifest: one JSON artifact describing a whole observed run.

The manifest is the machine-consumable summary a run leaves behind —
what was run (config fingerprint), where (host), and what came out
(the final value of every metric). ``scripts/bench_report.py`` consumes
it instead of re-measuring, and CI fails a build whose manifest is
missing :data:`REQUIRED_KEYS`.

The schema is versioned (``schema_version``) so bench trajectories stay
comparable across PRs; additive changes keep the version, breaking
changes bump it.

Every manifest carries a terminal ``status`` — ``"completed"``,
``"interrupted"`` (cooperative cancellation / deadline expiry; see
:mod:`repro.resilience.lifecycle`), or ``"failed"`` — plus an
``interrupt_reason`` for the non-completed cases, so ``repro report``
and the chaos harness can tell a clean run from a wound-down one
without parsing the event stream. Additive fields: schema version 1.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry, NullRegistry

__all__ = [
    "SCHEMA_VERSION",
    "REQUIRED_KEYS",
    "RUN_STATUSES",
    "ManifestError",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
    "host_info",
    "config_fingerprint",
]

SCHEMA_VERSION = 1
MANIFEST_KIND = "repro-run-manifest"
REQUIRED_KEYS = ("schema_version", "kind", "created_unix", "host", "config", "metrics")

#: Terminal run states. ``interrupted`` covers cooperative cancellation
#: (signal) and deadline expiry; the distinction lives in
#: ``interrupt_reason`` and the process exit code (130 vs 124).
RUN_STATUSES = ("completed", "interrupted", "failed")


class ManifestError(ValueError):
    """The manifest file is missing, malformed, or fails validation."""


def host_info() -> dict[str, Any]:
    """Machine identity recorded alongside every throughput number."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        affinity = os.cpu_count()
    return {
        "cpu_count": os.cpu_count(),
        "cpu_affinity": affinity,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def config_fingerprint(config: dict) -> str:
    """Short stable hash of a run configuration (order-insensitive)."""
    blob = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def build_manifest(
    registry: MetricsRegistry | NullRegistry,
    *,
    run_config: dict | None = None,
    events_path: str | Path | None = None,
    status: str = "completed",
    interrupt_reason: str | None = None,
    stage_reports: list[dict] | None = None,
    profiles: dict[str, dict] | None = None,
    pressure: list[dict] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest dict.

    ``stage_reports`` is the per-stage resource ledger
    (:mod:`repro.obs.resources` deltas recorded by ``Pipeline.execute``),
    ``profiles`` the collapsed-stack summaries from
    :mod:`repro.obs.profiler`, and ``pressure`` the resource-watchdog
    sample timeline from :mod:`repro.resilience.guard` — all additive,
    schema version unchanged.
    """
    if status not in RUN_STATUSES:
        raise ManifestError(f"status must be one of {RUN_STATUSES}, got {status!r}")
    config = run_config or {}
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "created_unix": round(time.time(), 3),
        "host": host_info(),
        "config": config,
        "config_fingerprint": config_fingerprint(config),
        "metrics": registry.snapshot(),
        "events_path": str(events_path) if events_path is not None else None,
        "status": status,
        "interrupt_reason": interrupt_reason,
        "stage_reports": stage_reports or [],
        "profiles": profiles or {},
        "pressure": pressure or [],
    }


def write_manifest(
    path: str | Path,
    *,
    registry: MetricsRegistry | NullRegistry,
    run_config: dict | None = None,
    events_path: str | Path | None = None,
    status: str = "completed",
    interrupt_reason: str | None = None,
    stage_reports: list[dict] | None = None,
    profiles: dict[str, dict] | None = None,
    pressure: list[dict] | None = None,
) -> dict[str, Any]:
    """Build and atomically write the manifest; returns the dict.

    The write rides :func:`repro.resilience.checkpoint.atomic_write_bytes`,
    so a manifest on a full disk gets the same reclaim-and-retry and
    typed ``DiskFull`` behaviour as a checkpoint.
    """
    from repro.resilience.checkpoint import atomic_write_bytes

    manifest = build_manifest(
        registry,
        run_config=run_config,
        events_path=events_path,
        status=status,
        interrupt_reason=interrupt_reason,
        stage_reports=stage_reports,
        profiles=profiles,
        pressure=pressure,
    )
    atomic_write_bytes(
        path, (json.dumps(manifest, indent=2, default=str) + "\n").encode()
    )
    return manifest


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read and validate a manifest written by :func:`write_manifest`."""
    path = Path(path)
    if not path.is_file():
        raise ManifestError(f"no manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest {path} is not valid JSON: {exc}") from exc
    validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: Any) -> None:
    """Raise :class:`ManifestError` unless all required keys are present."""
    if not isinstance(manifest, dict):
        raise ManifestError("manifest must be a JSON object")
    missing = [key for key in REQUIRED_KEYS if key not in manifest]
    if missing:
        raise ManifestError(f"manifest is missing required keys: {missing}")
    if manifest["kind"] != MANIFEST_KIND:
        raise ManifestError(
            f"not a run manifest (kind={manifest['kind']!r})"
        )
    metrics = manifest["metrics"]
    if not isinstance(metrics, dict) or not {
        "counters",
        "gauges",
        "histograms",
    } <= set(metrics):
        raise ManifestError(
            "manifest metrics must contain counters/gauges/histograms"
        )
