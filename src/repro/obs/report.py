"""Human-readable summary of a run manifest (the ``repro report`` command).

Reads the manifest JSON (and optionally the JSONL event stream next to
it) and prints the run the way a person asks about it: what ran, on
what machine, how fast each phase was, and what the headline metrics
came out to. Validation is strict — a manifest missing required keys is
a non-zero exit, which is exactly what the CI bench-smoke job leans on.
"""

from __future__ import annotations

import math
from collections import defaultdict
from pathlib import Path
from typing import Any

from repro.bench.harness import ExperimentRecord, format_table
from repro.obs.logging import parse_jsonl

__all__ = ["render_report", "span_summary"]


def _fmt_num(value: float) -> str:
    if value != value:  # nan
        return "-"
    if abs(value) >= 1000 or (value != 0 and abs(value) < 1e-3):
        return f"{value:.4g}"
    return f"{value:.4f}".rstrip("0").rstrip(".") or "0"


def span_summary(events: list[dict]) -> dict[str, dict[str, float]]:
    """Aggregate ``span.end`` events: count / total / max seconds per span."""
    spans: dict[str, dict[str, float]] = defaultdict(
        lambda: {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0}
    )
    for event in events:
        if event.get("event") != "span.end":
            continue
        row = spans[event.get("span", "?")]
        seconds = float(event.get("seconds", 0.0))
        row["count"] += 1
        row["total_s"] += seconds
        row["max_s"] = max(row["max_s"], seconds)
        if event.get("status") == "error":
            row["errors"] += 1
    return dict(spans)


def render_report(
    manifest: dict[str, Any], *, events_path: str | Path | None = None
) -> str:
    """The ``repro report`` text: host, config, metrics, span table."""
    host = manifest["host"]
    lines = [
        f"run manifest (schema v{manifest['schema_version']}, "
        f"config {manifest.get('config_fingerprint', '?')})",
        f"  host: {host.get('platform', '?')} — "
        f"{host.get('cpu_count', '?')} cpus "
        f"({host.get('cpu_affinity', '?')} usable), "
        f"python {host.get('python', '?')}",
    ]
    status = manifest.get("status", "completed")
    reason = manifest.get("interrupt_reason")
    lines.append(
        f"  status: {status}" + (f" (reason: {reason})" if reason else "")
    )
    config = manifest.get("config") or {}
    if config:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(config.items()))
        lines.append(f"  config: {rendered}")

    metrics = manifest["metrics"]
    counter_records = [
        ExperimentRecord(params={"counter": name}, values={"value": value})
        for name, value in sorted(metrics["counters"].items())
    ]
    gauge_records = [
        ExperimentRecord(params={"gauge": name}, values={"value": value})
        for name, value in sorted(metrics["gauges"].items())
        if not (isinstance(value, float) and math.isnan(value))
    ]
    hist_records = [
        ExperimentRecord(
            params={"histogram": name},
            values={
                k: snap.get(k, math.nan)
                for k in ("count", "mean", "p50", "p95", "max")
            },
        )
        for name, snap in sorted(metrics["histograms"].items())
        if snap.get("count")
    ]
    for title, records in (
        ("counters", counter_records),
        ("gauges", gauge_records),
        ("histograms (seconds unless named otherwise)", hist_records),
    ):
        if records:
            lines.append("")
            lines.append(format_table(records, title=title))

    events_path = events_path or manifest.get("events_path")
    if events_path and Path(events_path).is_file():
        spans = span_summary(parse_jsonl(events_path))
        if spans:
            records = [
                ExperimentRecord(
                    params={"span": name},
                    values={
                        "count": row["count"],
                        "total_s": round(row["total_s"], 4),
                        "max_s": round(row["max_s"], 4),
                        "errors": row["errors"],
                    },
                )
                for name, row in sorted(spans.items())
            ]
            lines.append("")
            lines.append(
                format_table(records, title=f"spans ({events_path})")
            )
    return "\n".join(lines)
