"""Human-readable summary of a run manifest (the ``repro report`` command).

Reads the manifest JSON (and optionally the JSONL event stream next to
it) and prints the run the way a person asks about it: what ran, on
what machine, how fast each phase was, and what the headline metrics
came out to. Validation is strict — a manifest missing required keys is
a non-zero exit, which is exactly what the CI bench-smoke job leans on.

Two performance views ride along with the plain rendering:

- per-stage resource accounting (manifest ``stage_reports``) and
  profiler summaries (``profiles``) render as their own tables when the
  run recorded them;
- :func:`compare_manifests` diffs two manifests — stage wall/RSS,
  headline throughput gauges, histogram means — and flags regressions
  beyond :data:`REGRESSION_THRESHOLD` with a trailing ``<<``, which is
  what ``repro report A --compare B`` prints.

Event streams are read tolerantly (``parse_jsonl(..., on_error="skip")``)
so a stream truncated by a hard crash still reports every intact line.
"""

from __future__ import annotations

import math
from collections import defaultdict
from pathlib import Path
from typing import Any

from repro.bench.harness import ExperimentRecord, format_table
from repro.obs.logging import parse_jsonl

__all__ = ["render_report", "span_summary", "compare_manifests"]

#: Relative change beyond which :func:`compare_manifests` marks a row.
REGRESSION_THRESHOLD = 0.10

#: Gauges worth a headline row in a comparison (throughput style:
#: higher is better). Everything else is compared sign-agnostically.
_THROUGHPUT_GAUGES = (
    "walks.walks_per_sec",
    "train.words_per_sec",
    "train.examples_per_sec",
)


def _fmt_num(value: float) -> str:
    if value != value:  # nan
        return "-"
    if abs(value) >= 1000 or (value != 0 and abs(value) < 1e-3):
        return f"{value:.4g}"
    return f"{value:.4f}".rstrip("0").rstrip(".") or "0"


def span_summary(events: list[dict]) -> dict[str, dict[str, float]]:
    """Aggregate ``span.end`` events: count / total / max seconds per span."""
    spans: dict[str, dict[str, float]] = defaultdict(
        lambda: {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0}
    )
    for event in events:
        if event.get("event") != "span.end":
            continue
        row = spans[event.get("span", "?")]
        seconds = float(event.get("seconds", 0.0))
        row["count"] += 1
        row["total_s"] += seconds
        row["max_s"] = max(row["max_s"], seconds)
        if event.get("status") == "error":
            row["errors"] += 1
    return dict(spans)


def _stage_report_records(stage_reports: list[dict]) -> list[ExperimentRecord]:
    records = []
    for report in stage_reports:
        resources = report.get("resources") or {}
        records.append(
            ExperimentRecord(
                params={"stage": str(report.get("stage", "?"))},
                values={
                    "wall_s": round(float(report.get("seconds", 0.0)), 4),
                    "cpu_s": resources.get("cpu_s", math.nan),
                    "child_cpu_s": resources.get("child_cpu_s", math.nan),
                    "util": resources.get("cpu_utilization", math.nan),
                    "rss_delta_kb": resources.get("rss_delta_kb", math.nan),
                    "gc": resources.get("gc_collections", math.nan),
                    "skipped": int(bool(report.get("skipped"))),
                },
            )
        )
    return records


def _profile_lines(profiles: dict[str, dict]) -> list[str]:
    lines = []
    for name, summary in sorted(profiles.items()):
        samples = summary.get("samples", 0)
        lines.append(
            f"  {name}: {samples} samples @ {summary.get('hz', '?')} Hz "
            f"over {summary.get('duration_s', 0.0):.2f}s"
        )
        for entry in (summary.get("top") or [])[:5]:
            lines.append(
                f"    {entry.get('fraction', 0.0) * 100:5.1f}%  "
                f"{entry.get('frame', '?')} ({entry.get('samples', 0)})"
            )
    return lines


def render_report(
    manifest: dict[str, Any], *, events_path: str | Path | None = None
) -> str:
    """The ``repro report`` text: host, config, metrics, span table."""
    host = manifest["host"]
    lines = [
        f"run manifest (schema v{manifest['schema_version']}, "
        f"config {manifest.get('config_fingerprint', '?')})",
        f"  host: {host.get('platform', '?')} — "
        f"{host.get('cpu_count', '?')} cpus "
        f"({host.get('cpu_affinity', '?')} usable), "
        f"python {host.get('python', '?')}",
    ]
    status = manifest.get("status", "completed")
    reason = manifest.get("interrupt_reason")
    lines.append(
        f"  status: {status}" + (f" (reason: {reason})" if reason else "")
    )
    config = manifest.get("config") or {}
    if config:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(config.items()))
        lines.append(f"  config: {rendered}")

    metrics = manifest["metrics"]
    counter_records = [
        ExperimentRecord(params={"counter": name}, values={"value": value})
        for name, value in sorted(metrics["counters"].items())
    ]
    gauge_records = [
        ExperimentRecord(params={"gauge": name}, values={"value": value})
        for name, value in sorted(metrics["gauges"].items())
        if not (isinstance(value, float) and math.isnan(value))
    ]
    hist_records = [
        ExperimentRecord(
            params={"histogram": name},
            values={
                k: snap.get(k, math.nan)
                for k in ("count", "mean", "p50", "p95", "p99", "max")
            },
        )
        for name, snap in sorted(metrics["histograms"].items())
        if snap.get("count")
    ]
    for title, records in (
        ("counters", counter_records),
        ("gauges", gauge_records),
        ("histograms (seconds unless named otherwise)", hist_records),
    ):
        if records:
            lines.append("")
            lines.append(format_table(records, title=title))

    stage_reports = manifest.get("stage_reports") or []
    if stage_reports:
        lines.append("")
        lines.append(
            format_table(
                _stage_report_records(stage_reports),
                title="stage resources",
            )
        )

    profiles = manifest.get("profiles") or {}
    if profiles:
        lines.append("")
        lines.append("profiles (top-of-stack self time)")
        lines.extend(_profile_lines(profiles))

    events_path = events_path or manifest.get("events_path")
    if events_path and Path(events_path).is_file():
        events = parse_jsonl(events_path, on_error="skip")
        spans = span_summary(events)
        if spans:
            records = [
                ExperimentRecord(
                    params={"span": name},
                    values={
                        "count": row["count"],
                        "total_s": round(row["total_s"], 4),
                        "max_s": round(row["max_s"], 4),
                        "errors": row["errors"],
                    },
                )
                for name, row in sorted(spans.items())
            ]
            lines.append("")
            lines.append(
                format_table(records, title=f"spans ({events_path})")
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Manifest comparison (repro report A --compare B)
# ----------------------------------------------------------------------
def _rel_change(before: float, after: float) -> float:
    if before == 0:
        return math.inf if after else 0.0
    return (after - before) / abs(before)


def _compare_rows(
    rows: list[tuple[str, float, float, bool]]
) -> list[str]:
    """Render ``(label, a, b, higher_is_better)`` rows with flags."""
    out = []
    for label, a, b, higher_is_better in rows:
        if math.isnan(a) or math.isnan(b):
            continue
        change = _rel_change(a, b)
        regressed = (
            change < -REGRESSION_THRESHOLD
            if higher_is_better
            else change > REGRESSION_THRESHOLD
        )
        flag = "  <<" if regressed else ""
        pct = f"{change * 100:+.1f}%" if math.isfinite(change) else "new"
        out.append(
            f"  {label:<34} {_fmt_num(a):>12} -> {_fmt_num(b):>12} "
            f"({pct}){flag}"
        )
    return out


def compare_manifests(a: dict[str, Any], b: dict[str, Any]) -> str:
    """Diff two run manifests: stages, throughput gauges, histograms.

    ``a`` is the baseline, ``b`` the candidate. Rows whose change exceeds
    :data:`REGRESSION_THRESHOLD` in the bad direction (slower wall,
    bigger RSS, lower throughput) end with ``<<``.
    """
    lines = [
        "manifest comparison (baseline -> candidate, << marks a "
        f"regression beyond {REGRESSION_THRESHOLD * 100:.0f}%)",
        f"  baseline:  {a.get('config_fingerprint', '?')} "
        f"[{a.get('status', '?')}]",
        f"  candidate: {b.get('config_fingerprint', '?')} "
        f"[{b.get('status', '?')}]",
    ]
    if a.get("config_fingerprint") != b.get("config_fingerprint"):
        lines.append(
            "  note: configs differ — changes below may be config-driven"
        )

    stages_a = {
        r.get("stage"): r for r in (a.get("stage_reports") or [])
    }
    stages_b = {
        r.get("stage"): r for r in (b.get("stage_reports") or [])
    }
    stage_rows: list[tuple[str, float, float, bool]] = []
    for stage in [s for s in stages_a if s in stages_b]:
        ra, rb = stages_a[stage], stages_b[stage]
        stage_rows.append(
            (
                f"stage.{stage}.wall_s",
                float(ra.get("seconds", math.nan)),
                float(rb.get("seconds", math.nan)),
                False,
            )
        )
        res_a = ra.get("resources") or {}
        res_b = rb.get("resources") or {}
        stage_rows.append(
            (
                f"stage.{stage}.peak_rss_kb",
                float(res_a.get("peak_rss_kb", math.nan)),
                float(res_b.get("peak_rss_kb", math.nan)),
                False,
            )
        )
    rendered = _compare_rows(stage_rows)
    if rendered:
        lines.append("")
        lines.append("stages")
        lines.extend(rendered)

    gauges_a = (a.get("metrics") or {}).get("gauges") or {}
    gauges_b = (b.get("metrics") or {}).get("gauges") or {}
    gauge_rows = [
        (name, float(gauges_a[name]), float(gauges_b[name]), True)
        for name in _THROUGHPUT_GAUGES
        if name in gauges_a and name in gauges_b
    ]
    rendered = _compare_rows(gauge_rows)
    if rendered:
        lines.append("")
        lines.append("throughput")
        lines.extend(rendered)

    hists_a = (a.get("metrics") or {}).get("histograms") or {}
    hists_b = (b.get("metrics") or {}).get("histograms") or {}
    hist_rows = [
        (
            f"{name}.mean",
            float(hists_a[name].get("mean", math.nan)),
            float(hists_b[name].get("mean", math.nan)),
            False,
        )
        for name in sorted(set(hists_a) & set(hists_b))
        if hists_a[name].get("count") and hists_b[name].get("count")
    ]
    rendered = _compare_rows(hist_rows)
    if rendered:
        lines.append("")
        lines.append("histogram means")
        lines.extend(rendered)

    if len(lines) <= 4:
        lines.append("  (no comparable rows)")
    return "\n".join(lines)
