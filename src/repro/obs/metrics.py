"""Metrics registry: counters, gauges, histograms, and timer contexts.

The registry is the in-process accumulation point for everything the
pipeline measures about itself — walks/sec, per-epoch loss, checkpoint
bytes, retry counts. Three instrument kinds (the Prometheus trio, minus
labels — names are dotted strings like ``train.epoch_seconds``):

- :class:`Counter`   — monotonically increasing float (``inc``).
- :class:`Gauge`     — last-write-wins value (``set``).
- :class:`Histogram` — running count/sum/min/max plus a bounded sample
  of observations for percentile estimates (``observe``).

``registry.time(name)`` is an explicit timer context that observes the
block's wall-clock seconds into the named histogram::

    with registry.time("walks.chunk_seconds"):
        chunk = compute()

Disabled observability uses :data:`NULL_REGISTRY`: the same API where
every method is a constant-folded no-op, so instrumented code pays one
attribute call and nothing else (see benchmarks/test_perf_obs_overhead.py
for the < 3% hot-loop guard).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

# Histograms keep at most the first HISTOGRAM_SAMPLE_CAP raw observations
# for percentile estimates (p50/p95/p99); count/sum/min/max stay exact
# beyond it. The cap bounds memory (one float per sample) at the cost of
# percentiles reflecting only the head of very long runs — tail-heavy
# shifts after the cap move mean/max but not p50/p95/p99. Snapshots
# record ``sample_capped`` so a consumer can tell estimated-from-head
# percentiles from exact ones.
HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """Monotonic counter. ``inc`` with a negative amount is an error."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins value (``nan`` until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Running distribution summary over observed values."""

    __slots__ = ("name", "count", "total", "min", "max", "_sample")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sample: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._sample) < HISTOGRAM_SAMPLE_CAP:
            self._sample.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0-100) from the sample."""
        if not self._sample:
            return math.nan
        ordered = sorted(self._sample)
        idx = min(int(len(ordered) * q / 100.0), len(ordered) - 1)
        return ordered[idx]

    def snapshot(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        snap = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
        if self.count > len(self._sample):
            snap["sample_capped"] = True
        return snap


class _Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("_hist", "seconds", "_start")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.seconds = time.perf_counter() - self._start
        self._hist.observe(self.seconds)


class MetricsRegistry:
    """Named metric instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for ``counter("x")`` after ``gauge("x")`` raises. Thread-safe
    for instrument creation (hot-path mutation of an instrument is a
    plain float op — the GIL is enough for our single-writer usage).
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, kind(name))
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # Convenience one-shots -------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def time(self, name: str) -> _Timer:
        """Explicit timer context: observes seconds into ``name``."""
        return _Timer(self.histogram(name))

    # Introspection ----------------------------------------------------
    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """All current values, grouped by instrument kind (JSON-able)."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in self:
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            else:
                out["histograms"][name] = metric.snapshot()
        return out


class _NullTimer:
    """Timer that measures nothing; shared singleton."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


class _NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def snapshot(self) -> float:
        return 0.0


class _NullGauge:
    __slots__ = ()
    value = math.nan

    def set(self, value: float) -> None:
        return None

    def snapshot(self) -> float:
        return math.nan


class _NullHistogram:
    __slots__ = ()
    count = 0

    def observe(self, value: float) -> None:
        return None

    def snapshot(self) -> dict[str, float]:
        return {"count": 0}


_NULL_TIMER = _NullTimer()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """No-op registry: every operation returns a shared inert object.

    This is the disabled-observability fast path — no dict lookups, no
    allocation, no branches beyond the method dispatch itself.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def inc(self, name: str, amount: float = 1.0) -> None:
        return None

    def set(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def time(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def __iter__(self) -> Iterator[str]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()
