"""Chrome Trace Event export: run timelines loadable in Perfetto.

Converts a run's JSONL event stream (plus its manifest) into the Chrome
Trace Event JSON format (``{"traceEvents": [...]}``) understood by
Perfetto / ``chrome://tracing``. The mapping:

- every ``span.end`` event becomes one *complete* (``ph="X"``) event —
  begin timestamp reconstructed as ``ts - seconds`` — so the nested span
  tree renders as the familiar flame chart on the parent thread;
- every ``hogwild.worker`` event becomes an *instant* (``ph="i"``) on a
  per-worker track plus a ``hogwild.examples`` *counter* (``ph="C"``)
  sample, which is the worker slab timeline: one mark per worker per
  epoch with its batch/example/loss share;
- remaining events (checkpoints, retries, supervisor actions, run
  begin/end) become instants on the main track, capped so a debug-level
  stream cannot explode the trace;
- metadata events (``ph="M"``) name the process (command + pid from the
  manifest / ``run.begin``) and each worker track, correlating spans
  across processes by pid/tid.

Timestamps are microseconds relative to the first event, which keeps
the JSON small and Perfetto's zoom sane. ``validate_chrome_trace``
checks the structural contract the CI bench-smoke job enforces: valid
JSON, a ``traceEvents`` list, and at least one complete event per
pipeline stage named in the manifest.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Instant events kept from the generic (non-span, non-worker) stream.
INSTANT_EVENT_CAP = 5000
#: tid offsets: parent spans on MAIN_TID, worker tracks above WORKER_TID0.
MAIN_TID = 1
WORKER_TID0 = 100


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 1)


def chrome_trace(
    events: list[dict], *, manifest: dict | None = None
) -> dict[str, Any]:
    """Build the Chrome Trace Event dict from parsed JSONL ``events``."""
    stamped = [e for e in events if isinstance(e.get("ts"), (int, float))]
    if not stamped:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(e["ts"] for e in stamped)
    pid = 0
    for event in stamped:
        if event.get("event") == "run.begin" and "pid" in event:
            pid = int(event["pid"])
            break

    command = ""
    if manifest:
        command = str((manifest.get("config") or {}).get("command") or "")
    trace: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"repro {command}".strip()},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": pid,
            "tid": MAIN_TID,
            "args": {"name": "pipeline"},
        },
    ]

    meta_keys = {"ts", "level", "logger", "event"}
    span_keys = {"span", "span_id", "parent_id", "path", "seconds"}
    worker_tids: set[int] = set()
    instants = 0
    dropped = 0
    for event in stamped:
        name = event.get("event")
        ts = event["ts"] - t0
        if name == "span.begin":
            continue  # the complete event built from span.end covers it
        if name == "span.end":
            seconds = float(event.get("seconds", 0.0))
            args = {
                k: v
                for k, v in event.items()
                if k not in meta_keys and k not in span_keys
            }
            args["path"] = event.get("path")
            trace.append(
                {
                    "ph": "X",
                    "name": str(event.get("span", "?")),
                    "cat": "span",
                    "ts": _us(max(ts - seconds, 0.0)),
                    "dur": _us(seconds),
                    "pid": pid,
                    "tid": MAIN_TID,
                    "args": args,
                }
            )
            continue
        if name == "hogwild.worker":
            worker = int(event.get("worker", 0))
            tid = WORKER_TID0 + worker
            worker_tids.add(tid)
            args = {
                k: event.get(k)
                for k in ("epoch", "batches", "examples", "loss_sum")
                if k in event
            }
            trace.append(
                {
                    "ph": "i",
                    "name": f"epoch {event.get('epoch', '?')}",
                    "cat": "hogwild",
                    "s": "t",
                    "ts": _us(ts),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            trace.append(
                {
                    "ph": "C",
                    "name": "hogwild.examples",
                    "ts": _us(ts),
                    "pid": pid,
                    "args": {f"w{worker}": event.get("examples", 0)},
                }
            )
            continue
        if instants >= INSTANT_EVENT_CAP:
            dropped += 1
            continue
        instants += 1
        trace.append(
            {
                "ph": "i",
                "name": str(name),
                "cat": "event",
                "s": "t",
                "ts": _us(ts),
                "pid": pid,
                "tid": MAIN_TID,
                "args": {
                    k: v for k, v in event.items() if k not in meta_keys
                },
            }
        )

    for tid in sorted(worker_tids):
        trace.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"hogwild-worker-{tid - WORKER_TID0}"},
            }
        )

    out: dict[str, Any] = {"traceEvents": trace, "displayTimeUnit": "ms"}
    if dropped:
        out["metadata"] = {"instants_dropped": dropped}
    return out


def write_chrome_trace(
    path: str | Path, events: list[dict], *, manifest: dict | None = None
) -> dict[str, Any]:
    """Build and write the trace JSON; returns the trace dict."""
    trace = chrome_trace(events, manifest=manifest)
    Path(path).write_text(json.dumps(trace) + "\n", encoding="utf-8")
    return trace


def validate_chrome_trace(
    trace: Any, *, stage_names: list[str] | None = None
) -> list[str]:
    """Structural problems with a trace dict (empty list = valid).

    ``stage_names`` adds the CI contract: at least one complete event
    whose args carry each named pipeline stage.
    """
    problems: list[str] = []
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        return ["trace must be an object with a traceEvents list"]
    complete: list[dict] = []
    for i, event in enumerate(trace["traceEvents"]):
        if not isinstance(event, dict) or "ph" not in event:
            problems.append(f"traceEvents[{i}] is not an event object")
            continue
        if event["ph"] in ("X", "i", "C") and "ts" not in event:
            problems.append(f"traceEvents[{i}] ({event['ph']}) missing ts")
        if event["ph"] == "X":
            if "dur" not in event:
                problems.append(f"traceEvents[{i}] complete event missing dur")
            complete.append(event)
    if not complete:
        problems.append("trace has no complete (ph=X) events")
    for stage in stage_names or []:
        if not any(
            event.get("args", {}).get("stage") == stage
            or event.get("name") == stage
            for event in complete
        ):
            problems.append(f"no complete event for pipeline stage {stage!r}")
    return problems
