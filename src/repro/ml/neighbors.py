"""Nearest-neighbor graph construction from embeddings.

``knn_graph`` turns a vector set into a sparse similarity graph — the
bridge back from embedding space to graph space. It enables the *hybrid*
community-detection pipeline (embed with V2V, then run a graph algorithm
like Louvain on the k-NN graph instead of k-means on the vectors), which
the ablation bench compares against the paper's k-means route. Unlike
k-means it needs no k-communities guess.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import EdgeList, Graph

__all__ = ["knn_graph", "cosine_similarity_matrix"]


def cosine_similarity_matrix(vectors: np.ndarray) -> np.ndarray:
    """Dense pairwise cosine similarity (rows normalized; zero rows give 0)."""
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError("vectors must be 2-D")
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    unit = vectors / norms
    return unit @ unit.T


def knn_graph(
    vectors: np.ndarray,
    k: int = 10,
    *,
    metric: str = "cosine",
    mutual: bool = False,
    weighted: bool = True,
) -> Graph:
    """Build the undirected k-nearest-neighbor graph of an embedding.

    Parameters
    ----------
    vectors:
        (n × d) embedding matrix; vertex ids are row indices.
    k:
        Neighbors per vertex.
    metric:
        ``"cosine"`` or ``"euclidean"``.
    mutual:
        If True keep only mutual pairs (i in knn(j) AND j in knn(i)) —
        a sparser, higher-precision graph. Otherwise the union.
    weighted:
        Attach similarity weights (cosine similarity shifted to be
        non-negative, or ``1 / (1 + distance)`` for euclidean).

    Returns an undirected :class:`Graph` on the same vertex set.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError("vectors must be 2-D")
    n = vectors.shape[0]
    if not 1 <= k < n:
        raise ValueError("need 1 <= k < n")
    if metric not in ("cosine", "euclidean"):
        raise ValueError("metric must be 'cosine' or 'euclidean'")

    if metric == "cosine":
        sims = cosine_similarity_matrix(vectors)
        np.fill_diagonal(sims, -np.inf)
        nn = np.argpartition(-sims, k - 1, axis=1)[:, :k]
        strengths = np.take_along_axis(sims, nn, axis=1)
        # Cosine in [-1, 1]: shift to (0, 2] so weights stay positive.
        strengths = strengths + 1.0
    else:
        sq = np.einsum("ij,ij->i", vectors, vectors)
        d2 = sq[:, None] - 2.0 * (vectors @ vectors.T) + sq[None, :]
        np.maximum(d2, 0.0, out=d2)
        np.fill_diagonal(d2, np.inf)
        nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
        strengths = 1.0 / (1.0 + np.sqrt(np.take_along_axis(d2, nn, axis=1)))

    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = nn.ravel().astype(np.int64)
    w = strengths.ravel()

    # Canonicalize pairs; merge duplicates (i->j and j->i) by max weight.
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    key = lo * n + hi
    order = np.argsort(key, kind="stable")
    key_s, lo_s, hi_s, w_s = key[order], lo[order], hi[order], w[order]
    boundaries = np.concatenate([[0], np.flatnonzero(np.diff(key_s)) + 1])
    counts = np.diff(np.concatenate([boundaries, [key_s.shape[0]]]))
    uniq_lo = lo_s[boundaries]
    uniq_hi = hi_s[boundaries]
    uniq_w = np.maximum.reduceat(w_s, boundaries)
    if mutual:
        keep = counts >= 2  # pair appeared from both endpoints
        uniq_lo, uniq_hi, uniq_w = uniq_lo[keep], uniq_hi[keep], uniq_w[keep]
    return Graph(
        n,
        EdgeList(uniq_lo, uniq_hi, uniq_w if weighted else None),
        directed=False,
    )
