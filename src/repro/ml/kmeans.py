"""k-means clustering: Lloyd's algorithm, k-means++ seeding, restarts.

The paper clusters V2V vectors with Lloyd's algorithm repeated 100 times,
keeping the solution with the lowest within-cluster sum of squares
(Section III). ``KMeans(n_init=100)`` reproduces that protocol exactly.

Assignment is vectorized with the ||x - c||² = ||x||² - 2 x·c + ||c||²
expansion, so each Lloyd iteration is one (n × k) GEMM — the dominant
cost — rather than an n × k Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.recorder import current_recorder

__all__ = ["KMeans", "KMeansResult"]


@dataclass(frozen=True)
class KMeansResult:
    """Best clustering found across restarts."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int
    restarts: int

    @property
    def k(self) -> int:
        return int(self.centers.shape[0])


def _squared_distances(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(n × k) squared euclidean distances, clipped at 0 for float drift."""
    x_sq = np.einsum("ij,ij->i", x, x)[:, None]
    c_sq = np.einsum("ij,ij->i", centers, centers)[None, :]
    d2 = x_sq - 2.0 * (x @ centers.T) + c_sq
    np.maximum(d2, 0.0, out=d2)
    return d2


def _kmeanspp_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii): D² sampling."""
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = x[first]
    d2 = np.einsum("ij,ij->i", x - centers[0], x - centers[0])
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All remaining points coincide with a center: pick uniformly.
            choice = int(rng.integers(0, n))
        else:
            choice = int(np.searchsorted(np.cumsum(d2), rng.random() * total))
            choice = min(choice, n - 1)
        centers[i] = x[choice]
        new_d2 = np.einsum("ij,ij->i", x - centers[i], x - centers[i])
        np.minimum(d2, new_d2, out=d2)
    return centers


class KMeans:
    """Lloyd's k-means with k-means++ (or random) init and restarts.

    Parameters
    ----------
    k:
        Number of clusters.
    n_init:
        Independent restarts; the lowest-inertia run wins (paper: 100).
    max_iter:
        Lloyd iterations per restart.
    tol:
        Relative center-shift convergence threshold.
    init:
        ``"k-means++"`` or ``"random"`` (uniform distinct points).
    seed:
        Seed for all restarts (restart streams are spawned internally).
    """

    def __init__(
        self,
        k: int,
        *,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        init: str = "k-means++",
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if init not in ("k-means++", "random"):
            raise ValueError("init must be 'k-means++' or 'random'")
        self.k = k
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.init = init
        self.seed = seed

    def fit(self, x: np.ndarray) -> KMeansResult:
        """Cluster rows of ``x``; returns the best restart."""
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        if x.ndim != 2:
            raise ValueError("x must be 2-D (samples × features)")
        n = x.shape[0]
        if n < self.k:
            raise ValueError(f"need at least k={self.k} samples, got {n}")
        rng = np.random.default_rng(self.seed)
        rec = current_recorder()
        best: KMeansResult | None = None
        with rec.span("kmeans.fit", k=self.k, n=n, n_init=self.n_init) as span:
            for _restart in range(self.n_init):
                labels, centers, inertia, iters = self._lloyd(x, rng)
                if rec.enabled:
                    rec.inc("kmeans.restarts")
                    rec.observe("kmeans.restart_inertia", inertia)
                    rec.observe("kmeans.restart_iterations", iters)
                if best is None or inertia < best.inertia:
                    best = KMeansResult(
                        labels=labels,
                        centers=centers,
                        inertia=inertia,
                        iterations=iters,
                        restarts=self.n_init,
                    )
            assert best is not None
            if rec.enabled:
                rec.set("kmeans.best_inertia", best.inertia)
                span.annotate(
                    inertia=round(best.inertia, 6), iterations=best.iterations
                )
        return best

    def _lloyd(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        n = x.shape[0]
        if self.init == "k-means++":
            centers = _kmeanspp_init(x, self.k, rng)
        else:
            centers = x[rng.choice(n, size=self.k, replace=False)].copy()
        labels = np.zeros(n, dtype=np.int64)
        for iteration in range(1, self.max_iter + 1):
            d2 = _squared_distances(x, centers)
            labels = d2.argmin(axis=1)
            new_centers = np.zeros_like(centers)
            counts = np.bincount(labels, minlength=self.k).astype(np.float64)
            np.add.at(new_centers, labels, x)
            empty = counts == 0
            if np.any(empty):
                # Re-seed empty clusters at the points farthest from their
                # center — standard fix that keeps k clusters alive.
                far = np.argsort(-d2[np.arange(n), labels])
                for j, c in enumerate(np.flatnonzero(empty)):
                    new_centers[c] = x[far[j % n]]
                    counts[c] = 1.0
            new_centers /= counts[:, None]
            shift = float(np.linalg.norm(new_centers - centers))
            scale = float(np.linalg.norm(centers)) or 1.0
            centers = new_centers
            if shift / scale < self.tol:
                break
        d2 = _squared_distances(x, centers)
        labels = d2.argmin(axis=1)
        inertia = float(d2[np.arange(n), labels].sum())
        return labels, centers, inertia, iteration

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).labels
