"""Machine-learning substrate used on top of V2V embeddings.

Everything the paper's applications need, from scratch on numpy:
k-means (Lloyd + k-means++ + restarts), k-NN classification with cosine
distance, PCA, exact t-SNE, k-fold cross validation, and the clustering /
classification metrics of Section III-B.
"""

from repro.ml.cross_validation import KFold, cross_validate_knn
from repro.ml.kmeans import KMeans, KMeansResult
from repro.ml.knn import KNNClassifier
from repro.ml.logreg import LogisticRegression
from repro.ml.metrics import (
    accuracy,
    adjusted_rand_index,
    confusion_counts,
    normalized_mutual_information,
    pairwise_f1,
    pairwise_precision_recall,
    purity,
    silhouette_score,
)
from repro.ml.neighbors import cosine_similarity_matrix, knn_graph
from repro.ml.pca import PCA
from repro.ml.procrustes import aligned_distance, procrustes_align
from repro.ml.spectral import spectral_communities, spectral_embedding
from repro.ml.tsne import TSNE

__all__ = [
    "KMeans",
    "KMeansResult",
    "KNNClassifier",
    "LogisticRegression",
    "PCA",
    "TSNE",
    "procrustes_align",
    "aligned_distance",
    "knn_graph",
    "cosine_similarity_matrix",
    "spectral_embedding",
    "spectral_communities",
    "KFold",
    "cross_validate_knn",
    "pairwise_precision_recall",
    "pairwise_f1",
    "accuracy",
    "purity",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "silhouette_score",
    "confusion_counts",
]
