"""k-fold cross validation, matching the paper's Section V protocol:
vertices are split into 10 equal random folds; each fold in turn hides
its labels, the other 9 train the classifier, and the reported accuracy
averages the 10 runs (repeated over multiple shuffles).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.ml.knn import KNNClassifier

__all__ = ["KFold", "cross_validate_knn"]


class KFold:
    """Shuffled k-fold splitter with deterministic seeding."""

    def __init__(self, n_splits: int = 10, *, seed: int | None = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs covering all n samples."""
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        rng = np.random.default_rng(self.seed)
        perm = rng.permutation(n)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=np.int64)
        fold_sizes[: n % self.n_splits] += 1
        stop = 0
        for size in fold_sizes:
            start, stop = stop, stop + int(size)
            test = perm[start:stop]
            train = np.concatenate([perm[:start], perm[stop:]])
            yield train, test


def cross_validate_knn(
    x: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 3,
    metric: str = "cosine",
    n_splits: int = 10,
    repeats: int = 1,
    seed: int | None = None,
) -> float:
    """Mean k-NN accuracy over ``repeats`` runs of ``n_splits``-fold CV.

    Mirrors the paper: "10-fold cross validation ... repeated 10 times,
    report the average". Each repeat uses an independent shuffle spawned
    from ``seed``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    seeds = np.random.SeedSequence(seed).spawn(repeats)
    accuracies: list[float] = []
    for rep_seed in seeds:
        folds = KFold(n_splits, seed=int(rep_seed.generate_state(1)[0]))
        for train, test in folds.split(x.shape[0]):
            clf = KNNClassifier(k=k, metric=metric).fit(x[train], y[train])
            accuracies.append(clf.score(x[test], y[test]))
    return float(np.mean(accuracies))
