"""k-nearest-neighbor classification with cosine distance.

Section V uses k-NN with cosine proximity and majority vote to predict
airport countries from V2V vectors. Prediction is one dense similarity
GEMM plus an argpartition — no per-query Python loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KNNClassifier"]


class KNNClassifier:
    """Majority-vote k-NN.

    Parameters
    ----------
    k:
        Number of neighbors voting (paper sweeps k = 1..10, best k = 3).
    metric:
        ``"cosine"`` (paper default) or ``"euclidean"``.

    Ties are broken toward the class whose closest member is nearest —
    for k = 1 this reduces to nearest-neighbor assignment exactly as the
    paper describes.
    """

    def __init__(self, k: int = 3, *, metric: str = "cosine") -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if metric not in ("cosine", "euclidean"):
            raise ValueError("metric must be 'cosine' or 'euclidean'")
        self.k = k
        self.metric = metric
        self._train_x: np.ndarray | None = None
        self._train_y: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self._train_norm: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if y.shape != (x.shape[0],):
            raise ValueError("y must have one label per row of x")
        if x.shape[0] == 0:
            raise ValueError("training set must be non-empty")
        self._classes, encoded = np.unique(y, return_inverse=True)
        self._train_x = x
        self._train_y = encoded.astype(np.int64)
        if self.metric == "cosine":
            norms = np.linalg.norm(x, axis=1)
            norms[norms == 0] = 1.0
            self._train_norm = x / norms[:, None]
        return self

    def _distances(self, x: np.ndarray) -> np.ndarray:
        assert self._train_x is not None
        if self.metric == "cosine":
            norms = np.linalg.norm(x, axis=1)
            norms[norms == 0] = 1.0
            q = x / norms[:, None]
            return 1.0 - q @ self._train_norm.T
        x_sq = np.einsum("ij,ij->i", x, x)[:, None]
        t_sq = np.einsum("ij,ij->i", self._train_x, self._train_x)[None, :]
        d2 = x_sq - 2.0 * (x @ self._train_x.T) + t_sq
        np.maximum(d2, 0.0, out=d2)
        return d2

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted label per query row."""
        if self._train_x is None:
            raise RuntimeError("classifier is not fitted")
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        if x.ndim != 2 or x.shape[1] != self._train_x.shape[1]:
            raise ValueError("query dimensionality mismatch")
        k = min(self.k, self._train_x.shape[0])
        dist = self._distances(x)
        nn = np.argpartition(dist, k - 1, axis=1)[:, :k]
        nn_dist = np.take_along_axis(dist, nn, axis=1)
        nn_labels = self._train_y[nn]  # (q, k)

        num_classes = self._classes.shape[0]
        votes = np.zeros((x.shape[0], num_classes), dtype=np.int64)
        rows = np.repeat(np.arange(x.shape[0]), k)
        np.add.at(votes, (rows, nn_labels.ravel()), 1)
        # Tie-break: among max-vote classes prefer the one with the
        # nearest member (strictly better than arbitrary index order).
        best_votes = votes.max(axis=1)
        closest = np.full((x.shape[0], num_classes), np.inf)
        np.minimum.at(closest, (rows, nn_labels.ravel()), nn_dist.ravel())
        tied = votes == best_votes[:, None]
        closest[~tied] = np.inf
        winners = closest.argmin(axis=1)
        return self._classes[winners]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on (x, y)."""
        y = np.asarray(y)
        return float((self.predict(x) == y).mean())
