"""Exact t-SNE (van der Maaten & Hinton 2008).

The paper cites t-SNE alongside PCA as the principled route to
visualizing V2V vectors. This is the O(n²) exact formulation — fine for
the paper's 1 000–10 000-vertex graphs — with the standard machinery:
per-point perplexity calibration by binary search, early exaggeration,
and momentum gradient descent. All pairwise quantities are computed as
full matrices (one GEMM per iteration), never per-pair Python loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TSNE"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = np.einsum("ij,ij->i", x, x)
    d2 = sq[:, None] - 2.0 * (x @ x.T) + sq[None, :]
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return d2


def _conditional_probs(d2_row: np.ndarray, beta: float) -> tuple[np.ndarray, float]:
    """p_{j|i} for one row at precision ``beta``; returns (probs, entropy)."""
    p = np.exp(-d2_row * beta)
    total = p.sum()
    if total <= 0:
        p = np.full_like(p, 1.0 / max(p.shape[0], 1))
        return p, 0.0
    p /= total
    # Shannon entropy in nats, computed without log(0).
    nz = p > 0
    h = float(-(p[nz] * np.log(p[nz])).sum())
    return p, h


class TSNE:
    """Exact t-SNE embedding to ``n_components`` dimensions."""

    def __init__(
        self,
        n_components: int = 2,
        *,
        perplexity: float = 30.0,
        learning_rate: float = 200.0,
        n_iter: int = 500,
        early_exaggeration: float = 12.0,
        exaggeration_iter: int = 100,
        momentum: float = 0.8,
        seed: int | None = None,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        if perplexity <= 1:
            raise ValueError("perplexity must be > 1")
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.n_components = n_components
        self.perplexity = perplexity
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.early_exaggeration = early_exaggeration
        self.exaggeration_iter = exaggeration_iter
        self.momentum = momentum
        self.seed = seed
        self.kl_divergence_: float | None = None

    # ------------------------------------------------------------------
    def _joint_probabilities(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        d2 = _pairwise_sq_dists(x)
        target_entropy = np.log(self.perplexity)
        p_cond = np.zeros((n, n))
        for i in range(n):
            row = np.delete(d2[i], i)
            lo, hi = 1e-20, 1e20
            beta = 1.0
            for _ in range(64):
                probs, h = _conditional_probs(row, beta)
                if abs(h - target_entropy) < 1e-5:
                    break
                if h > target_entropy:
                    lo = beta
                    beta = beta * 2.0 if hi >= 1e20 else (beta + hi) / 2.0
                else:
                    hi = beta
                    beta = beta / 2.0 if lo <= 1e-20 else (beta + lo) / 2.0
            p_cond[i, np.arange(n) != i] = probs
        p = (p_cond + p_cond.T) / (2.0 * n)
        np.maximum(p, 1e-12, out=p)
        return p

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Embed rows of ``x``; returns an (n × n_components) array."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n = x.shape[0]
        if n <= self.perplexity:
            raise ValueError("perplexity must be smaller than the sample count")
        rng = np.random.default_rng(self.seed)
        p = self._joint_probabilities(x)

        y = rng.normal(scale=1e-4, size=(n, self.n_components))
        update = np.zeros_like(y)
        exaggerated = p * self.early_exaggeration
        for it in range(self.n_iter):
            target = exaggerated if it < self.exaggeration_iter else p
            d2 = _pairwise_sq_dists(y)
            inv = 1.0 / (1.0 + d2)
            np.fill_diagonal(inv, 0.0)
            q_norm = inv.sum()
            q = np.maximum(inv / max(q_norm, 1e-12), 1e-12)

            # Gradient: 4 * sum_j (p_ij - q_ij) * inv_ij * (y_i - y_j)
            coeff = (target - q) * inv
            grad = 4.0 * (np.diag(coeff.sum(axis=1)) - coeff) @ y
            momentum = 0.5 if it < 250 else self.momentum
            update = momentum * update - self.learning_rate * grad
            y += update
            y -= y.mean(axis=0)  # keep the embedding centered

        d2 = _pairwise_sq_dists(y)
        inv = 1.0 / (1.0 + d2)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / max(inv.sum(), 1e-12), 1e-12)
        mask = ~np.eye(n, dtype=bool)
        self.kl_divergence_ = float(
            (p[mask] * np.log(p[mask] / q[mask])).sum()
        )
        return y
