"""Spectral embedding (Laplacian eigenmaps) and spectral clustering.

The classical, walk-free way to embed a graph: the bottom eigenvectors
of the symmetric-normalized Laplacian ``L = I - D^{-1/2} A D^{-1/2}``.
Included as the natural baseline the paper's related work points toward
but never runs — the extension bench compares V2V's learned vectors
against this closed-form embedding on the same community task.

Eigenvectors come from ``scipy.sparse.linalg.eigsh`` on the sparse
Laplacian (shift-invert-free ``sigma=None``, smallest algebraic), which
handles the paper's graph sizes in milliseconds.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import eigsh

from repro.graph.core import Graph
from repro.ml.kmeans import KMeans

__all__ = ["spectral_embedding", "spectral_communities"]


def _laplacian(g: Graph) -> sparse.csr_matrix:
    src, dst = g.arc_array()
    w = g.edge_weights if g.edge_weights is not None else np.ones(src.shape[0])
    a = sparse.csr_matrix((w, (src, dst)), shape=(g.n, g.n))
    a = (a + a.T) / 2.0  # symmetrize (no-op for undirected CSR pairs)
    deg = np.asarray(a.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(deg)
    nz = deg > 0
    inv_sqrt[nz] = 1.0 / np.sqrt(deg[nz])
    d_half = sparse.diags(inv_sqrt)
    return sparse.identity(g.n, format="csr") - d_half @ a @ d_half


def spectral_embedding(
    g: Graph,
    dim: int = 8,
    *,
    drop_first: bool = True,
    seed: int | None = 0,
) -> np.ndarray:
    """Embed vertices with the ``dim`` smallest-eigenvalue eigenvectors
    of the normalized Laplacian.

    ``drop_first`` discards the trivial constant eigenvector (eigenvalue
    0 on a connected graph), matching standard spectral clustering. Rows
    are normalized to unit length (Ng–Jordan–Weiss), so downstream
    k-means sees directions, not degree-driven magnitudes.
    """
    if g.directed:
        raise ValueError("spectral embedding expects an undirected graph")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    k = dim + (1 if drop_first else 0)
    if k >= g.n:
        raise ValueError(f"dim too large: need dim + 1 < n = {g.n}")
    lap = _laplacian(g)
    rng = np.random.default_rng(seed)
    v0 = rng.random(g.n)
    vals, vecs = eigsh(lap, k=k, which="SA", v0=v0)
    order = np.argsort(vals)
    vecs = vecs[:, order]
    if drop_first:
        vecs = vecs[:, 1:]
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return vecs / norms


def spectral_communities(
    g: Graph,
    k: int,
    *,
    n_init: int = 10,
    seed: int | None = 0,
) -> np.ndarray:
    """Classic spectral clustering: k-means on the (k-1)-dimensional
    spectral embedding (one eigenvector per extra cluster)."""
    if k < 2:
        raise ValueError("k must be >= 2")
    emb = spectral_embedding(g, dim=max(k - 1, 1), seed=seed)
    return KMeans(k, n_init=n_init, seed=seed).fit_predict(emb)
