"""Multinomial logistic regression (softmax classifier), from scratch.

The paper notes that "k-NN is not the best accuracy classification
algorithm" (§V); this classifier is the natural stronger alternative for
the label-prediction task and the binary scorer behind the
link-prediction extension. Full-batch gradient descent with L2
regularization — the objective is convex, so plain GD with a modest
iteration count is reliable and deterministic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticRegression"]


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class LogisticRegression:
    """Softmax regression trained by batch gradient descent.

    Parameters
    ----------
    lr:
        Gradient-descent step size.
    l2:
        L2 penalty coefficient on the weights (not the intercept).
    max_iter:
        Gradient steps.
    tol:
        Stop when the loss improvement falls below this.
    """

    def __init__(
        self,
        *,
        lr: float = 0.5,
        l2: float = 1e-4,
        max_iter: int = 500,
        tol: float = 1e-7,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.lr = lr
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.classes_: np.ndarray | None = None
        self.coef_: np.ndarray | None = None  # (C, d)
        self.intercept_: np.ndarray | None = None  # (C,)
        self.loss_history_: list[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if y.shape != (x.shape[0],):
            raise ValueError("y must have one label per row")
        if x.shape[0] == 0:
            raise ValueError("training set must be non-empty")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        n, d = x.shape
        c = self.classes_.shape[0]
        if c < 2:
            raise ValueError("need at least two classes")
        w = np.zeros((c, d))
        b = np.zeros(c)
        onehot = np.zeros((n, c))
        onehot[np.arange(n), encoded] = 1.0

        # Standardize features for conditioning; fold back at the end.
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0] = 1.0
        xs = (x - mean) / std

        self.loss_history_ = []
        prev_loss = np.inf
        for _ in range(self.max_iter):
            probs = _softmax(xs @ w.T + b)
            loss = (
                -np.log(np.maximum(probs[np.arange(n), encoded], 1e-300)).mean()
                + 0.5 * self.l2 * float((w**2).sum())
            )
            self.loss_history_.append(loss)
            grad_logits = (probs - onehot) / n  # (n, c)
            grad_w = grad_logits.T @ xs + self.l2 * w
            grad_b = grad_logits.sum(axis=0)
            w -= self.lr * grad_w
            b -= self.lr * grad_b
            if prev_loss - loss < self.tol:
                break
            prev_loss = loss

        # Un-standardize: w_raw = w / std; b_raw = b - w·(mean/std).
        self.coef_ = w / std[None, :]
        self.intercept_ = b - (w * (mean / std)[None, :]).sum(axis=1)
        return self

    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("classifier is not fitted")

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.coef_.shape[1]:
            raise ValueError("query dimensionality mismatch")
        return x @ self.coef_.T + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.decision_function(x).argmax(axis=1)]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(y)).mean())
