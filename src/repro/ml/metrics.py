"""Clustering and classification metrics.

``pairwise_precision_recall`` is the paper's evaluation metric for
community detection (Section III-B): precision/recall over vertex
*pairs*, where a pair is a true positive when both vertices share a
ground-truth community **and** a predicted cluster. All pair counts are
computed from the contingency table in closed form — O(#clusters ×
#communities) instead of O(n²) pair enumeration.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_precision_recall",
    "pairwise_f1",
    "accuracy",
    "purity",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "silhouette_score",
    "confusion_counts",
]


def _contingency(truth: np.ndarray, pred: np.ndarray) -> np.ndarray:
    """Contingency table: rows = truth classes, cols = predicted clusters."""
    truth = np.asarray(truth)
    pred = np.asarray(pred)
    if truth.shape != pred.shape or truth.ndim != 1:
        raise ValueError("truth and pred must be 1-D arrays of equal length")
    _, t = np.unique(truth, return_inverse=True)
    _, p = np.unique(pred, return_inverse=True)
    table = np.zeros((t.max() + 1, p.max() + 1), dtype=np.int64)
    np.add.at(table, (t, p), 1)
    return table


def _pairs(x: np.ndarray) -> np.ndarray:
    """n choose 2 elementwise."""
    x = x.astype(np.float64)
    return x * (x - 1.0) / 2.0


def confusion_counts(truth: np.ndarray, pred: np.ndarray) -> tuple[float, float, float, float]:
    """Pair-level (TP, FP, FN, TN) between a truth partition and a clustering."""
    table = _contingency(truth, pred)
    n = table.sum()
    tp = _pairs(table).sum()
    same_pred = _pairs(table.sum(axis=0)).sum()
    same_truth = _pairs(table.sum(axis=1)).sum()
    fp = same_pred - tp
    fn = same_truth - tp
    total = _pairs(np.asarray([n])).sum()
    tn = total - tp - fp - fn
    return float(tp), float(fp), float(fn), float(tn)


def pairwise_precision_recall(
    truth: np.ndarray, pred: np.ndarray
) -> tuple[float, float]:
    """The paper's precision/recall over vertex pairs.

    precision = TP / (TP + FP): of the pairs clustered together, the
    fraction that truly share a community. recall = TP / (TP + FN): of
    the pairs sharing a community, the fraction clustered together.
    Degenerate denominators yield 1.0 (an empty claim is vacuously
    correct).
    """
    tp, fp, fn, _tn = confusion_counts(truth, pred)
    precision = tp / (tp + fp) if tp + fp > 0 else 1.0
    recall = tp / (tp + fn) if tp + fn > 0 else 1.0
    return float(precision), float(recall)


def pairwise_f1(truth: np.ndarray, pred: np.ndarray) -> float:
    p, r = pairwise_precision_recall(truth, pred)
    return 2 * p * r / (p + r) if p + r > 0 else 0.0


def accuracy(truth: np.ndarray, pred: np.ndarray) -> float:
    """Fraction of exact label matches (classification accuracy)."""
    truth = np.asarray(truth)
    pred = np.asarray(pred)
    if truth.shape != pred.shape:
        raise ValueError("shape mismatch")
    if truth.size == 0:
        return 1.0
    return float((truth == pred).mean())


def purity(truth: np.ndarray, pred: np.ndarray) -> float:
    """Cluster purity: sum of majority-class sizes / n."""
    table = _contingency(truth, pred)
    n = table.sum()
    return float(table.max(axis=0).sum() / n) if n else 1.0


def adjusted_rand_index(truth: np.ndarray, pred: np.ndarray) -> float:
    """Hubert & Arabie's chance-adjusted Rand index."""
    table = _contingency(truth, pred)
    n = table.sum()
    if n < 2:
        return 1.0
    sum_comb = _pairs(table).sum()
    sum_rows = _pairs(table.sum(axis=1)).sum()
    sum_cols = _pairs(table.sum(axis=0)).sum()
    total = _pairs(np.asarray([n]))[0]
    expected = sum_rows * sum_cols / total
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_comb - expected) / (max_index - expected))


def normalized_mutual_information(truth: np.ndarray, pred: np.ndarray) -> float:
    """NMI with arithmetic-mean normalization."""
    table = _contingency(truth, pred).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 1.0
    pij = table / n
    pi = pij.sum(axis=1)
    pj = pij.sum(axis=0)
    nz = pij > 0
    outer = pi[:, None] * pj[None, :]
    mi = float((pij[nz] * np.log(pij[nz] / outer[nz])).sum())
    hi = float(-(pi[pi > 0] * np.log(pi[pi > 0])).sum())
    hj = float(-(pj[pj > 0] * np.log(pj[pj > 0])).sum())
    denom = (hi + hj) / 2.0
    if denom == 0:
        return 1.0
    return mi / denom


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (euclidean); O(n²) exact computation.

    Used to quantify the Fig 8 claim that continents separate in
    embedding space. Singleton clusters contribute 0.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    if x.ndim != 2 or labels.shape != (x.shape[0],):
        raise ValueError("x must be 2-D with one label per row")
    classes, encoded = np.unique(labels, return_inverse=True)
    k = classes.shape[0]
    n = x.shape[0]
    if k < 2 or n < 3:
        raise ValueError("need at least 2 clusters and 3 samples")
    sq = np.einsum("ij,ij->i", x, x)
    d = np.sqrt(np.maximum(sq[:, None] - 2 * (x @ x.T) + sq[None, :], 0.0))
    onehot = np.zeros((n, k))
    onehot[np.arange(n), encoded] = 1.0
    sums = d @ onehot  # (n, k): total distance to each cluster
    counts = onehot.sum(axis=0)
    own = encoded
    own_count = counts[own]
    scores = np.zeros(n)
    valid = own_count > 1
    a = np.zeros(n)
    a[valid] = sums[np.arange(n), own][valid] / (own_count[valid] - 1)
    mean_other = sums / np.maximum(counts[None, :], 1)
    mean_other[np.arange(n), own] = np.inf
    b = mean_other.min(axis=1)
    denom = np.maximum(a, b)
    good = valid & (denom > 0)
    scores[good] = (b[good] - a[good]) / denom[good]
    return float(scores.mean())
