"""Principal Component Analysis via thin SVD.

The paper projects V2V vectors onto the top two/three principal
components for the Fig 4 and Fig 8 visualizations. Per the HPC guide, we
use the economy SVD (``full_matrices=False``) — the full decomposition is
orders of magnitude slower and its extra columns are never used.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Fit principal components; transform projects onto the top ones.

    Components follow a deterministic sign convention (largest-magnitude
    loading positive), so repeated fits of the same data agree exactly.
    """

    def __init__(self, n_components: int = 2) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n, d = x.shape
        if n < 2:
            raise ValueError("need at least two samples")
        if self.n_components > min(n, d):
            raise ValueError(
                f"n_components={self.n_components} exceeds min(n, d)={min(n, d)}"
            )
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        _u, s, vt = np.linalg.svd(centered, full_matrices=False)
        comps = vt[: self.n_components]
        # Deterministic sign: flip each component so its largest-|.| entry > 0.
        signs = np.sign(comps[np.arange(comps.shape[0]), np.abs(comps).argmax(axis=1)])
        signs[signs == 0] = 1.0
        self.components_ = comps * signs[:, None]
        var = (s**2) / (n - 1)
        self.explained_variance_ = var[: self.n_components]
        total = var.sum()
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0 else np.zeros_like(self.explained_variance_)
        )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA is not fitted")
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map projected points back to the original space (lossy)."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA is not fitted")
        return np.asarray(z, dtype=np.float64) @ self.components_ + self.mean_
