"""Orthogonal Procrustes alignment of embeddings.

Two V2V trainings of the same graph produce embeddings that agree only
up to rotation/reflection (the CBOW objective is invariant to orthogonal
maps of the embedding space). Comparing them — for stability analysis,
for incremental re-training drift, or for visual overlay — requires
aligning one onto the other first. This is the classic orthogonal
Procrustes problem, solved exactly by one SVD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ProcrustesResult", "procrustes_align", "aligned_distance"]


@dataclass(frozen=True)
class ProcrustesResult:
    """Rotation and residual of an alignment ``source @ rotation ≈ target``."""

    rotation: np.ndarray
    residual: float
    aligned: np.ndarray


def procrustes_align(
    source: np.ndarray, target: np.ndarray, *, allow_scaling: bool = False
) -> ProcrustesResult:
    """Find the orthogonal map (optionally with a global scale) that best
    maps ``source`` onto ``target`` in the least-squares sense.

    Solves min_R ||source @ R - target||_F over orthogonal R via the SVD
    of ``source.T @ target``. With ``allow_scaling`` the optimal scalar
    ``s = trace(Σ) / ||source||²`` multiplies the rotation.
    """
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.shape != target.shape or source.ndim != 2:
        raise ValueError("source and target must be equal-shape 2-D arrays")
    u, s, vt = np.linalg.svd(source.T @ target)
    rotation = u @ vt
    if allow_scaling:
        norm_sq = float((source**2).sum())
        if norm_sq == 0:
            raise ValueError("cannot scale-align a zero source")
        rotation = rotation * (s.sum() / norm_sq)
    aligned = source @ rotation
    residual = float(np.linalg.norm(aligned - target))
    return ProcrustesResult(rotation=rotation, residual=residual, aligned=aligned)


def aligned_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Rotation-invariant relative distance between two embeddings.

    ``||aR - b|| / ||b||`` with the optimal orthogonal ``R`` — 0 means
    the embeddings are identical up to rotation/reflection; values near
    ``sqrt(2)`` mean unrelated geometries.
    """
    result = procrustes_align(a, b)
    denom = float(np.linalg.norm(b))
    if denom == 0:
        return 0.0 if result.residual == 0 else float("inf")
    return result.residual / denom
