"""Shard-parallel walk generation over a memory-mapped graph store.

The in-memory engine (:mod:`repro.walks.engine`) advances every walk in
lock step over heap CSR arrays. This engine instead processes walks
*shard-major* over a :class:`repro.graph.store.GraphStore`: each shard's
frontier-batched stepper touches only its own mmap'd CSR row range, so
peak residency is one shard's working set, not the graph. Walks that
hop across a shard boundary are **parked** and handed to the owning
shard at the next **exchange round** (a BSP-style barrier); the loop
ends when every walk has finished or died.

**Determinism.** The corpus must be bitwise-identical for any shard
count, worker count, and scheduling order — shard layout is a runtime
concern, never model identity. Sequential RNG streams cannot deliver
that (the interleaving of draws would depend on which walks share a
shard), so every draw here is *counter-based*: step ``s`` of walk ``w``
consumes ``u = mix64(key, w, s)`` — a SplitMix64-style hash of the walk
id and step index under a key derived from ``config.seed``. The draw
depends only on (seed, walk, step); park/resume and exchange order
cannot perturb it. The merged corpus therefore equals the single-shard
corpus byte for byte (the acceptance test of this subsystem), and a
killed-and-respawned shard task rewrites exactly the rows it would have
written (the chaos test).

Draws differ from the in-memory engine's ``Generator``-stream draws, so
the sharded corpus is its own reproducibility anchor
(``tests/walks/test_shard_golden.py``) rather than a byte-twin of
``generate_walks`` on the equivalent in-memory graph.

Modes: uniform, weighted (binary search over the store's per-row
cumulative weights — no in-RAM alias tables), vertex-weighted (same,
over target-vertex weights), temporal (rows are time-sorted at build;
eligibility is a segment binary search). ``node2vec`` is not supported
out-of-core: its rejection sampler consumes an unbounded number of
draws per step, which breaks the fixed (walk, step) counter addressing.

Walk tokens are mapped back to **original** vertex ids through the
store's persisted permutation before the corpus is returned, so
downstream stages (training, detection, labels) see the same id space
as the in-memory path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.obs.recorder import current_recorder
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import (
    PAD,
    RandomWalkConfig,
    WalkMode,
    _segment_searchsorted,
)

__all__ = ["generate_walks_sharded", "hash_uniform"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_LANE_SALT = 0xD1B54A32D192ED03


def _mix64_int(x: int) -> int:
    """SplitMix64 finalizer on a Python int (key derivation only)."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _mix64(z: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer (uint64 in, uint64 out)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def derive_key(seed: int | None) -> int:
    """64-bit hash key from a walk config seed (entropy-random for None)."""
    entropy = np.random.SeedSequence(seed).entropy
    folded = (entropy ^ (entropy >> 64) ^ (entropy >> 128)) & _MASK64
    return _mix64_int(folded ^ _GOLDEN)


def hash_uniform(
    key: int, walk_ids: np.ndarray, steps: np.ndarray, lane: int = 0
) -> np.ndarray:
    """Counter-based uniforms in [0, 1): one per (walk, step) pair.

    ``u[i] = f(key, walk_ids[i], steps[i], lane)`` with no sequential
    state — the property the whole sharded engine's determinism rests
    on. 53-bit mantissa draws, matching ``Generator.random`` precision.
    """
    w = np.asarray(walk_ids, dtype=np.uint64)
    s = np.asarray(steps, dtype=np.uint64)
    k = np.uint64((key ^ _mix64_int(lane * _LANE_SALT + _GOLDEN)) & _MASK64)
    z = _mix64(w * np.uint64(_GOLDEN) ^ k)
    z = _mix64(z + s * np.uint64(0xBF58476D1CE4E5B9))
    return (z >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))


# ---------------------------------------------------------------------------
# In-shard batch advance


@dataclass
class _Batch:
    """Walks currently resident in one shard, mid-flight."""

    wid: np.ndarray  # walk id == output row
    cur: np.ndarray  # current vertex (store id space)
    step: np.ndarray  # next column to write (1 <= step < walk_length)
    tprev: np.ndarray  # temporal state: time of last traversed arc

    @property
    def size(self) -> int:
        return int(self.wid.shape[0])

    def take(self, mask: np.ndarray, cur: np.ndarray) -> "_Batch":
        return _Batch(self.wid[mask], cur[mask], self.step[mask], self.tprev[mask])


def _empty_batch() -> _Batch:
    e = np.empty(0, dtype=np.int64)
    return _Batch(e, e.copy(), e.copy(), np.empty(0, dtype=np.float64))


def _concat_batches(batches: list[_Batch]) -> _Batch:
    real = [b for b in batches if b.size]
    if not real:
        return _empty_batch()
    if len(real) == 1:
        return real[0]
    return _Batch(
        np.concatenate([b.wid for b in real]),
        np.concatenate([b.cur for b in real]),
        np.concatenate([b.step for b in real]),
        np.concatenate([b.tprev for b in real]),
    )


def _advance_batch(
    arrays: dict,
    lo: int,
    hi: int,
    walk_length: int,
    key: int,
    mode: WalkMode,
    time_window: float | None,
    batch: _Batch,
    out: np.ndarray,
) -> _Batch:
    """Advance ``batch`` until every walk finishes, dies, or leaves [lo, hi).

    Writes completed positions into ``out`` rows (by walk id) and
    returns the parked walks (those whose next vertex lives in another
    shard). All indexing goes through the store's mmap'd arrays, so the
    pages touched are exactly the rows visited.
    """
    from repro.resilience.lifecycle import current_cancel_scope
    from repro.resilience.supervisor import current_heartbeat

    heartbeat = current_heartbeat()
    scope = current_cancel_scope()
    indptr = arrays["indptr"]
    indices = arrays["indices"]
    parked: list[_Batch] = []
    while batch.size:
        heartbeat.beat()
        scope.check()
        row_start = indptr[batch.cur]
        row_stop = indptr[batch.cur + 1]
        u = hash_uniform(key, batch.wid, batch.step)
        if mode is WalkMode.TEMPORAL:
            times = arrays["times"]
            elig_lo = _segment_searchsorted(
                times, row_start, row_stop, batch.tprev, side="right"
            )
            if time_window is not None:
                cap = np.where(
                    np.isinf(batch.tprev), np.inf, batch.tprev + time_window
                )
                elig_hi = _segment_searchsorted(
                    times, row_start, row_stop, cap, side="right"
                )
            else:
                elig_hi = row_stop
            count = elig_hi - elig_lo
            ok = count > 0
            pick = elig_lo + (u * np.maximum(count, 1)).astype(np.int64)
            np.minimum(pick, np.maximum(elig_hi - 1, 0), out=pick)
            nxt = np.where(ok, indices[np.minimum(pick, indices.shape[0] - 1)], PAD)
            tnew = np.where(
                ok, times[np.minimum(pick, times.shape[0] - 1)], batch.tprev
            )
        else:
            deg = row_stop - row_start
            ok = deg > 0
            safe_deg = np.maximum(deg, 1)
            offs = (u * safe_deg).astype(np.int64)
            np.minimum(offs, safe_deg - 1, out=offs)
            pick = row_start + offs
            if mode in (WalkMode.WEIGHTED, WalkMode.VERTEX_WEIGHTED):
                cum = (
                    arrays["cum_weights"]
                    if mode is WalkMode.WEIGHTED
                    else arrays["cum_vertex_weights"]
                )
                total = cum[np.maximum(row_stop - 1, 0)] * ok
                positive = total > 0
                if np.any(positive):
                    target = u * total
                    wpick = _segment_searchsorted(
                        cum, row_start, row_stop, target, side="left"
                    )
                    np.minimum(wpick, np.maximum(row_stop - 1, 0), out=wpick)
                    # All-zero rows keep the uniform fallback pick, the
                    # same degeneration convention as build_arc_alias.
                    pick = np.where(positive, wpick, pick)
            nxt = np.where(ok, indices[np.minimum(pick, indices.shape[0] - 1)], PAD)
            tnew = batch.tprev
        # Dead walks (no eligible arc) write nothing further; their rows
        # stay PAD from this column on.
        alive = np.asarray(ok)
        wid_a = batch.wid[alive]
        nxt_a = np.asarray(nxt)[alive]
        step_a = batch.step[alive]
        out[wid_a, step_a] = nxt_a
        step_a = step_a + 1
        tprev_a = np.asarray(tnew)[alive]
        unfinished = step_a < walk_length
        wid_a, nxt_a, step_a, tprev_a = (
            wid_a[unfinished],
            nxt_a[unfinished],
            step_a[unfinished],
            tprev_a[unfinished],
        )
        resident = (nxt_a >= lo) & (nxt_a < hi)
        if not np.all(resident):
            parked.append(
                _Batch(
                    wid_a[~resident],
                    nxt_a[~resident],
                    step_a[~resident],
                    tprev_a[~resident],
                )
            )
        batch = _Batch(
            wid_a[resident], nxt_a[resident], step_a[resident], tprev_a[resident]
        )
    return _concat_batches(parked)


# ---------------------------------------------------------------------------
# Worker-side shard task (parallel rounds)


@dataclass(frozen=True)
class _ShardTask:
    """One shard's work for one exchange round, picklable in O(batch).

    Carries the store *path* — workers mmap the shard's row range
    themselves (cached per process) — so no CSR bytes ever cross the
    pool pipe, unlike the in-memory engine's shm export.
    """

    store_path: str
    array_names: tuple
    lo: int
    hi: int
    walk_length: int
    key: int
    mode: WalkMode
    time_window: float | None
    wid: np.ndarray
    cur: np.ndarray
    step: np.ndarray
    tprev: np.ndarray
    out: "object"  # SharedArraySpec of the (num_walks, walk_length) matrix


_WORKER_ARRAYS: dict = {}


def _store_arrays(path: str, names: tuple) -> dict:
    """Open (and cache) a store's arrays as read-only mmaps, per process."""
    cached = _WORKER_ARRAYS.get(path)
    if cached is None or any(name not in cached for name in names):
        from pathlib import Path

        cached = {
            name: np.load(
                Path(path) / f"{name}.npy", mmap_mode="r", allow_pickle=False
            )
            for name in names
        }
        _WORKER_ARRAYS[path] = cached
    return cached


def _shard_task(task: _ShardTask) -> tuple[_Batch, int, float]:
    """Advance one shard's resident walks; returns (parked, advanced, secs).

    Idempotent by construction: draws are counter-based and the walks a
    task writes are exactly the rows of the walk ids it carries, so a
    killed-and-respawned task (supervisor ladder) rewrites identical
    bytes.
    """
    from repro.parallel.shm import SharedArray

    started = time.perf_counter()
    arrays = _store_arrays(task.store_path, task.array_names)
    batch = _Batch(task.wid, task.cur, task.step, task.tprev)
    advanced = batch.size
    out = SharedArray.attach(task.out)
    try:
        parked = _advance_batch(
            arrays,
            task.lo,
            task.hi,
            task.walk_length,
            task.key,
            task.mode,
            task.time_window,
            batch,
            out.array,
        )
    finally:
        out.close()
    return parked, advanced, time.perf_counter() - started


# ---------------------------------------------------------------------------
# Public engine


def generate_walks_sharded(
    store,
    config: RandomWalkConfig | None = None,
    *,
    context=None,
) -> WalkCorpus:
    """Generate the walk corpus from a :class:`GraphStore`, shard by shard.

    The result is bitwise-identical for any shard count and worker
    count at a fixed ``config.seed`` (see module docstring), with walk
    tokens in **original** vertex ids. Runtime policy (workers,
    supervision, cancellation, chaos hooks) comes from ``context``
    exactly as for :func:`repro.walks.engine.generate_walks`; the
    ``context.shards`` field, when set, caps how many shard tasks run
    concurrently per exchange round.

    Durable chunk checkpointing is not implemented for the sharded path
    (see docs/scaling.md): shard tasks are idempotent and cheap to
    recompute, so resilience comes from the supervisor respawn ladder
    instead.
    """
    from repro.pipeline.context import context_from_legacy

    ctx = context_from_legacy(context)
    config = config or RandomWalkConfig()
    mode = WalkMode(config.mode)
    _validate_store_mode(store, mode)

    n = int(store.n)
    perm = np.asarray(store.permutation())
    starts_orig = _resolve_starts(config, n)
    num_walks = starts_orig.shape[0] * config.walks_per_vertex
    walk_length = int(config.walk_length)
    rec = current_recorder()
    workers = ctx.resolve_workers()
    num_shards = int(store.num_shards)
    concurrency = min(workers, num_shards)
    shards_cap = getattr(ctx, "shards", None)
    if shards_cap:
        concurrency = max(1, min(concurrency, int(shards_cap)))

    with ctx.lifecycle(), rec.span(
        "walks.generate",
        n=n,
        mode=str(mode.value),
        walks_per_vertex=config.walks_per_vertex,
        walk_length=walk_length,
        workers=workers,
        shards=num_shards,
    ) as span:
        with rec.time("walks.generate_seconds") as timer:
            walks = _run_exchange_loop(
                store,
                config,
                ctx,
                perm,
                starts_orig,
                num_walks,
                concurrency,
            )
        corpus = WalkCorpus(walks, num_vertices=n)
        if rec.enabled:
            walks_per_sec = corpus.num_walks / max(timer.seconds, 1e-9)
            rec.inc("walks.total", corpus.num_walks)
            rec.inc("walks.tokens", corpus.num_tokens)
            rec.set("walks.walks_per_sec", walks_per_sec)
            rec.inc("shard.walks", corpus.num_walks)
            rec.set("shard.shards", float(num_shards))
            span.annotate(
                walks=corpus.num_walks,
                tokens=corpus.num_tokens,
                walks_per_sec=round(walks_per_sec, 1),
            )
        return corpus


def _resolve_starts(config: RandomWalkConfig, n: int) -> np.ndarray:
    """Start vertices in *original* id space (the public API's space)."""
    if config.start_vertices is not None:
        starts = np.asarray(config.start_vertices, dtype=np.int64)
        if starts.size and (starts.min() < 0 or starts.max() >= n):
            raise ValueError("start vertex out of range")
        return starts
    return np.arange(n, dtype=np.int64)


def _validate_store_mode(store, mode: WalkMode) -> None:
    if mode is WalkMode.NODE2VEC:
        raise ValueError(
            "node2vec walks are not supported on a graph store: the "
            "rejection sampler draws an unbounded stream per step, which "
            "breaks counter-based shard determinism — use the in-memory "
            "engine for node2vec"
        )
    if mode is WalkMode.WEIGHTED and store.edge_weights is None:
        raise ValueError("WEIGHTED walk requires edge weights")
    if mode is WalkMode.VERTEX_WEIGHTED and store.vertex_weights is None:
        raise ValueError("VERTEX_WEIGHTED walk requires vertex weights")
    if mode is WalkMode.TEMPORAL and store.edge_times is None:
        raise ValueError("TEMPORAL walk requires edge timestamps")


def _mode_arrays(mode: WalkMode) -> tuple:
    names = ["indptr", "indices"]
    if mode is WalkMode.WEIGHTED:
        names.append("cum_weights")
    elif mode is WalkMode.VERTEX_WEIGHTED:
        names.append("cum_vertex_weights")
    elif mode is WalkMode.TEMPORAL:
        names.append("times")
    return tuple(names)


def _run_exchange_loop(
    store,
    config: RandomWalkConfig,
    ctx,
    perm: np.ndarray,
    starts_orig: np.ndarray,
    num_walks: int,
    concurrency: int,
) -> np.ndarray:
    """The deterministic frontier-exchange loop; returns original-id walks."""
    mode = WalkMode(config.mode)
    walk_length = int(config.walk_length)
    n = int(store.n)
    key = derive_key(config.seed)
    bounds = np.asarray(store.shard_bounds)
    num_shards = int(store.num_shards)
    rec = current_recorder()

    # Map starts into the store's (shard-contiguous) id space; walk row
    # i starts at original vertex starts_orig[i % len(starts_orig)],
    # matching the in-memory engine's row layout.
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n, dtype=np.int64)
    starts_new = np.tile(inverse[starts_orig], config.walks_per_vertex)

    walks = np.full((num_walks, walk_length), PAD, dtype=np.int64)
    if num_walks == 0 or n == 0:
        return walks
    walks[:, 0] = starts_new
    if walk_length == 1:
        return _to_original_ids(walks, perm)

    array_names = _mode_arrays(mode)
    parent_arrays = {name: getattr_store_array(store, name) for name in array_names}

    pending = _Batch(
        np.arange(num_walks, dtype=np.int64),
        starts_new.copy(),
        np.ones(num_walks, dtype=np.int64),
        np.full(num_walks, -np.inf),
    )
    queues: list[_Batch] = _route(pending, bounds, num_shards)

    use_pool = concurrency > 1
    shared = None
    out = walks
    if use_pool:
        from repro.parallel.shm import SHM_AVAILABLE, SharedArray

        if SHM_AVAILABLE:
            shared = SharedArray.create((num_walks, walk_length), np.int64)
            shared.array[:] = walks
            out = shared.array
        else:  # pragma: no cover - exotic platforms only
            use_pool = False

    rounds = 0
    exchanged = 0
    try:
        while True:
            occupied = [s for s in range(num_shards) if queues[s].size]
            if not occupied:
                break
            ctx.check_cancelled()
            round_started = time.perf_counter()
            if use_pool:
                from repro.parallel.pool import parallel_map

                tasks = [
                    _ShardTask(
                        store_path=str(store.path),
                        array_names=array_names,
                        lo=int(bounds[s]),
                        hi=int(bounds[s + 1]),
                        walk_length=walk_length,
                        key=key,
                        mode=mode,
                        time_window=config.time_window,
                        wid=queues[s].wid,
                        cur=queues[s].cur,
                        step=queues[s].step,
                        tprev=queues[s].tprev,
                        out=shared.spec,
                    )
                    for s in occupied
                ]
                results = parallel_map(
                    ctx.wrap_task(_shard_task),
                    tasks,
                    workers=concurrency,
                    supervisor=ctx.supervisor,
                )
                parked_all = [r[0] for r in results]
                if rec.enabled:
                    for (_parked, advanced, seconds) in results:
                        rec.observe("shard.task_seconds", seconds)
                        rec.event(
                            "shard.task",
                            level="debug",
                            walks=int(advanced),
                            seconds=round(seconds, 6),
                        )
            else:
                parked_all = []
                for s in occupied:
                    parked_all.append(
                        _advance_batch(
                            parent_arrays,
                            int(bounds[s]),
                            int(bounds[s + 1]),
                            walk_length,
                            key,
                            mode,
                            config.time_window,
                            queues[s],
                            out,
                        )
                    )
            parked = _concat_batches(parked_all)
            queues = _route(parked, bounds, num_shards)
            rounds += 1
            exchanged += parked.size
            if rec.enabled:
                rec.inc("shard.rounds")
                rec.observe(
                    "shard.round_seconds", time.perf_counter() - round_started
                )
                rec.event(
                    "shard.round",
                    level="debug",
                    round=rounds,
                    shards_active=len(occupied),
                    parked=int(parked.size),
                )
        if shared is not None:
            walks = shared.copy()
    finally:
        if shared is not None:
            shared.destroy()
    if rec.enabled:
        rec.inc("shard.exchanged", exchanged)
        rec.event(
            "shard.exchange_done",
            rounds=rounds,
            exchanged=exchanged,
            walks=num_walks,
        )
    return _to_original_ids(walks, perm)


def getattr_store_array(store, name: str) -> np.ndarray:
    """A store array by its file name (parent-process serial path)."""
    lookup = {
        "indptr": store.indptr,
        "indices": store.indices,
        "times": store.edge_times,
    }
    if name in lookup and lookup[name] is not None:
        return lookup[name]
    return store._arrays[name]


def _route(batch: _Batch, bounds: np.ndarray, num_shards: int) -> list[_Batch]:
    """Bucket walks by the shard owning their current vertex."""
    queues = [_empty_batch() for _ in range(num_shards)]
    if not batch.size:
        return queues
    shard_ids = np.searchsorted(bounds, batch.cur, side="right") - 1
    for s in np.unique(shard_ids):
        mask = shard_ids == s
        queues[int(s)] = _Batch(
            batch.wid[mask], batch.cur[mask], batch.step[mask], batch.tprev[mask]
        )
    return queues


def _to_original_ids(walks: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Map store-space tokens back to original vertex ids (PAD preserved)."""
    safe = np.maximum(walks, 0)
    return np.where(walks == PAD, PAD, perm[safe])
