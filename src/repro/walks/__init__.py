"""Constrained random-walk engine (Section II-A of the paper).

Walks advance in structure-of-arrays form: one vectorized step moves every
active walk simultaneously, so generating ``t * |V|`` walks of length ``l``
costs ``l`` numpy passes instead of ``t * |V| * l`` Python iterations.
"""

from repro.walks.alias import AliasTable, build_arc_alias
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, WalkMode, generate_walks
from repro.walks.sharded import generate_walks_sharded
from repro.walks.stats import CorpusStats, corpus_stats, crossing_rate

__all__ = [
    "AliasTable",
    "build_arc_alias",
    "WalkCorpus",
    "RandomWalkConfig",
    "WalkMode",
    "generate_walks",
    "generate_walks_sharded",
    "CorpusStats",
    "corpus_stats",
    "crossing_rate",
]
