"""Walk corpus: the "sentences" consumed by the CBOW/SkipGram trainers.

A corpus is a dense int64 matrix (walks × walk_length) padded with ``-1``
after a walk terminates. Context extraction produces the padded
(center, contexts, mask) batches the vectorized trainers consume, without
ever materializing Python lists of tokens.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = ["WalkCorpus"]

PAD = -1


class WalkCorpus:
    """A set of vertex sequences produced by the walk engine.

    Parameters
    ----------
    walks:
        2-D int64 array; row = walk; ``-1`` marks padding. Padding may
        only appear as a suffix of a row.
    num_vertices:
        Size of the vertex universe (vocabulary size upper bound).
    shared:
        Optional owning :class:`repro.parallel.shm.SharedArray` whose
        view ``walks`` is — the zero-copy handoff from a parallel walk
        engine. The corpus owns the segment: :meth:`release` (or garbage
        collection of the corpus) unlinks it; the walks survive as a
        private copy only if :meth:`release` was called explicitly.
    """

    def __init__(
        self, walks: np.ndarray, *, num_vertices: int, shared=None
    ) -> None:
        walks = np.asarray(walks, dtype=np.int64)
        if walks.ndim != 2:
            raise ValueError("walks must be a 2-D array")
        if walks.size and walks.max() >= num_vertices:
            raise ValueError("walk token exceeds num_vertices")
        self._walks = np.ascontiguousarray(walks)
        self._shared = shared if self._walks is walks else None
        if shared is not None and self._shared is None:
            # The caller's array was copied/relaid — the segment backs
            # nothing we hold, so drop it now rather than leak.
            shared.destroy()
        self._num_vertices = int(num_vertices)
        valid = self._walks != PAD
        # Padding must be a suffix: a valid token may not follow a pad.
        if walks.shape[1] > 1 and np.any(~valid[:, :-1] & valid[:, 1:]):
            raise ValueError("padding (-1) must only appear as a row suffix")
        self._lengths = valid.sum(axis=1).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def walks(self) -> np.ndarray:
        return self._walks

    @property
    def is_shared(self) -> bool:
        """Whether the walk matrix is backed by a shared-memory segment."""
        return self._shared is not None

    def release(self) -> None:
        """Detach from shared memory (no-op for ordinary corpora).

        The walk data is first copied to a private heap array, so the
        corpus stays fully usable; the underlying segment is then
        unlinked. Idempotent.
        """
        if self._shared is None:
            return
        shared, self._shared = self._shared, None
        self._walks = self._walks.copy()
        shared.destroy()

    @property
    def lengths(self) -> np.ndarray:
        """Number of real (non-pad) tokens per walk."""
        return self._lengths

    @property
    def num_walks(self) -> int:
        return int(self._walks.shape[0])

    @property
    def max_length(self) -> int:
        return int(self._walks.shape[1])

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_tokens(self) -> int:
        """Total real tokens across all walks."""
        return int(self._lengths.sum())

    def __len__(self) -> int:
        return self.num_walks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WalkCorpus(walks={self.num_walks}, max_len={self.max_length}, "
            f"tokens={self.num_tokens}, vertices={self._num_vertices})"
        )

    # ------------------------------------------------------------------
    def sentences(self) -> Iterator[np.ndarray]:
        """Iterate walks as variable-length arrays (pads stripped)."""
        for row, ln in zip(self._walks, self._lengths):
            yield row[: int(ln)]

    def token_counts(self) -> np.ndarray:
        """Occurrence count of each vertex across the corpus."""
        flat = self._walks[self._walks != PAD]
        return np.bincount(flat, minlength=self._num_vertices).astype(np.int64)

    def coverage(self) -> float:
        """Fraction of vertices that appear at least once."""
        if self._num_vertices == 0:
            return 1.0
        return float((self.token_counts() > 0).mean())

    # ------------------------------------------------------------------
    def context_arrays(self, window: int) -> tuple[np.ndarray, np.ndarray]:
        """All (center, padded-context) training examples.

        Returns
        -------
        centers:
            int64 array of shape (num_examples,).
        contexts:
            int64 array of shape (num_examples, 2 * window); ``-1`` where
            the window ran off the walk (mask it in the trainer).

        The paper's window is symmetric: ``n`` vertices before and after
        the center within the same walk. Construction is fully
        vectorized: we build a (walks × len × 2*window) gather-index cube
        with offsets [-window..-1, 1..window] and clamp/mask the edges.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        walks, lengths = self._walks, self._lengths
        num_walks, max_len = walks.shape
        if num_walks == 0 or max_len == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, 2 * window), dtype=np.int64),
            )
        offsets = np.concatenate(
            [np.arange(-window, 0), np.arange(1, window + 1)]
        )  # (2w,)
        pos = np.arange(max_len)
        gather = pos[None, :, None] + offsets[None, None, :]  # (1, L, 2w)
        in_bounds = (gather >= 0) & (gather < max_len)
        safe = np.clip(gather, 0, max_len - 1)
        ctx = walks[np.arange(num_walks)[:, None, None], safe]  # (W, L, 2w)
        valid_ctx = in_bounds & (ctx != PAD)
        ctx = np.where(valid_ctx, ctx, PAD)
        center_valid = walks != PAD  # (W, L)
        # An example needs a real center and at least one real context.
        keep = center_valid & valid_ctx.any(axis=2)
        centers = walks[keep]
        contexts = ctx[keep]
        return centers.astype(np.int64), contexts.astype(np.int64)

    def context_batches(
        self, window: int, *, rows_per_batch: int = 1024
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Stream (centers, contexts) example blocks, one walk-row chunk
        at a time.

        Memory stays O(rows_per_batch × walk_length × window) regardless
        of corpus size — the path that makes the paper's t = ℓ = 1000
        corpora (10⁹ tokens) trainable without materializing ~10¹⁰
        context slots. Semantics match :meth:`context_arrays`: the
        concatenation of all batches equals the full example set.
        """
        if rows_per_batch < 1:
            raise ValueError("rows_per_batch must be >= 1")
        for lo in range(0, self.num_walks, rows_per_batch):
            chunk = WalkCorpus(
                self._walks[lo : lo + rows_per_batch],
                num_vertices=self._num_vertices,
            )
            centers, contexts = chunk.context_arrays(window)
            if centers.shape[0]:
                yield centers, contexts

    def num_examples(self, window: int) -> int:
        """Number of (center, context) training examples at this window,
        without materializing them: every token in a walk of length >= 2
        is one example."""
        if window < 1:
            raise ValueError("window must be >= 1")
        multi = self._lengths >= 2
        return int(self._lengths[multi].sum())

    def merge(self, other: "WalkCorpus") -> "WalkCorpus":
        """Concatenate two corpora over the same vertex universe."""
        if other.num_vertices != self._num_vertices:
            raise ValueError("cannot merge corpora over different universes")
        width = max(self.max_length, other.max_length)

        def _pad(mat: np.ndarray) -> np.ndarray:
            if mat.shape[1] == width:
                return mat
            out = np.full((mat.shape[0], width), PAD, dtype=np.int64)
            out[:, : mat.shape[1]] = mat
            return out

        return WalkCorpus(
            np.vstack([_pad(self._walks), _pad(other._walks)]),
            num_vertices=self._num_vertices,
        )

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            Path(path), walks=self._walks, num_vertices=self._num_vertices
        )

    @classmethod
    def load(cls, path: str | Path) -> "WalkCorpus":
        with np.load(Path(path), allow_pickle=False) as data:
            return cls(data["walks"], num_vertices=int(data["num_vertices"]))

    def to_text(self, path: str | Path) -> None:
        """Write walks as whitespace-separated token lines.

        The format gensim's ``LineSentence`` (and the original word2vec
        tool) consume — the interop path for training V2V walks with an
        external word2vec implementation.
        """
        with Path(path).open("w") as fh:
            for walk in self.sentences():
                fh.write(" ".join(str(int(v)) for v in walk) + "\n")

    @classmethod
    def from_text(
        cls, path: str | Path, *, num_vertices: int | None = None
    ) -> "WalkCorpus":
        """Read a text corpus written by :meth:`to_text` (or any
        line-per-sentence integer-token file). ``num_vertices`` defaults
        to max token + 1."""
        rows: list[list[int]] = []
        with Path(path).open() as fh:
            for line in fh:
                tokens = line.split()
                if tokens:
                    rows.append([int(t) for t in tokens])
        if not rows:
            return cls(
                np.empty((0, 1), dtype=np.int64),
                num_vertices=num_vertices or 0,
            )
        width = max(len(r) for r in rows)
        walks = np.full((len(rows), width), PAD, dtype=np.int64)
        for i, r in enumerate(rows):
            walks[i, : len(r)] = r
        if num_vertices is None:
            num_vertices = int(walks.max()) + 1
        return cls(walks, num_vertices=num_vertices)
