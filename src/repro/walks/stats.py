"""Walk-corpus diagnostics.

Answers "is this walk corpus good enough to train on?" before spending
the training time — visit-distribution entropy, coverage, and (when
ground-truth labels exist) the community crossing rate that predicts how
pure the training contexts will be.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.walks.corpus import PAD, WalkCorpus

__all__ = ["CorpusStats", "corpus_stats", "crossing_rate"]


@dataclass(frozen=True)
class CorpusStats:
    """Summary statistics of a walk corpus."""

    num_walks: int
    num_tokens: int
    coverage: float
    mean_walk_length: float
    visit_entropy: float
    max_visit_entropy: float

    @property
    def entropy_ratio(self) -> float:
        """Visit entropy / uniform bound — 1.0 means perfectly even
        visitation; low values flag hub-dominated corpora where rare
        vertices get too few training contexts."""
        if self.max_visit_entropy == 0:
            return 1.0
        return self.visit_entropy / self.max_visit_entropy


def corpus_stats(corpus: WalkCorpus) -> CorpusStats:
    """Compute the corpus summary (one pass over the token counts)."""
    counts = corpus.token_counts()
    total = counts.sum()
    if total > 0:
        p = counts[counts > 0] / total
        entropy = float(-(p * np.log(p)).sum())
    else:
        entropy = 0.0
    observed = int((counts > 0).sum())
    max_entropy = float(np.log(observed)) if observed > 1 else 0.0
    lengths = corpus.lengths
    return CorpusStats(
        num_walks=corpus.num_walks,
        num_tokens=int(total),
        coverage=corpus.coverage(),
        mean_walk_length=float(lengths.mean()) if lengths.size else 0.0,
        visit_entropy=entropy,
        max_visit_entropy=max_entropy,
    )


def crossing_rate(corpus: WalkCorpus, labels: np.ndarray) -> float:
    """Fraction of walk transitions that cross label groups.

    With ground-truth communities this is the context-impurity of the
    corpus: low crossing rates mean each vertex's training contexts come
    from its own community, which is exactly when V2V detection works.
    Returns NaN if the corpus has no transitions.
    """
    labels = np.asarray(labels)
    if labels.shape != (corpus.num_vertices,):
        raise ValueError("labels must cover the corpus vertex universe")
    w = corpus.walks
    if w.shape[1] < 2:
        return float("nan")
    a, b = w[:, :-1], w[:, 1:]
    mask = (a != PAD) & (b != PAD)
    if not np.any(mask):
        return float("nan")
    return float((labels[a[mask]] != labels[b[mask]]).mean())
