"""Vectorized constrained random walks (paper Section II-A).

All walk variants share one stepping loop that advances *every* active
walk by one hop per iteration:

- ``UNIFORM``          — uniform random neighbor (the basic walk).
- ``WEIGHTED``         — P(arc) proportional to edge weight (alias tables).
- ``VERTEX_WEIGHTED``  — P(arc) proportional to the *target vertex* weight.
- ``TEMPORAL``         — arcs must be strictly increasing in timestamp;
  optionally two consecutive arcs must be within ``time_window`` of each
  other. Implemented with a vectorized per-row binary search over
  time-sorted arcs.

Directed graphs simply follow out-arcs; a walk that reaches a vertex with
no (eligible) out-arc terminates, exactly as the paper specifies, and its
remaining positions are padded with ``-1``.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graph.core import Graph
from repro.obs.recorder import current_recorder
from repro.parallel.seeding import spawn_seeds
from repro.walks.alias import AliasTable, build_arc_alias
from repro.walks.corpus import WalkCorpus

__all__ = ["WalkMode", "RandomWalkConfig", "generate_walks"]

PAD = -1


class WalkMode(str, enum.Enum):
    """Which constrained-walk variant to run."""

    UNIFORM = "uniform"
    WEIGHTED = "weighted"
    VERTEX_WEIGHTED = "vertex_weighted"
    TEMPORAL = "temporal"
    NODE2VEC = "node2vec"


@dataclass(frozen=True)
class RandomWalkConfig:
    """Parameters of the walk corpus.

    ``walks_per_vertex`` is the paper's ``t`` and ``walk_length`` its
    ``ℓ`` (paper default 1000 each; our benches default smaller — see
    DESIGN.md substitutions). ``walk_length`` counts *vertices* in the
    sequence, so a walk takes ``walk_length - 1`` hops.
    """

    walks_per_vertex: int = 10
    walk_length: int = 80
    mode: WalkMode = WalkMode.UNIFORM
    time_window: float | None = None
    p: float = 1.0
    q: float = 1.0
    seed: int | None = None
    start_vertices: np.ndarray | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.walks_per_vertex < 1:
            raise ValueError("walks_per_vertex must be >= 1")
        if self.walk_length < 1:
            raise ValueError("walk_length must be >= 1")
        if self.time_window is not None and self.time_window < 0:
            raise ValueError("time_window must be non-negative")
        if self.time_window is not None and self.mode is not WalkMode.TEMPORAL:
            raise ValueError("time_window only applies to temporal walks")
        if self.p <= 0 or self.q <= 0:
            raise ValueError("node2vec p and q must be positive")
        if (self.p != 1.0 or self.q != 1.0) and self.mode is not WalkMode.NODE2VEC:
            raise ValueError("p/q only apply to node2vec walks")


# Local "not passed" sentinel for the legacy keyword shims (the pipeline
# layer has its own; this module must not import it at module level).
_UNSET = object()


def generate_walks(
    g: Graph,
    config: RandomWalkConfig | None = None,
    *,
    context=None,
    workers: "int | None" = _UNSET,  # type: ignore[assignment]
    keep_shared: bool = False,
    checkpoint_dir: "str | Path | None" = _UNSET,  # type: ignore[assignment]
    resume: bool = _UNSET,  # type: ignore[assignment]
    checkpoint_chunks: int | None = None,
    supervisor=_UNSET,
) -> WalkCorpus:
    """Generate ``t`` walks from every vertex (or from ``start_vertices``).

    Returns a :class:`WalkCorpus` whose ``walks`` matrix has one row per
    walk, padded with ``-1`` after termination.

    Runtime concerns — worker count, checkpoint directory, resume,
    supervision, chaos hooks — travel in ``context``, a
    :class:`repro.pipeline.ExecutionContext`:

    * ``context.workers > 1`` splits the walk set across a process pool;
      each chunk gets an independent spawned seed stream, so results are
      reproducible for a fixed ``(seed, workers)`` pair (but differ
      across worker counts, since the streams differ). ``None``/< 1
      means auto via :func:`repro.parallel.pool.resolve_workers`.
      Parallel workers write their rows straight into one shared-memory
      block — chunk results are never pickled back through the pool —
      and ``keep_shared=True`` hands that block to the returned corpus
      zero-copy (call :meth:`WalkCorpus.release` when done, or let GC
      unlink it).
    * ``context.checkpoint_dir`` enables durable execution: the walk set
      is split into ``checkpoint_chunks`` chunks (default
      ``max(workers, 1)``) and each completed chunk is written
      atomically to the directory. With ``context.resume`` true, chunks
      already on disk (with a matching configuration fingerprint) are
      reused instead of recomputed, so a killed run restarts where it
      stopped and — because chunk seeds are spawned deterministically
      from ``config.seed`` — produces a corpus bitwise-identical to an
      uninterrupted run with the same ``(seed, chunk count)``. A
      fingerprint mismatch raises
      :class:`repro.pipeline.FingerprintMismatch` (a ``ValueError``)
      rather than silently mixing corpora.
    * ``context.supervisor`` runs parallel chunks under worker
      supervision: heartbeat-based hung-worker detection, kill/respawn
      with chunk reassignment, and a degrade ladder to serial. Chunk
      recomputation is idempotent (same seed → same rows), so a
      respawned chunk is bitwise-harmless.

    The individual ``workers=``/``checkpoint_dir=``/``resume=``/
    ``supervisor=`` keyword arguments remain accepted for compatibility
    (``checkpoint_dir``/``resume``/``supervisor`` with a
    ``DeprecationWarning``); they cannot be combined with ``context``.
    """
    from repro.pipeline.context import UNSET, context_from_legacy

    ctx = context_from_legacy(
        context,
        workers=UNSET if workers is _UNSET else workers,
        checkpoint_dir=UNSET if checkpoint_dir is _UNSET else checkpoint_dir,
        resume=UNSET if resume is _UNSET else resume,
        supervisor=UNSET if supervisor is _UNSET else supervisor,
    )
    return _generate_walks(
        g, config, ctx, keep_shared=keep_shared, chunks=checkpoint_chunks
    )


def _generate_walks(
    g: Graph,
    config: RandomWalkConfig | None,
    ctx,
    *,
    keep_shared: bool = False,
    chunks: int | None = None,
) -> WalkCorpus:
    """Context-based engine entry (``ctx`` is an ExecutionContext)."""
    config = config or RandomWalkConfig()
    if getattr(g, "mmap_backed", False) and hasattr(g, "shard"):
        # Out-of-core store: shard-parallel engine with counter-based
        # draws (bitwise-stable across shard/worker counts). Durable
        # chunk checkpoints don't apply there — shard rounds are
        # idempotent (see repro.walks.sharded).
        from repro.walks.sharded import generate_walks_sharded

        return generate_walks_sharded(g, config, context=ctx)
    workers = ctx.resolve_workers()
    rec = current_recorder()
    with ctx.lifecycle(), rec.span(
        "walks.generate",
        n=int(g.n),
        mode=str(WalkMode(config.mode).value),
        walks_per_vertex=config.walks_per_vertex,
        walk_length=config.walk_length,
        workers=workers,
    ) as span:
        with rec.time("walks.generate_seconds") as timer:
            if ctx.checkpoint_dir is not None:
                corpus = _generate_walks_checkpointed(
                    g, config, ctx, chunks=chunks or workers
                )
            elif workers > 1:
                corpus = _generate_walks_parallel(g, config, ctx, keep_shared)
            else:
                corpus = _generate_walks_serial(g, config)
        if rec.enabled:
            walks_per_sec = corpus.num_walks / max(timer.seconds, 1e-9)
            rec.inc("walks.total", corpus.num_walks)
            rec.inc("walks.tokens", corpus.num_tokens)
            rec.set("walks.walks_per_sec", walks_per_sec)
            span.annotate(
                walks=corpus.num_walks,
                tokens=corpus.num_tokens,
                walks_per_sec=round(walks_per_sec, 1),
            )
        return corpus


def _generate_walks_serial(g: Graph, config: RandomWalkConfig) -> WalkCorpus:
    """The single-process stepping loop shared by every dispatch path."""
    mode = WalkMode(config.mode)
    _validate_mode(g, mode)

    if config.start_vertices is not None:
        starts_once = np.asarray(config.start_vertices, dtype=np.int64)
        if starts_once.size and (starts_once.min() < 0 or starts_once.max() >= g.n):
            raise ValueError("start vertex out of range")
    else:
        starts_once = np.arange(g.n, dtype=np.int64)
    starts = np.tile(starts_once, config.walks_per_vertex)
    num_walks = starts.shape[0]

    walks = np.full((num_walks, config.walk_length), PAD, dtype=np.int64)
    if num_walks == 0 or g.n == 0:
        return WalkCorpus(walks, num_vertices=g.n)
    walks[:, 0] = starts
    if config.walk_length == 1:
        return WalkCorpus(walks, num_vertices=g.n)

    # One independent stream per stepper keeps results reproducible and
    # lets a future multi-process split reuse the same spawning scheme.
    rng = np.random.default_rng(spawn_seeds(config.seed, 1)[0])
    stepper = _make_stepper(g, mode, config)
    _step_walks_masked(stepper, starts, walks, rng)
    return WalkCorpus(walks, num_vertices=g.n)


def _step_walks_masked(stepper, starts, walks, rng) -> None:
    """The reference stepping loop: masked advance of the live walk set.

    This is the reproducibility anchor for walk generation — the
    ``workers=1`` path runs exactly this loop, and the golden pipeline
    checksum pins its draws. The batched frontier loop below
    (:func:`_step_walks_dense`) must stay bitwise-identical to it on
    dead-end-free graphs (``tests/walks/test_frontier.py``).
    """
    from repro.resilience.lifecycle import current_cancel_scope
    from repro.resilience.supervisor import current_heartbeat

    heartbeat = current_heartbeat()
    scope = current_cancel_scope()
    num_walks, walk_length = walks.shape
    cur = starts.copy()
    active = np.ones(num_walks, dtype=bool)
    state = stepper.initial_state(num_walks)
    for step in range(1, walk_length):
        heartbeat.beat()  # liveness signal for the supervisor watchdog
        scope.check()  # cooperative cancel: one poll per vectorized hop
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        nxt, ok, state = stepper.step(cur[idx], idx, state, rng)
        landed = idx[ok]
        walks[landed, step] = nxt[ok]
        cur[landed] = nxt[ok]
        active[idx[~ok]] = False


def _step_walks_dense(stepper, starts, walk_length, rng) -> np.ndarray:
    """Frontier-batched stepping for graphs where no walk can die.

    When every vertex has an out-arc (and the mode is not temporal), the
    masked loop's bookkeeping — ``flatnonzero`` over the always-full
    active set, per-step fancy scatter writes, the ``ok`` re-masking
    inside every stepper — is pure overhead: the frontier is the whole
    walk set at every step. This loop advances that full frontier with
    one vectorized draw per wave via ``stepper.step_dense`` and writes
    whole columns contiguously (the walk matrix is built transposed,
    ``(length, walks)``, and returned as its transpose).

    Draw-equivalence: ``step_dense`` consumes the RNG stream in exactly
    the order the masked stepper does when all walks are alive, so for a
    fixed seed the result is bitwise-identical to the reference loop —
    ~3x faster on the bench corpus. Used by the parallel chunk workers;
    the ``workers=1`` path keeps the reference loop above.
    """
    from repro.resilience.lifecycle import current_cancel_scope
    from repro.resilience.supervisor import current_heartbeat

    heartbeat = current_heartbeat()
    scope = current_cancel_scope()
    num_walks = starts.shape[0]
    walks = np.empty((walk_length, num_walks), dtype=np.int64)
    walks[0] = starts
    cur = starts
    state = stepper.initial_state(num_walks)
    for step in range(1, walk_length):
        heartbeat.beat()
        scope.check()
        cur, state = stepper.step_dense(cur, state, rng)
        walks[step] = cur
    return walks.T


def _chunk_walks(args: tuple) -> np.ndarray:
    """Generate one chunk of walks (serial engine on a start slice)."""
    g, config, starts, seed_state = args[:4]
    chunk_config = RandomWalkConfig(
        walks_per_vertex=1,
        walk_length=config.walk_length,
        mode=config.mode,
        time_window=config.time_window,
        p=config.p,
        q=config.q,
        seed=seed_state,
        start_vertices=starts,
    )
    # Straight to the serial engine: chunks must not re-enter the public
    # generate_walks(), which would nest spans and double-count metrics.
    return _generate_walks_serial(g, chunk_config).walks


def _chunk_task(args: tuple) -> np.ndarray:
    """Module-level worker (picklable) returning one chunk of walks."""
    return _chunk_walks(args)


@dataclass(frozen=True)
class _ShmChunkTask:
    """Everything a chunk worker needs, with zero graph bytes attached.

    The legacy ``_chunk_task`` tuples pickle the whole :class:`Graph`
    into every item; these tasks carry only shared-memory *handles* for
    the (mode-specific) stepping arrays plus the chunk's scalars, so a
    task crosses the pool pipe in a few hundred bytes and precomputed
    structures (alias tables, row-sorted adjacency) are built once in
    the parent instead of once per chunk per worker.
    """

    mode: WalkMode
    walk_length: int
    time_window: float | None
    p: float
    q: float
    seed: int
    starts: np.ndarray
    lo: int
    hi: int
    out: "object"  # SharedArraySpec of the (rows, walk_length) result block
    arrays: dict  # name -> SharedArraySpec of the stepping arrays
    dense_ok: bool


def _export_walk_arrays(g: Graph, mode: WalkMode, scope) -> tuple[dict, bool]:
    """Copy the stepping arrays for ``mode`` into shared segments.

    Returns ``(specs, dense_ok)`` where ``specs`` maps array name to
    :class:`~repro.parallel.shm.SharedArraySpec` and ``dense_ok`` says
    whether chunk workers may run the frontier-batched loop (every
    vertex has an out-arc, so no walk can ever die; temporal walks are
    excluded because their eligible arc set shrinks over time).
    """
    arrays: dict[str, np.ndarray] = {"indptr": g.indptr}
    if mode in (WalkMode.UNIFORM, WalkMode.WEIGHTED, WalkMode.VERTEX_WEIGHTED):
        arrays["indices"] = g.indices
    if mode in (WalkMode.WEIGHTED, WalkMode.VERTEX_WEIGHTED):
        weights = (
            g.edge_weights
            if mode is WalkMode.WEIGHTED
            else g.vertex_weights[g.indices]
        )
        table = build_arc_alias(g.indptr, weights)
        arrays["prob"] = table.prob
        arrays["alias"] = table.alias
    elif mode is WalkMode.NODE2VEC:
        order = _sort_rows_by_value(g.indptr, g.indices)
        arrays["sorted_indices"] = np.ascontiguousarray(g.indices[order])
    elif mode is WalkMode.TEMPORAL:
        order = _sort_rows_by_time(g.indptr, g.edge_times)
        arrays["sorted_indices"] = np.ascontiguousarray(g.indices[order])
        arrays["sorted_times"] = np.ascontiguousarray(g.edge_times[order])
    specs = {name: scope.from_array(arr).spec for name, arr in arrays.items()}
    degrees = np.diff(g.indptr)
    dense_ok = (
        mode is not WalkMode.TEMPORAL
        and degrees.size > 0
        and int(degrees.min()) > 0
    )
    return specs, dense_ok


def _stepper_from_shared(task: _ShmChunkTask, arrs: dict) -> object:
    """Rebuild the task's stepper over shared-memory array views."""
    if task.mode is WalkMode.UNIFORM:
        return _UniformStepper(arrs["indptr"], arrs["indices"])
    if task.mode in (WalkMode.WEIGHTED, WalkMode.VERTEX_WEIGHTED):
        table = AliasTable(prob=arrs["prob"], alias=arrs["alias"])
        return _AliasStepper(arrs["indptr"], arrs["indices"], table)
    if task.mode is WalkMode.NODE2VEC:
        return _Node2VecStepper(arrs["indptr"], arrs["sorted_indices"], task.p, task.q)
    return _TemporalStepper(
        arrs["indptr"],
        arrs["sorted_indices"],
        arrs["sorted_times"],
        task.time_window,
    )


def _chunk_task_shm(task: _ShmChunkTask) -> tuple[int, int, float]:
    """Worker that writes its chunk straight into the shared walk block.

    Returns only the row bounds it filled plus its own wall-clock
    seconds (the parent records per-chunk latency) — nothing heavyweight
    crosses the pool's result pipe. Re-running a chunk (pool retry after
    a worker death) rewrites the same rows with the same seed, so the
    operation is idempotent. Graph-array attachments are cached per
    process (:func:`repro.parallel.shm.attach_cached`): persistent-pool
    workers map each segment once per run, not once per chunk.

    The chunk rng is spawned exactly as the legacy serial path spawns
    it from a chunk config (``spawn_seeds(seed, 1)[0]``), so for a fixed
    ``(seed, workers)`` pair this path is bitwise-identical to the
    pre-batching chunk worker.
    """
    from repro.parallel.shm import SharedArray, attach_cached

    started = time.perf_counter()
    arrs = {name: attach_cached(spec).array for name, spec in task.arrays.items()}
    stepper = _stepper_from_shared(task, arrs)
    rng = np.random.default_rng(spawn_seeds(task.seed, 1)[0])
    if task.dense_ok and task.walk_length > 1:
        walks = _step_walks_dense(stepper, task.starts, task.walk_length, rng)
    else:
        walks = np.full((task.starts.shape[0], task.walk_length), PAD, dtype=np.int64)
        walks[:, 0] = task.starts
        if task.walk_length > 1:
            _step_walks_masked(stepper, task.starts, walks, rng)
    # The out block changes every run and can be large: attach/close per
    # chunk instead of pinning it in the process-level cache.
    out = SharedArray.attach(task.out)
    try:
        out.array[task.lo : task.hi] = walks
    finally:
        out.close()
    return task.lo, task.hi, time.perf_counter() - started


def _chunk_tasks(
    g: Graph, config: RandomWalkConfig, chunks: int
) -> list[tuple] | None:
    """Per-chunk ``_chunk_task`` argument tuples (None if no walks).

    Chunk seeds are spawned deterministically from ``config.seed``, so
    the task list — and therefore the assembled corpus — depends only on
    ``(seed, chunk count)``, not on how chunks are scheduled. Each tuple
    carries the chunk's ``(lo, hi)`` row range in the assembled corpus.
    """
    from repro.parallel.pool import chunk_bounds
    from repro.parallel.seeding import spawn_seeds

    if config.start_vertices is not None:
        starts_once = np.asarray(config.start_vertices, dtype=np.int64)
        if starts_once.size and (starts_once.min() < 0 or starts_once.max() >= g.n):
            raise ValueError("start vertex out of range")
    else:
        starts_once = np.arange(g.n, dtype=np.int64)
    starts = np.tile(starts_once, config.walks_per_vertex)
    if starts.size == 0:
        return None
    bounds = chunk_bounds(starts.shape[0], chunks)
    # SeedSequence state is a plain int tuple -> picklable across processes.
    seeds = [
        int(s.generate_state(1)[0])
        for s in spawn_seeds(config.seed, len(bounds))
    ]
    return [
        (g, config, starts[lo:hi], seed, lo, hi)
        for (lo, hi), seed in zip(bounds, seeds)
    ]


def _empty_corpus(g: Graph, config: RandomWalkConfig) -> WalkCorpus:
    return WalkCorpus(
        np.full((0, config.walk_length), PAD, dtype=np.int64),
        num_vertices=g.n,
    )


def _generate_walks_parallel(
    g: Graph,
    config: RandomWalkConfig,
    ctx,
    keep_shared: bool = False,
) -> WalkCorpus:
    """Fan chunks out to a pool; rows land in one shared-memory block.

    Workers write into the block in place and return only row bounds, so
    a multi-GB corpus is never pickled through the pool's result pipe.
    The stepping arrays travel the same way: the parent exports CSR (and
    any mode-specific precomputation — alias tables, row-sorted
    adjacency) into shared segments once, and every chunk task carries
    only the handles. Falls back to the graph-pickling path on platforms
    without POSIX shared memory.
    """
    from repro.parallel.pool import parallel_map
    from repro.parallel.shm import (
        SHM_AVAILABLE,
        SharedArray,
        release_cached,
        shared_arrays,
    )

    workers = ctx.resolve_workers()
    tasks = _chunk_tasks(g, config, workers)
    if tasks is None:
        return _empty_corpus(g, config)
    if not SHM_AVAILABLE:  # pragma: no cover - exotic platforms only
        chunks = parallel_map(ctx.wrap_task(_chunk_task), tasks, workers=workers)
        return WalkCorpus(np.vstack(chunks), num_vertices=g.n)

    mode = WalkMode(config.mode)
    _validate_mode(g, mode)
    total_rows = tasks[-1][5]
    shared = SharedArray.create((total_rows, config.walk_length), np.int64)
    try:
        with shared_arrays() as scope:
            specs, dense_ok = _export_walk_arrays(g, mode, scope)
            shm_tasks = [
                _ShmChunkTask(
                    mode=mode,
                    walk_length=config.walk_length,
                    time_window=config.time_window,
                    p=config.p,
                    q=config.q,
                    seed=seed,
                    starts=starts,
                    lo=lo,
                    hi=hi,
                    out=shared.spec,
                    arrays=specs,
                    dense_ok=dense_ok,
                )
                for (_g, _config, starts, seed, lo, hi) in tasks
            ]
            bounds = parallel_map(
                ctx.wrap_task(_chunk_task_shm),
                shm_tasks,
                workers=workers,
                supervisor=ctx.supervisor,
            )
        # A serial-fallback pass runs chunk tasks in this process and
        # leaves its graph attachments in the local cache; drop them now
        # that the segments are unlinked.
        for spec in specs.values():
            release_cached(spec.name)
        rec = current_recorder()
        if rec.enabled:
            for lo, hi, seconds in bounds:
                rec.observe("walks.chunk_seconds", seconds)
                rec.event(
                    "walks.chunk",
                    level="debug",
                    rows=hi - lo,
                    seconds=round(seconds, 6),
                )
    except BaseException:
        shared.destroy()
        raise
    if keep_shared:
        return WalkCorpus(shared.array, num_vertices=g.n, shared=shared)
    walks = shared.copy()
    shared.destroy()
    return WalkCorpus(walks, num_vertices=g.n)


def _walk_fingerprint(g: Graph, config: RandomWalkConfig, chunks: int) -> dict:
    """Identity of a checkpointed walk job; mismatches refuse to resume."""
    starts = config.start_vertices
    return {
        "n": int(g.n),
        "num_edges": int(g.num_edges),
        "directed": bool(g.directed),
        "walks_per_vertex": config.walks_per_vertex,
        "walk_length": config.walk_length,
        "mode": str(WalkMode(config.mode).value),
        "time_window": config.time_window,
        "p": config.p,
        "q": config.q,
        "seed": config.seed,
        "chunks": int(chunks),
        "start_vertices": None if starts is None else [int(v) for v in starts],
    }


def _generate_walks_checkpointed(
    g: Graph,
    config: RandomWalkConfig,
    ctx,
    *,
    chunks: int,
) -> WalkCorpus:
    from repro.parallel.pool import parallel_map

    tasks = _chunk_tasks(g, config, chunks)
    if tasks is None:
        return _empty_corpus(g, config)
    store = ctx.fingerprinted(
        _walk_fingerprint(g, config, len(tasks)),
        what="walk checkpoint",
        described="walk configuration",
    )
    workers = ctx.resolve_workers()
    rec = current_recorder()

    done: dict[int, np.ndarray] = {}
    if ctx.resume:
        for i in range(len(tasks)):
            ckpt = store.load(f"walks-{i:04d}")
            if ckpt is None:
                continue
            done[i] = ckpt.arrays["walks"]
        if done:
            rec.inc("walks.chunks_resumed", len(done))
            rec.event(
                "walks.resume", chunks=len(done), of=len(tasks)
            )

    from repro.resilience.guard import clamp_wave
    from repro.resilience.lifecycle import current_cancel_scope

    scope = current_cancel_scope()
    missing = [i for i in range(len(tasks)) if i not in done]
    # Compute in waves of `workers` chunks, checkpointing after each
    # wave, so a kill mid-job loses at most one wave of work. Under
    # memory pressure the guard ladder clamps the wave to one chunk —
    # re-read per wave so a mid-run breach takes effect immediately.
    # Wave size is pure scheduling (the fingerprint counts chunks), so
    # shrinking it never perturbs resume identity.
    lo, wave_index = 0, 0
    while lo < len(missing):
        # Completed waves are already durable; raising here (cancel or
        # deadline) loses at most the wave in flight, and chunk seeds
        # are deterministic so resume recomputes it bit-for-bit.
        scope.check()
        wave = clamp_wave(max(workers, 1))
        batch = missing[lo : lo + wave]
        lo += wave
        wave_started = time.perf_counter()
        computed = parallel_map(
            ctx.wrap_task(_chunk_task),
            [tasks[i] for i in batch],
            workers=workers,
            supervisor=ctx.supervisor,
        )
        for i, walks in zip(batch, computed):
            store.save(f"walks-{i:04d}", {"walks": walks}, {"chunk": i})
            done[i] = walks
        if rec.enabled:
            wave_seconds = time.perf_counter() - wave_started
            rec.observe("walks.wave_seconds", wave_seconds)
            rec.inc("walks.chunks_computed", len(batch))
            rec.event(
                "walks.wave",
                wave=wave_index,
                chunks=len(batch),
                seconds=round(wave_seconds, 6),
            )
        wave_index += 1
    ordered = [done[i] for i in range(len(tasks))]
    return WalkCorpus(np.vstack(ordered), num_vertices=g.n)


def _validate_mode(g: Graph, mode: WalkMode) -> None:
    if mode is WalkMode.WEIGHTED and g.edge_weights is None:
        raise ValueError("WEIGHTED walk requires edge weights")
    if mode is WalkMode.VERTEX_WEIGHTED and g.vertex_weights is None:
        raise ValueError("VERTEX_WEIGHTED walk requires vertex weights")
    if mode is WalkMode.TEMPORAL and g.edge_times is None:
        raise ValueError("TEMPORAL walk requires edge timestamps")


def _make_stepper(g: Graph, mode: WalkMode, config: RandomWalkConfig):
    if mode is WalkMode.UNIFORM:
        return _UniformStepper.from_graph(g)
    if mode is WalkMode.WEIGHTED:
        return _AliasStepper.from_graph(g, g.edge_weights)
    if mode is WalkMode.VERTEX_WEIGHTED:
        target_weights = g.vertex_weights[g.indices]
        return _AliasStepper.from_graph(g, target_weights)
    if mode is WalkMode.NODE2VEC:
        return _Node2VecStepper.from_graph(g, config.p, config.q)
    return _TemporalStepper.from_graph(g, config.time_window)


class _UniformStepper:
    """Uniform neighbor choice: next = indices[indptr[v] + floor(u * deg)].

    Steppers take raw CSR arrays (not a :class:`Graph`) so chunk workers
    can rebuild them over shared-memory views without reassembling — or
    pickling — the graph object; :meth:`from_graph` is the parent-side
    convenience constructor.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = indptr
        self.indices = indices
        self.degrees = np.diff(indptr)

    @classmethod
    def from_graph(cls, g: Graph) -> "_UniformStepper":
        return cls(g.indptr, g.indices)

    def initial_state(self, num_walks: int) -> None:
        return None

    def step(
        self,
        cur: np.ndarray,
        walk_ids: np.ndarray,
        state: None,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, None]:
        deg = self.degrees[cur]
        ok = deg > 0
        nxt = np.full(cur.shape[0], PAD, dtype=np.int64)
        if np.any(ok):
            u = rng.random(int(ok.sum()))
            offs = (u * deg[ok]).astype(np.int64)
            np.minimum(offs, deg[ok] - 1, out=offs)
            nxt[ok] = self.indices[self.indptr[cur[ok]] + offs]
        return nxt, ok, None

    def step_dense(
        self, cur: np.ndarray, state: None, rng: np.random.Generator
    ) -> tuple[np.ndarray, None]:
        """Full-frontier hop; draw-for-draw identical to :meth:`step`
        when every walk is alive (no masking, no scatter)."""
        deg = self.degrees[cur]
        u = rng.random(cur.shape[0])
        offs = (u * deg).astype(np.int64)
        np.minimum(offs, deg - 1, out=offs)
        return self.indices[self.indptr[cur] + offs], None


class _AliasStepper:
    """Weighted neighbor choice via flat per-vertex alias tables.

    The table is built once (parent-side via :meth:`from_graph`, a
    Python-loop Vose construction) and shared with chunk workers as two
    flat arrays — workers must never rebuild it per chunk.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, table: AliasTable
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.degrees = np.diff(indptr)
        self.table = table
        # Vertices whose arc weights are all zero cannot move (a zero-weight
        # neighborhood has no valid draw under the proportional rule... but
        # we follow the uniform-degeneration convention from build_arc_alias
        # only when *some* weight is positive elsewhere; an all-zero row is
        # treated as uniform too, which keeps walks alive on such rows).

    @classmethod
    def from_graph(cls, g: Graph, arc_weights: np.ndarray) -> "_AliasStepper":
        return cls(g.indptr, g.indices, build_arc_alias(g.indptr, arc_weights))

    def initial_state(self, num_walks: int) -> None:
        return None

    def step(
        self,
        cur: np.ndarray,
        walk_ids: np.ndarray,
        state: None,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, None]:
        deg = self.degrees[cur]
        ok = deg > 0
        nxt = np.full(cur.shape[0], PAD, dtype=np.int64)
        if np.any(ok):
            arcs = self.table.sample(self.indptr[cur[ok]], deg[ok], rng)
            nxt[ok] = self.indices[arcs]
        return nxt, ok, None

    def step_dense(
        self, cur: np.ndarray, state: None, rng: np.random.Generator
    ) -> tuple[np.ndarray, None]:
        arcs = self.table.sample(self.indptr[cur], self.degrees[cur], rng)
        return self.indices[arcs], None


class _TemporalStepper:
    """Time-increasing walks with optional window constraint.

    Arcs inside each CSR row are pre-sorted by timestamp. Each step finds,
    per walk, the eligible arc range ``(first time > t_cur,
    last time <= t_cur + window]`` with a vectorized segment binary search
    and samples uniformly inside it. Walk state is the timestamp of the
    last traversed arc (-inf at the start, so the first hop is free).

    Temporal walks can die at any vertex (the eligible range empties), so
    there is no ``step_dense``: this mode always runs the masked loop.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        sorted_indices: np.ndarray,
        sorted_times: np.ndarray,
        time_window: float | None,
    ) -> None:
        self.indptr = indptr
        self.window = time_window
        self.sorted_indices = sorted_indices
        self.sorted_times = sorted_times

    @classmethod
    def from_graph(cls, g: Graph, time_window: float | None) -> "_TemporalStepper":
        order = _sort_rows_by_time(g.indptr, g.edge_times)
        return cls(
            g.indptr,
            np.ascontiguousarray(g.indices[order]),
            np.ascontiguousarray(g.edge_times[order]),
            time_window,
        )

    def initial_state(self, num_walks: int) -> np.ndarray:
        return np.full(num_walks, -np.inf)

    def step(
        self,
        cur: np.ndarray,
        walk_ids: np.ndarray,
        state: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        t_cur = state[walk_ids]
        row_start = self.indptr[cur]
        row_stop = self.indptr[cur + 1]
        lo = _segment_searchsorted(self.sorted_times, row_start, row_stop, t_cur, side="right")
        if self.window is not None:
            # A fresh walk (t = -inf) has no previous arc, so no window cap.
            cap = np.where(np.isinf(t_cur), np.inf, t_cur + self.window)
            hi = _segment_searchsorted(self.sorted_times, row_start, row_stop, cap, side="right")
        else:
            hi = row_stop
        count = hi - lo
        ok = count > 0
        nxt = np.full(cur.shape[0], PAD, dtype=np.int64)
        if np.any(ok):
            u = rng.random(int(ok.sum()))
            pick = lo[ok] + (u * count[ok]).astype(np.int64)
            np.minimum(pick, hi[ok] - 1, out=pick)
            nxt[ok] = self.sorted_indices[pick]
            state[walk_ids[ok]] = self.sorted_times[pick]
        return nxt, ok, state


class _Node2VecStepper:
    """Second-order biased walks (Grover & Leskovec 2016).

    From current vertex v with previous vertex u, a neighbor x is chosen
    with unnormalized weight 1/p if x == u (return), 1 if x is adjacent
    to u (triangle step), 1/q otherwise (exploration). Implemented with
    the node2vec authors' rejection-sampling trick: draw a uniform
    neighbor, accept with weight/max_weight — fully vectorized across
    walks, with adjacency tests done as a batched segment binary search
    over row-sorted CSR. The first hop (no previous vertex) is uniform.
    """

    MAX_REJECTION_ROUNDS = 64

    def __init__(
        self, indptr: np.ndarray, sorted_indices: np.ndarray, p: float, q: float
    ) -> None:
        self.indptr = indptr
        self.degrees = np.diff(indptr)
        self.p = p
        self.q = q
        # Row-sorted adjacency for O(log deg) membership tests; the sort
        # happens once in from_graph (or the exporting parent), never in
        # chunk workers.
        self.sorted_indices = sorted_indices
        self.w_return = 1.0 / p
        self.w_triangle = 1.0
        self.w_explore = 1.0 / q
        self.w_max = max(self.w_return, self.w_triangle, self.w_explore)

    @classmethod
    def from_graph(cls, g: Graph, p: float, q: float) -> "_Node2VecStepper":
        order = _sort_rows_by_value(g.indptr, g.indices)
        return cls(g.indptr, np.ascontiguousarray(g.indices[order]), p, q)

    def initial_state(self, num_walks: int) -> np.ndarray:
        return np.full(num_walks, -1, dtype=np.int64)  # previous vertex

    def _uniform_pick(
        self, cur: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        deg = self.degrees[cur]
        u = rng.random(cur.shape[0])
        offs = (u * deg).astype(np.int64)
        np.minimum(offs, deg - 1, out=offs)
        return self.sorted_indices[self.indptr[cur] + offs]

    def _is_adjacent(self, u: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Vectorized: is x a neighbor of u? (both arrays, per element)."""
        starts = self.indptr[u]
        stops = self.indptr[u + 1]
        pos = _segment_searchsorted(
            self.sorted_indices, starts, stops, x, side="left"
        )
        in_range = pos < stops
        found = np.zeros(u.shape[0], dtype=bool)
        safe = np.minimum(pos, self.sorted_indices.shape[0] - 1)
        found[in_range] = self.sorted_indices[safe[in_range]] == x[in_range]
        return found

    def _biased_pick(
        self, cur: np.ndarray, prev: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One rejection-sampled hop for every (cur, prev) pair."""
        result = np.full(cur.shape[0], PAD, dtype=np.int64)
        pending = np.ones(cur.shape[0], dtype=bool)
        # First hops (prev == -1) are plain uniform draws.
        fresh = prev < 0
        if np.any(fresh):
            result[fresh] = self._uniform_pick(cur[fresh], rng)
            pending[fresh] = False
        for _ in range(self.MAX_REJECTION_ROUNDS):
            idx = np.flatnonzero(pending)
            if idx.size == 0:
                break
            cand = self._uniform_pick(cur[idx], rng)
            w = np.where(
                cand == prev[idx],
                self.w_return,
                np.where(
                    self._is_adjacent(prev[idx], cand),
                    self.w_triangle,
                    self.w_explore,
                ),
            )
            accept = rng.random(idx.size) < w / self.w_max
            result[idx[accept]] = cand[accept]
            pending[idx[accept]] = False
        still = np.flatnonzero(pending)
        if still.size:  # pathological p/q: fall back to uniform
            result[still] = self._uniform_pick(cur[still], rng)
        return result

    def step(
        self,
        cur: np.ndarray,
        walk_ids: np.ndarray,
        state: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        deg = self.degrees[cur]
        ok = deg > 0
        nxt = np.full(cur.shape[0], PAD, dtype=np.int64)
        if np.any(ok):
            nxt[ok] = self._biased_pick(cur[ok], state[walk_ids[ok]], rng)
            state[walk_ids[ok]] = cur[ok]
        return nxt, ok, state

    def step_dense(
        self, cur: np.ndarray, state: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        # The new state (previous vertex) is exactly the frontier we just
        # left; the caller never mutates it, so no copy is needed.
        return self._biased_pick(cur, state, rng), cur


def _sort_rows_by_value(indptr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Permutation sorting each CSR row's arcs by target id."""
    n = indptr.shape[0] - 1
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    return np.lexsort((values, rows))


def _sort_rows_by_time(indptr: np.ndarray, times: np.ndarray) -> np.ndarray:
    """Permutation sorting each CSR row's arcs by timestamp.

    Implemented as one global stable argsort of (row, time) pairs, which
    keeps the row blocks contiguous — no Python-level per-row loop.
    """
    n = indptr.shape[0] - 1
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    return np.lexsort((times, rows))


def _segment_searchsorted(
    sorted_values: np.ndarray,
    seg_start: np.ndarray,
    seg_stop: np.ndarray,
    needles: np.ndarray,
    *,
    side: str = "right",
) -> np.ndarray:
    """Vectorized ``searchsorted`` restricted to per-query segments.

    For each query ``i``, returns the insertion point of ``needles[i]``
    within ``sorted_values[seg_start[i]:seg_stop[i]]`` (plus the offset
    ``seg_start[i]``), i.e. a batched binary search over CSR rows.
    """
    lo = seg_start.astype(np.int64).copy()
    hi = seg_stop.astype(np.int64).copy()
    if side not in ("left", "right"):
        raise ValueError("side must be 'left' or 'right'")
    # Classic branch-free bisection: ~log2(max segment length) passes.
    while True:
        unfinished = lo < hi
        if not np.any(unfinished):
            break
        mid = (lo + hi) // 2
        vals = sorted_values[np.minimum(mid, sorted_values.shape[0] - 1)]
        if side == "right":
            go_right = unfinished & (vals <= needles)
        else:
            go_right = unfinished & (vals < needles)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(unfinished & ~go_right, mid, hi)
    return lo
