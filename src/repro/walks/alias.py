"""Vose alias-method sampling for weighted walk steps.

For weighted graphs every vertex needs O(1) sampling of an out-arc with
probability proportional to arc weight. We build one alias table per
vertex but store all of them *flat*, aligned with the graph's CSR arc
arrays: ``prob[a]`` and ``alias[a]`` describe the alias slot of arc ``a``
within its own row. Sampling for a whole frontier of walks is then a
handful of vectorized gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AliasTable", "build_alias", "build_arc_alias"]


@dataclass(frozen=True)
class AliasTable:
    """Flat alias tables for all vertices, aligned with CSR arcs.

    Attributes
    ----------
    prob:
        float64 array, length = num arcs; acceptance probability of the
        slot's own arc.
    alias:
        int64 array, length = num arcs; row-local index of the alternative
        arc for each slot.
    """

    prob: np.ndarray
    alias: np.ndarray

    def sample(
        self,
        starts: np.ndarray,
        degrees: np.ndarray,
        rng: np.random.Generator,
        *,
        shape: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        """Sample one arc index per draw, for draws of any shape.

        Parameters
        ----------
        starts:
            CSR row start for each sample (``indptr[v]``). Scalars and
            arrays of any shape are accepted; ``starts`` and ``degrees``
            broadcast against each other (and against ``shape``).
        degrees:
            Row lengths; must be positive for every entry.
        rng:
            Source of randomness.
        shape:
            Optional explicit output shape. Required when both
            ``starts`` and ``degrees`` are scalars and more than one
            draw is wanted — e.g. ``(batch, negatives)`` draws from a
            single table. Must broadcast with the input shapes.

        Returns
        -------
        Global arc indices with the broadcast shape. For the historic
        1-D call signature the draws (and therefore the results at a
        fixed seed) are unchanged.
        """
        starts = np.asarray(starts, dtype=np.int64)
        degrees = np.asarray(degrees, dtype=np.int64)
        out_shape = np.broadcast_shapes(
            starts.shape, degrees.shape, () if shape is None else tuple(shape)
        )
        u = rng.random(out_shape)
        slots = (u * degrees).astype(np.int64)
        # Guard the (measure-zero, float-rounding) case slot == degree.
        np.minimum(slots, degrees - 1, out=slots)
        arc = starts + slots
        accept = rng.random(out_shape) < self.prob[arc]
        out = np.where(accept, arc, starts + self.alias[arc])
        return out


def build_alias(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build a single alias table over ``weights`` (classic Vose algorithm).

    Returns ``(prob, alias)`` arrays of the same length as ``weights``.
    """
    w = np.asarray(weights, dtype=np.float64)
    k = w.shape[0]
    if k == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    total = w.sum()
    if total <= 0 or np.any(w < 0):
        raise ValueError("weights must be non-negative with positive sum")
    scaled = w * (k / total)
    prob = np.ones(k, dtype=np.float64)
    alias = np.arange(k, dtype=np.int64)
    small = [i for i in range(k) if scaled[i] < 1.0]
    large = [i for i in range(k) if scaled[i] >= 1.0]
    while small and large:
        s = small.pop()
        g = large.pop()
        prob[s] = scaled[s]
        alias[s] = g
        scaled[g] = (scaled[g] + scaled[s]) - 1.0
        (small if scaled[g] < 1.0 else large).append(g)
    # Remaining entries keep prob 1 (numerical leftovers).
    return prob, alias


def build_arc_alias(indptr: np.ndarray, arc_weights: np.ndarray) -> AliasTable:
    """Alias tables for every CSR row, stored flat and arc-aligned.

    Rows whose weights sum to zero are left as uniform tables over the row
    (prob = 1 everywhere), matching the convention that a zero-weight
    neighborhood degenerates to a uniform step.
    """
    num_arcs = int(indptr[-1])
    arc_weights = np.asarray(arc_weights, dtype=np.float64)
    if arc_weights.shape != (num_arcs,):
        raise ValueError("arc_weights must align with CSR arcs")
    if np.any(arc_weights < 0):
        raise ValueError("arc weights must be non-negative")
    prob = np.ones(num_arcs, dtype=np.float64)
    alias = np.zeros(num_arcs, dtype=np.int64)
    n = indptr.shape[0] - 1
    for v in range(n):
        s, e = int(indptr[v]), int(indptr[v + 1])
        if e - s == 0:
            continue
        row = arc_weights[s:e]
        if row.sum() <= 0:
            alias[s:e] = np.arange(e - s)
            continue
        p, a = build_alias(row)
        prob[s:e] = p
        alias[s:e] = a
    return AliasTable(prob=prob, alias=alias)
