"""Deterministic, statistically independent random streams for workers.

Follows the numpy guidance: never hand the same seed to multiple workers;
spawn child ``SeedSequence``s instead, which are guaranteed independent
and reproducible from the parent entropy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds", "spawn_generators", "worker_seed_sequence"]


def spawn_seeds(
    seed: int | np.random.SeedSequence | None, count: int
) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences from one parent seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return parent.spawn(count)


def worker_seed_sequence(
    entropy, *key: int
) -> np.random.SeedSequence:
    """An addressable child stream: ``entropy`` + a structured spawn key.

    Unlike :func:`spawn_seeds`, whose children depend on spawn *order*,
    the spawn key here is explicit — ``worker_seed_sequence(e, epoch, w)``
    names the same independent stream no matter how many other streams
    were created first. The Hogwild trainer keys streams by
    ``(epoch, worker)`` so a resumed run replays the exact seeds of the
    epochs it re-executes.
    """
    return np.random.SeedSequence(
        entropy=entropy, spawn_key=tuple(int(k) for k in key)
    )


def spawn_generators(
    seed: int | np.random.SeedSequence | None, count: int
) -> list[np.random.Generator]:
    """``count`` independent PCG64 generators from one parent seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]
