"""Deterministic, statistically independent random streams for workers.

Follows the numpy guidance: never hand the same seed to multiple workers;
spawn child ``SeedSequence``s instead, which are guaranteed independent
and reproducible from the parent entropy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds", "spawn_generators"]


def spawn_seeds(
    seed: int | np.random.SeedSequence | None, count: int
) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences from one parent seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return parent.spawn(count)


def spawn_generators(
    seed: int | np.random.SeedSequence | None, count: int
) -> list[np.random.Generator]:
    """``count`` independent PCG64 generators from one parent seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]
