"""Chunked parallel map over picklable work items, hardened for failure.

Uses ``concurrent.futures.ProcessPoolExecutor`` when ``workers > 1`` and
falls back to a serial loop otherwise (or when the platform cannot fork),
so callers get one code path. Work functions must be module-level
(picklable); per the mpi4py/scientific-python guides, data is passed as
contiguous numpy arrays to keep serialization cheap.

Failure semantics (see docs/resilience.md):

- An exception raised *by the work function* propagates to the caller
  unchanged — identical to the serial path.
- Pool-level failures — a worker killed mid-map (``BrokenExecutor`` /
  ``BrokenProcessPool``), or a sandbox that refuses to spawn processes
  (``OSError``/``PermissionError``) — never lose completed items. The
  failed items are retried in a fresh pool per the
  :class:`~repro.resilience.retry.RetryPolicy`, and if the pool keeps
  breaking, execution degrades to a serial loop with a warning instead
  of crashing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.obs.logging import get_logger
from repro.obs.recorder import current_recorder
from repro.resilience.lifecycle import current_cancel_scope
from repro.resilience.retry import RetryPolicy

_log = get_logger("parallel.pool")

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "chunk_bounds",
    "parallel_map",
    "default_workers",
    "resolve_workers",
    "POOL_RETRY_POLICY",
]

# Pool-level failures only: a worker function raising OSError is
# indistinguishable here, but retrying it is harmless (it fails again
# and propagates from the final serial pass).
POOL_RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    base_delay=0.02,
    max_delay=0.5,
    jitter=0.0,
    retry_on=(BrokenExecutor, OSError, PermissionError),
)

_UNSET = object()


def default_workers() -> int:
    """A conservative worker count: physical-ish parallelism, at least 1.

    Prefers the CPU-affinity mask (``os.sched_getaffinity``) over the
    raw core count so containers pinned to a CPU subset don't
    oversubscribe.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux or restricted platform
        return max(1, (os.cpu_count() or 1))


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request to a concrete positive count.

    ``None`` and any value < 1 mean "auto": use :func:`default_workers`.
    Every stage (walk engine, trainer, CLI) routes through this one
    function so affinity-restricted containers are respected everywhere.
    """
    if workers is None or workers < 1:
        return default_workers()
    return int(workers)


def chunk_bounds(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``chunks`` contiguous, balanced slices.

    The first ``total % chunks`` slices get one extra element. Empty
    slices are dropped, so the result may be shorter than ``chunks``.
    """
    if total < 0 or chunks <= 0:
        raise ValueError("total must be >= 0 and chunks >= 1")
    base, extra = divmod(total, chunks)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        bounds.append((start, start + size))
        start += size
    return bounds


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    retry: RetryPolicy | None = None,
    supervisor=None,
) -> list[R]:
    """Map ``fn`` over ``items``, in-process if ``workers == 1``.

    Results preserve input order. Exceptions raised by ``fn`` propagate
    from the first failing item (matching the serial semantics); pool
    breakage is retried per ``retry`` (default
    :data:`POOL_RETRY_POLICY`) and finally degraded to serial execution,
    so completed items are never recomputed and the map never fails
    because of infrastructure alone.

    Passing a :class:`repro.resilience.supervisor.SupervisorConfig` as
    ``supervisor`` switches to the supervised execution mode
    (:func:`repro.resilience.supervisor.supervised_map`): per-worker
    heartbeats, hung-worker detection, kill/respawn with work
    reassignment, and a degrade ladder — liveness guarantees the plain
    pool cannot give (a hung ``ProcessPoolExecutor`` worker stalls the
    map forever without ever breaking the pool).

    Unsupervised multi-worker maps run on the process-wide
    :class:`repro.parallel.persistent.PersistentPool` when available:
    workers are forked once and reused across calls (Hogwild epochs,
    walk chunk batches), eliminating the per-call fork/teardown cost
    that dominated fine-grained maps. Worker deaths there are respawned
    per the same retry budget; if the pool breaks anyway, execution
    falls back to this module's executor/serial ladder *without*
    recomputing items the pool already finished. Disable with
    ``REPRO_PERSISTENT_POOL=0``.
    """
    if supervisor is not None and workers > 1 and len(items) > 1:
        from repro.resilience.supervisor import supervised_map

        return supervised_map(fn, items, workers=workers, config=supervisor)
    if workers <= 1 or len(items) <= 1:
        scope = current_cancel_scope()
        results_serial: list = []
        for item in items:
            scope.check()  # cooperative cancel between in-process items
            results_serial.append(fn(item))
        return results_serial
    policy = retry or POOL_RETRY_POLICY
    results: list = [_UNSET] * len(items)
    pending = list(range(len(items)))
    delays = policy.delay_schedule()

    rec = current_recorder()

    from repro.parallel.persistent import PersistentPoolBroken, get_pool

    pool = get_pool(workers)
    if pool is not None:
        try:
            return pool.map(fn, items, max_attempts=policy.max_attempts)
        except PersistentPoolBroken as broken:
            # Keep what finished; the executor ladder below computes the
            # rest. The broken pool is discarded so the next map forks a
            # fresh one instead of inheriting dead pipes.
            pool.shutdown()
            for i, value in broken.partial.items():
                results[i] = value
            pending = [i for i in range(len(items)) if results[i] is _UNSET]
            rec.inc("pool.persistent_broken")
            rec.event(
                "pool.persistent_broken",
                level="warning",
                pending=len(pending),
                total=len(items),
            )
    for attempt in range(policy.max_attempts):
        pending = _pool_pass(fn, items, results, pending, workers, policy)
        if not pending:
            return results
        if attempt < policy.max_attempts - 1:
            # Don't sit out a backoff (or burn another attempt) once
            # shutdown is requested; completed items are checkpointed or
            # recomputed deterministically by the caller on resume.
            current_cancel_scope().check()
            backoff_s = delays[attempt]
            rec.inc("pool.retries")
            rec.event(
                "pool.retry",
                level="warning",
                attempt=attempt + 1,
                pending=len(pending),
                total=len(items),
                backoff_s=backoff_s,
            )
            time.sleep(backoff_s)

    rec.inc("pool.serial_fallbacks")
    _log.warning(
        "pool.serial_fallback",
        pending=len(pending),
        total=len(items),
        attempts=policy.max_attempts,
    )
    scope = current_cancel_scope()
    for i in pending:
        scope.check()
        results[i] = fn(items[i])
    return results


def _pool_pass(
    fn: Callable[[T], R],
    items: Sequence[T],
    results: list,
    pending: list[int],
    workers: int,
    policy: RetryPolicy,
) -> list[int]:
    """Run one pool attempt over ``pending`` indices.

    Fills ``results`` in place and returns the indices that must be
    retried (pool-level failures). Work-function exceptions propagate.
    """
    still_pending: list[int] = []
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {}
            for i in pending:
                try:
                    futures[i] = pool.submit(fn, items[i])
                except policy.retry_on:
                    # Pool already broken (or refused): queue for retry.
                    still_pending.append(i)
            for i, future in futures.items():
                try:
                    results[i] = future.result()
                except policy.retry_on:
                    still_pending.append(i)
    except policy.retry_on:
        # Creation/teardown failure: everything unfinished is retried.
        still_pending = [i for i in pending if results[i] is _UNSET]
    return still_pending
