"""Chunked parallel map over picklable work items.

Uses ``concurrent.futures.ProcessPoolExecutor`` when ``workers > 1`` and
falls back to a serial loop otherwise (or when the platform cannot fork),
so callers get one code path. Work functions must be module-level
(picklable); per the mpi4py/scientific-python guides, data is passed as
contiguous numpy arrays to keep serialization cheap.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["chunk_bounds", "parallel_map", "default_workers"]


def default_workers() -> int:
    """A conservative worker count: physical-ish parallelism, at least 1."""
    return max(1, (os.cpu_count() or 1))


def chunk_bounds(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``chunks`` contiguous, balanced slices.

    The first ``total % chunks`` slices get one extra element. Empty
    slices are dropped, so the result may be shorter than ``chunks``.
    """
    if total < 0 or chunks <= 0:
        raise ValueError("total must be >= 0 and chunks >= 1")
    base, extra = divmod(total, chunks)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        bounds.append((start, start + size))
        start += size
    return bounds


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, in-process if ``workers == 1``.

    Results preserve input order. Exceptions propagate from the first
    failing item (matching the serial semantics).
    """
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError):
        # Sandboxed or fork-restricted environment: degrade gracefully.
        return [fn(item) for item in items]
