"""Parallel execution utilities: seeding, chunking, pool map, shared memory."""

from repro.parallel.seeding import spawn_generators, spawn_seeds, worker_seed_sequence
from repro.parallel.pool import (
    chunk_bounds,
    default_workers,
    parallel_map,
    resolve_workers,
)
from repro.parallel.shm import SharedArray, SharedArraySpec, shared_arrays

__all__ = [
    "spawn_seeds",
    "spawn_generators",
    "worker_seed_sequence",
    "chunk_bounds",
    "default_workers",
    "parallel_map",
    "resolve_workers",
    "SharedArray",
    "SharedArraySpec",
    "shared_arrays",
]
