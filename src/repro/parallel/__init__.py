"""Parallel execution utilities: deterministic seeding, chunking, pool map."""

from repro.parallel.seeding import spawn_generators, spawn_seeds
from repro.parallel.pool import chunk_bounds, parallel_map

__all__ = ["spawn_seeds", "spawn_generators", "chunk_bounds", "parallel_map"]
