"""Hogwild-style shared-memory parallel CBOW/SkipGram training.

The paper's pitch (Fig 7, Table 1) is that V2V is *fast*; DeepWalk-family
systems get there with lock-free asynchronous SGD (Hogwild, Niu et al.
2011): N workers update one shared weight matrix without locks, relying
on sparse, mostly-disjoint touches per minibatch. This module is that
training mode for the reproduction:

- ``w_in``/``w_out`` live in :mod:`repro.parallel.shm` segments; workers
  attach and run the *unchanged* vectorized ``batch_step`` kernels
  directly against the shared views — updates race benignly, exactly as
  Hogwild prescribes.
- The (centers, contexts) example set is materialized once in the parent,
  moved into shared memory, and sharded contiguously across workers —
  nothing heavyweight is ever pickled through the pool; per-epoch task
  payloads are a few hundred bytes of names and scalars (plus the noise
  distribution, O(V) floats).
- Per-worker RNG streams are addressed by ``(epoch, worker)`` via
  :func:`repro.parallel.seeding.worker_seed_sequence`, so checkpoint
  resume replays the exact seeds of the epochs it re-runs.
- ``workers=1`` executes the serial epoch loop in-process against the
  shared matrices — the same RNG draws and float ops as the default
  trainer, hence bitwise-identical embeddings (tested).

Determinism caveat: with ``workers > 1`` the final weights depend on OS
scheduling (update interleaving), so multi-worker runs are *not* bitwise
reproducible — only statistically so. See docs/PERFORMANCE.md.

Fault tolerance: epochs run through
:func:`repro.parallel.pool.parallel_map`, so a worker killed mid-epoch is
retried in a fresh pool (its shard is partially re-applied — benign for
Hogwild, same class of race as normal operation) and ultimately degrades
to in-process execution. Shared segments are owned by a
:func:`repro.parallel.shm.shared_arrays` scope and are unlinked on every
exit path, including exceptions and injected worker death.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.obs.recorder import current_recorder
from repro.obs.slab import HOGWILD_SLOTS, MetricsSlab, MetricsSlabSpec
from repro.parallel.pool import chunk_bounds, parallel_map
from repro.resilience.guard import effective_workers
from repro.parallel.seeding import worker_seed_sequence
from repro.resilience.lifecycle import current_cancel_scope
from repro.parallel.shm import SHM_AVAILABLE, SharedArraySpec, shared_arrays

__all__ = ["train_hogwild", "hogwild_supported", "hogwild_epoch_task"]


def hogwild_supported() -> bool:
    """Whether this platform can run the shared-memory trainer."""
    return SHM_AVAILABLE


@dataclass(frozen=True)
class _EpochTask:
    """One worker's share of one epoch (picklable, tiny).

    Shared state travels as :class:`SharedArraySpec` handles; the only
    array-valued field is ``vocab_counts`` (O(V) int64), from which the
    worker rebuilds its objective (noise distribution / Huffman coding).
    """

    w_in: SharedArraySpec
    w_out: SharedArraySpec
    centers: SharedArraySpec
    contexts: SharedArraySpec
    lo: int
    hi: int
    epoch: int
    worker: int
    entropy: int
    batch_offset: int
    total_batches: int
    config: "object"  # TrainConfig (imported lazily to avoid a cycle)
    vocab_counts: np.ndarray
    # Optional shared-memory metrics row set; workers report live progress
    # through it because the parent's Recorder is inert across fork.
    slab: MetricsSlabSpec | None = None


# Per-process cache of one run's attachments + rebuilt objective, keyed
# by the four segment names. Persistent-pool workers serve *every* epoch
# of a run (repro.parallel.persistent), so re-attaching the segments and
# rebuilding the objective — noise alias table, Huffman coding, a
# throwaway init matrix — once per epoch per worker was pure overhead.
# A new run allocates fresh segment names, which misses the cache and
# evicts the stale entry; the underlying attachments are owned by
# :func:`repro.parallel.shm.attach_cached` and are closed by its FIFO
# eviction, never here.
_WORKER_STATE: dict[tuple, tuple] = {}


def _task_state(task: _EpochTask) -> tuple:
    """(objective, centers, contexts) for this task's run, cached."""
    from repro.core.trainer import _build_objective
    from repro.core.vocab import VertexVocab
    from repro.parallel.shm import attach_cached

    key = (
        task.w_in.name,
        task.w_out.name,
        task.centers.name,
        task.contexts.name,
    )
    cached = _WORKER_STATE.get(key)
    if cached is not None:
        return cached
    sh = [
        attach_cached(s)
        for s in (task.w_in, task.w_out, task.centers, task.contexts)
    ]
    # Rebuild the objective shell, then point it at the shared views.
    # The throwaway init matrices are freed immediately.
    vocab = VertexVocab(task.vocab_counts)
    objective = _build_objective(task.config, vocab, np.random.default_rng(0))
    objective.w_in = sh[0].array
    objective.w_out = sh[1].array
    state = (objective, sh[2].array, sh[3].array)
    _WORKER_STATE.clear()  # one run at a time; drop stale handles
    _WORKER_STATE[key] = state
    return state


def hogwild_epoch_task(task: _EpochTask) -> tuple[float, int]:
    """Run one worker's epoch shard against the shared weights.

    Returns ``(loss_sum, batches_run)``. Module-level and picklable so it
    crosses a process pool; also runnable in-process (the ``workers=1``
    fallback inside :func:`parallel_map` and the chaos tests rely on
    that). Attachments and the rebuilt objective are cached per process
    (see :data:`_WORKER_STATE`), so on a persistent pool only the first
    epoch of a run pays the setup cost.
    """
    from repro.resilience.supervisor import current_heartbeat

    heartbeat = current_heartbeat()
    objective, all_centers, all_contexts = _task_state(task)
    slab = MetricsSlab.attach(task.slab) if task.slab is not None else None
    try:
        rng = np.random.default_rng(
            worker_seed_sequence(task.entropy, task.epoch, task.worker)
        )
        order = np.arange(task.lo, task.hi)
        if task.config.shuffle:
            rng.shuffle(order)

        config = task.config
        loss_sum = 0.0
        batches = 0
        denom = max(task.total_batches - 1, 1)
        if slab is not None:
            slab.put(task.worker, "epoch", task.epoch)
        for lo in range(0, order.shape[0], config.batch_size):
            # Lifecycle flag word: the parent broadcasts 1.0 here when
            # cancellation is requested (signal or deadline). Returning
            # early hands back a partial shard; the parent detects the
            # short epoch and discards it rather than recording it.
            if slab is not None and slab.get(task.worker, "cancel"):
                break
            sel = order[lo : lo + config.batch_size]
            frac = min(task.batch_offset + batches, denom) / denom
            lr = config.lr + (config.lr_min - config.lr) * frac
            loss = objective.batch_step(
                all_centers[sel], all_contexts[sel], lr, rng
            )
            loss_sum += loss
            batches += 1
            heartbeat.beat()  # liveness signal for the supervisor watchdog
            if slab is not None:
                slab.add(task.worker, "batches", 1)
                slab.add(task.worker, "examples", sel.shape[0])
                slab.add(task.worker, "loss_sum", loss)
                # Heartbeat for external monitors (repro top): one store,
                # same benign single-writer regime as the other slots.
                slab.put(task.worker, "updated", time.time())
        return loss_sum, batches
    finally:
        if slab is not None:
            slab.close()


# Local "not passed" sentinel for the legacy keyword shims (the pipeline
# layer has its own; this module must not import it at module level).
_UNSET = object()


def train_hogwild(
    corpus,
    config=None,
    *,
    context=None,
    init_vectors: np.ndarray | None = None,
    checkpoint_dir: "str | Path | None" = _UNSET,  # type: ignore[assignment]
    resume: bool = _UNSET,  # type: ignore[assignment]
    checkpoint_every: int = 1,
    epoch_callback: Callable[[int, float], None] | None = None,
    task_fn: Callable[[_EpochTask], tuple[float, int]] | None = None,
):
    """Train embeddings with shared weights and ``config.workers`` processes.

    Same contract as :func:`repro.core.trainer.train_embeddings` (which
    dispatches here for ``workers > 1``): runtime concerns ride in
    ``context`` (:class:`repro.pipeline.ExecutionContext`), with the
    individual ``checkpoint_dir=``/``resume=`` keywords kept as
    deprecated compatibility shims. Additionally accepts ``task_fn`` so
    the chaos tests can wrap the per-epoch worker task in a
    :class:`repro.resilience.chaos.FaultInjector` (``context``'s own
    ``fault_injector`` hook does the same for pipeline-driven runs).

    ``workers=1`` is the deterministic path: it runs the serial epoch
    loop in-process against the shared matrices and produces embeddings
    bitwise-identical to the serial trainer.
    """
    from repro.core.trainer import (
        EmbeddingResult,
        TrainConfig,
        _build_objective,
        _trainer_snapshots,
        _TrainState,
        _run_dense_epochs,
    )
    from repro.core.vocab import VertexVocab
    from repro.pipeline.context import UNSET, context_from_legacy

    ctx = context_from_legacy(
        context,
        checkpoint_dir=UNSET if checkpoint_dir is _UNSET else checkpoint_dir,
        resume=UNSET if resume is _UNSET else resume,
    )
    config = config or TrainConfig()
    ctx = ctx.with_supervisor(config.supervisor)
    if config.streaming:
        raise ValueError("the Hogwild trainer has no streaming mode")
    if not hogwild_supported():  # pragma: no cover - exotic platforms
        raise RuntimeError("shared memory is unavailable on this platform")

    # Mirror the serial trainer's setup *exactly* (same RNG call order)
    # so the workers=1 path stays bitwise-identical.
    rng = np.random.default_rng(config.seed)
    vocab = VertexVocab.from_corpus(corpus)
    if vocab.total_tokens == 0:
        raise ValueError("corpus is empty; nothing to train on")

    checkpointer = _trainer_snapshots(
        corpus, config, ctx, init_vectors, checkpoint_every
    )

    centers, contexts = corpus.context_arrays(config.window)
    if centers.size == 0:
        raise ValueError("corpus has no (center, context) examples")

    if config.subsample > 0:
        keep_p = vocab.keep_probabilities(config.subsample)
        keep = rng.random(centers.shape[0]) < keep_p[centers]
        if np.any(keep):  # never subsample away the whole corpus
            centers, contexts = centers[keep], contexts[keep]

    objective = _build_objective(config, vocab, rng, init_vectors)
    state = _TrainState()
    if checkpointer is not None and ctx.resume:
        state = checkpointer.restore(objective, rng) or state

    rec = current_recorder()
    with ctx.lifecycle(), rec.span(
        "train.run",
        objective=config.objective,
        output_layer=config.output_layer,
        dim=config.dim,
        epochs=config.epochs,
        workers=config.workers,
    ) as span, shared_arrays() as scope:
        # Weights move into shared memory; the parent-side objective now
        # *views* the segments, so checkpoint snapshots read live state.
        sh_in = scope.from_array(objective.w_in)
        sh_out = scope.from_array(objective.w_out)
        objective.w_in = sh_in.array
        objective.w_out = sh_out.array

        if config.workers == 1:
            elapsed = _run_dense_epochs(
                objective,
                centers,
                contexts,
                config,
                rng,
                state,
                checkpointer=checkpointer,
                epoch_callback=epoch_callback,
            )
        else:
            elapsed = _run_hogwild_epochs(
                objective,
                scope,
                sh_in.spec,
                sh_out.spec,
                centers,
                contexts,
                vocab,
                config,
                ctx,
                rng,
                state,
                checkpointer=checkpointer,
                epoch_callback=epoch_callback,
                task_fn=task_fn,
            )
        vectors = objective.vectors.copy()  # escape the scope before unlink
        if rec.enabled:
            span.annotate(
                epochs_run=len(state.loss_history), converged=state.converged
            )

    return EmbeddingResult(
        vectors=vectors,
        loss_history=state.loss_history,
        epochs_run=len(state.loss_history),
        train_seconds=elapsed,
        converged=state.converged,
        config=config,
    )


def _run_hogwild_epochs(
    objective,
    scope,
    w_in_spec: SharedArraySpec,
    w_out_spec: SharedArraySpec,
    centers: np.ndarray,
    contexts: np.ndarray,
    vocab,
    config,
    ctx,
    rng: np.random.Generator,
    state,
    *,
    checkpointer,
    epoch_callback,
    task_fn,
) -> float:
    """Epoch loop for ``workers > 1``: fan shards out, barrier per epoch."""
    sh_centers = scope.from_array(np.ascontiguousarray(centers, dtype=np.int64))
    sh_contexts = scope.from_array(np.ascontiguousarray(contexts, dtype=np.int64))

    rec = current_recorder()
    # Per-worker progress rows live in the same shared scope as the
    # weights, so crash cleanup (unlink) is covered by the scope. The
    # slab is created unconditionally (not just when telemetry is on)
    # because its "cancel" column is the lifecycle channel by which the
    # parent's cancellation reaches worker processes lock-free.
    sh_slab = scope.from_array(
        np.zeros((config.workers, len(HOGWILD_SLOTS)), dtype=np.float64)
    )
    slab = MetricsSlab.over(sh_slab, HOGWILD_SLOTS)
    slab_spec = slab.spec
    lifecycle = current_cancel_scope()
    unsubscribe = None
    if lifecycle.token is not None:
        unsubscribe = lifecycle.token.on_cancel(
            lambda: slab.broadcast("cancel", 1.0)
        )

    num_examples = centers.shape[0]
    shards = chunk_bounds(num_examples, config.workers)
    shard_batches = [
        int(np.ceil((hi - lo) / config.batch_size)) for lo, hi in shards
    ]
    offsets = np.concatenate([[0], np.cumsum(shard_batches)[:-1]])
    batches_per_epoch = int(sum(shard_batches))
    total_batches = batches_per_epoch * config.epochs
    # One picklable entropy for the whole run; workers re-derive their
    # streams from (entropy, epoch, worker) — stable across resume.
    entropy = np.random.SeedSequence(config.seed).entropy
    task = task_fn or ctx.wrap_task(hogwild_epoch_task)
    counts = vocab.counts

    if rec.live is not None:
        # Publish the training fan-out plus the slab's picklable identity
        # so `repro top` in another process can attach the live rows.
        from repro.obs.live import slab_spec_to_json

        rec.live.update(
            slab=slab_spec_to_json(slab_spec),
            train={
                "workers": config.workers,
                "epochs": config.epochs,
                "epoch": state.epoch,
                "total_batches": total_batches,
                "batches_done": state.batch_index,
                "started_unix": round(time.time(), 3),
            },
        )

    start = time.perf_counter()
    try:
        for epoch in range(state.epoch, config.epochs):
            if state.converged:
                break
            if lifecycle.cancelled():
                # Clean epoch boundary (or deadline noticed here):
                # snapshot then raise. check() also cancels the token on
                # deadline expiry so the slab broadcast fires for it.
                if checkpointer is not None:
                    checkpointer.save(objective, rng, state, final=True)
                lifecycle.check()
            mean_loss = _hogwild_epoch(
                epoch,
                objective,
                sh_centers,
                sh_contexts,
                w_in_spec,
                w_out_spec,
                slab,
                slab_spec,
                shards,
                offsets,
                batches_per_epoch,
                total_batches,
                entropy,
                counts,
                task,
                config,
                ctx,
                state,
                lifecycle,
                rec,
            )
            if checkpointer is not None:
                checkpointer.save(
                    objective,
                    rng,
                    state,
                    final=state.converged or state.epoch == config.epochs,
                )
            if epoch_callback is not None:
                epoch_callback(state.epoch - 1, mean_loss)
            if rec.live is not None:
                rec.live.update(
                    train={
                        "epoch": state.epoch,
                        "batches_done": state.batch_index,
                    }
                )
    finally:
        if unsubscribe is not None:
            unsubscribe()
        if rec.live is not None:
            # The slab segment unlinks with the shared scope; drop the
            # published handle so the monitor stops trying to attach it.
            rec.live.update(slab=None)
    return time.perf_counter() - start


def _hogwild_epoch(
    epoch: int,
    objective,
    sh_centers,
    sh_contexts,
    w_in_spec,
    w_out_spec,
    slab,
    slab_spec,
    shards,
    offsets,
    batches_per_epoch,
    total_batches,
    entropy,
    counts,
    task,
    config,
    ctx,
    state,
    lifecycle,
    rec,
) -> float:
    """One fan-out/barrier epoch; returns the recorded mean loss.

    A partial epoch (workers bailed out via the slab's cancel flag) is
    *discarded*: the shared weights then hold an incomplete update pass,
    which is not a valid resume point, so the epoch is neither recorded
    nor checkpointed — resume replays it from the last boundary.
    """
    from repro.core.trainer import _record_epoch_telemetry

    num_examples = int(sh_centers.array.shape[0])
    with rec.span(
        "train.epoch", epoch=epoch, workers=config.workers
    ) as span:
        epoch_start = time.perf_counter()
        tasks = [
            _EpochTask(
                w_in=w_in_spec,
                w_out=w_out_spec,
                centers=sh_centers.spec,
                contexts=sh_contexts.spec,
                lo=lo,
                hi=hi,
                epoch=epoch,
                worker=w,
                entropy=entropy,
                batch_offset=epoch * batches_per_epoch + int(offsets[w]),
                total_batches=total_batches,
                config=config,
                vocab_counts=counts,
                slab=slab_spec,
            )
            for w, (lo, hi) in enumerate(shards)
        ]
        # Pressure degradation shrinks only the *map concurrency*: task
        # structure (shards, per-(epoch, worker) seeds) stays pinned to
        # config.workers, so the trained model is the one the config
        # names — it just arrives on fewer live processes.
        results = parallel_map(
            task,
            tasks,
            workers=effective_workers(config.workers),
            supervisor=ctx.supervisor,
        )
        loss_sum = sum(loss for loss, _ in results)
        batches_run = sum(n for _, n in results)
        if lifecycle.cancelled() and batches_run < batches_per_epoch:
            lifecycle.check()
        state.batch_index += batches_run
        mean_loss = loss_sum / max(batches_run, 1)
        state.record_epoch(mean_loss, config)
        if rec.enabled:
            epoch_seconds = time.perf_counter() - epoch_start
            for w, row in enumerate(slab.rows()):
                rec.observe("hogwild.worker_batches", row["batches"])
                rec.observe("hogwild.worker_examples", row["examples"])
                rec.event(
                    "hogwild.worker",
                    level="debug",
                    worker=w,
                    epoch=epoch,
                    batches=int(row["batches"]),
                    examples=int(row["examples"]),
                    loss_sum=round(row["loss_sum"], 6),
                )
            slab.reset()
            # End-of-epoch position on the linear LR schedule.
            frac = min(
                (epoch + 1) * batches_per_epoch - 1, total_batches - 1
            ) / max(total_batches - 1, 1)
            _record_epoch_telemetry(
                rec,
                span,
                state,
                mean_loss,
                config.lr + (config.lr_min - config.lr) * frac,
                num_examples,
                epoch_seconds,
            )
    return mean_loss
