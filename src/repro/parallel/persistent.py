"""Persistent fork-once worker pool for repeated task batches.

PR 6's bench trajectory showed that the per-call cost of
``ProcessPoolExecutor`` — fork, interpreter warm-up, pipe setup, teardown
— dominates the fine-grained maps this codebase actually runs: Hogwild
fans out one map *per epoch* and the walk engine one map per corpus (or
per checkpoint wave), each lasting tens of milliseconds. This module
keeps one set of worker processes alive for the whole process lifetime
and feeds them task batches over per-worker pipes, so only the first
:func:`parallel_map` of a run pays the fork cost.

Design notes:

- Workers are plain ``multiprocessing.Process`` daemons in a loop:
  ``recv (task_id, fn, item) -> send (task_id, ok, payload)``. Functions
  cross the pipe by reference (module-level callables), items must be
  picklable — the exact contract the executor-based pool already imposed.
- Scheduling is dynamic: the parent hands each idle worker one item at a
  time and collects completions with ``multiprocessing.connection.wait``,
  so an uneven item mix load-balances itself.
- A worker that dies mid-task (SIGKILL, ``os._exit``, OOM) is detected
  by its pipe going EOF; the parent respawns a replacement and resubmits
  the in-flight item. Per-item resubmissions are bounded by the caller's
  retry budget; exhausting it raises :class:`PersistentPoolBroken`
  carrying every already-completed result, so
  :func:`repro.parallel.pool.parallel_map` can degrade to its legacy
  executor/serial ladder without recomputing finished work.
- Work-function exceptions are pickled back and re-raised in the parent
  — for multiple failures, the one with the smallest item index wins,
  matching the ordered-futures semantics of the executor path.
- Lifecycle: pools live for the process lifetime — that is the whole
  point (amortizing fork cost across pipeline stages and runs) — and
  shut down at interpreter exit (``atexit``) or explicitly via
  :func:`shutdown_pools`. Cooperative *cancellation* stays
  out of the map itself: like the executor path, an in-flight map runs
  to completion and the surrounding stage (epoch barrier, checkpoint
  wave) honors the cancel token at its next boundary — Hogwild workers
  additionally observe the metrics-slab cancel column mid-shard.
  Supervised maps (heartbeats, hung-worker watchdog) never route here;
  :func:`repro.resilience.supervisor.supervised_map` owns its workers.

Set ``REPRO_PERSISTENT_POOL=0`` to disable the persistent pool and fall
back to the per-call executor behavior.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import signal
import threading
import traceback
from typing import Callable, Sequence

import multiprocessing
from multiprocessing import connection as _mp_connection

from repro.obs.logging import get_logger

_log = get_logger("parallel.persistent")

__all__ = [
    "PersistentPool",
    "PersistentPoolBroken",
    "get_pool",
    "persistent_pool_enabled",
    "shutdown_pools",
]

_POLL_SECONDS = 0.25


class PersistentPoolBroken(RuntimeError):
    """The pool lost workers faster than the retry budget allows.

    ``partial`` maps item index -> completed result; the caller resumes
    from there on its fallback path instead of recomputing.
    """

    def __init__(self, message: str, partial: dict[int, object]) -> None:
        super().__init__(message)
        self.partial = partial


class _RemoteError:
    """A worker-side exception, shipped back as picklable payload."""

    def __init__(self, exc: BaseException) -> None:
        self.formatted = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(
                f"worker task failed with an unpicklable exception:\n"
                f"{self.formatted}"
            )
        self.exception = exc


def _worker_main(conn) -> None:  # pragma: no cover - runs in child processes
    """Worker loop: one task in, one result out, until the pipe closes."""
    # The child inherits the parent's ambient supervision/lifecycle state
    # as of fork time; neither is meaningful here (supervised maps never
    # route through this pool, and cancel tokens do not propagate across
    # processes), so reset both to their neutral defaults.
    try:
        from repro.resilience import supervisor as _supervisor

        _supervisor._current_heartbeat = _supervisor.NULL_HEARTBEAT
    except Exception:
        pass
    # The fork also inherits the CLI's cooperative signal_guard handlers,
    # which swallow the first SIGTERM — making Process.terminate() (and
    # the daemon sweep at interpreter exit) ineffective against a worker
    # blocked in recv. Restore default dispositions: SIGTERM kills,
    # SIGINT is ignored (the parent winds the pool down with sentinels).
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    # Env-armed sampling profiler (REPRO_PROFILE_DIR/_HZ, exported by a
    # profiled obs session before this process forked). The cumulative
    # profile is dumped after every completed task — pooled workers
    # outlive the session, so an exit-time dump would never be collected.
    try:
        from repro.obs.profiler import dump_worker_profile, maybe_profile_worker

        profiler = maybe_profile_worker()
    except Exception:
        profiler = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, fn, item = message
        try:
            payload = (task_id, True, fn(item))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            payload = (task_id, False, _RemoteError(exc))
        if profiler is not None:
            dump_worker_profile(profiler)
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
    os._exit(0)


class _Worker:
    """One pooled process plus the parent's end of its pipe."""

    def __init__(self, mp_ctx) -> None:
        self.conn, child_conn = mp_ctx.Pipe(duplex=True)
        self.process = mp_ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()  # the child owns its copy now

    def close(self, *, join_timeout: float = 1.0) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=join_timeout)


class PersistentPool:
    """A fixed-size pool of long-lived fork workers with dynamic dispatch."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._mp_ctx = multiprocessing.get_context()
        self._parent_pid = os.getpid()
        self._task_ids = itertools.count()
        self._pool: list[_Worker] = [
            _Worker(self._mp_ctx) for _ in range(workers)
        ]
        self._closed = False
        # Serializes shutdown against mid-map respawns: the pressure
        # watchdog calls shutdown() from its own thread while a map may
        # be in flight on the main thread.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._closed and os.getpid() == self._parent_pid

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if os.getpid() != self._parent_pid:
            return  # a forked child must not reap its parent's workers
        # The worker list stays populated (an in-flight map indexes into
        # it); closing each worker is what actually releases resources.
        for worker in self._pool:
            worker.close()

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        max_attempts: int = 3,
    ) -> list:
        """Run ``fn`` over ``items``; results in input order.

        Raises the smallest-index work-function exception after letting
        in-flight items settle, or :class:`PersistentPoolBroken` when a
        single item outlives ``max_attempts`` worker deaths.
        """
        if not self.alive:
            raise PersistentPoolBroken("pool is closed", {})
        n = len(items)
        results: list = [None] * n
        done = [False] * n
        attempts = [0] * n
        pending = list(range(n - 1, -1, -1))  # pop() serves items in order
        inflight: dict[int, tuple[int, int]] = {}  # worker slot -> (task_id, idx)
        live_ids: dict[int, int] = {}  # task_id -> item index
        idle = list(range(len(self._pool)))
        failures: dict[int, BaseException] = {}
        completed = 0

        def submit(slot: int, idx: int) -> None:
            task_id = next(self._task_ids)
            attempts[idx] += 1
            try:
                self._pool[slot].conn.send((task_id, fn, items[idx]))
            except (BrokenPipeError, OSError):
                # Worker died between maps; replace it and retry the send
                # through the normal death path below.
                self._handle_death(slot)
                attempts[idx] -= 1
                idle.append(slot)
                pending.append(idx)
                return
            inflight[slot] = (task_id, idx)
            live_ids[task_id] = idx

        def fail_slot(slot: int) -> None:
            """A worker died with a task in flight: respawn + resubmit."""
            task_id, idx = inflight.pop(slot)
            live_ids.pop(task_id, None)
            self._handle_death(slot)
            if attempts[idx] >= max_attempts:
                partial = {
                    i: results[i] for i in range(n) if done[i]
                }
                raise PersistentPoolBroken(
                    f"item {idx} lost its worker {attempts[idx]} times",
                    partial,
                )
            idle.append(slot)
            pending.append(idx)

        while completed < n:
            if self._closed:
                # A concurrent shutdown (pressure-ladder degradation or
                # interpreter exit) pulled the workers out from under
                # this map; hand back what finished so the caller's
                # fallback ladder resumes from there.
                raise PersistentPoolBroken(
                    "pool shut down during map",
                    {i: results[i] for i in range(n) if done[i]},
                )
            while idle and pending and not failures:
                submit(idle.pop(), pending.pop())
            if not inflight:
                if failures:
                    break  # nothing left in flight; raise below
                if pending and not idle:  # pragma: no cover - defensive
                    raise PersistentPoolBroken(
                        "no live workers available",
                        {i: results[i] for i in range(n) if done[i]},
                    )
                continue
            conn_to_slot = {
                self._pool[slot].conn: slot for slot in inflight
            }
            try:
                ready = _mp_connection.wait(
                    list(conn_to_slot), timeout=_POLL_SECONDS
                )
            except OSError:
                # A handle was closed while we were selecting on it.
                if self._closed:
                    continue  # the loop-top check raises with partials
                for slot in list(inflight):
                    worker = self._pool[slot]
                    if worker.conn.closed or not worker.process.is_alive():
                        fail_slot(slot)
                continue
            if not ready:
                # Nothing readable: reap workers that died silently.
                for slot in list(inflight):
                    if not self._pool[slot].process.is_alive():
                        fail_slot(slot)
                continue
            for conn in ready:
                slot = conn_to_slot[conn]
                try:
                    task_id, ok, payload = conn.recv()
                except (EOFError, OSError):
                    fail_slot(slot)
                    continue
                expected_id, idx = inflight[slot]
                if task_id != expected_id:
                    # Stale result from a map that already raised; the
                    # worker is now serving a new task — keep waiting.
                    continue
                inflight.pop(slot)
                live_ids.pop(task_id, None)
                idle.append(slot)
                if ok:
                    results[idx] = payload
                    done[idx] = True
                    completed += 1
                else:
                    failures[idx] = payload.exception

        if failures:
            raise failures[min(failures)]
        return results

    # ------------------------------------------------------------------
    def _handle_death(self, slot: int) -> None:
        worker = self._pool[slot]
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():  # conn broke but process lingers
            worker.process.terminate()
        worker.process.join(timeout=1.0)
        with self._lock:
            if self._closed:
                return  # shut down concurrently; don't respawn an orphan
            _log.warning("pool.worker_respawn", slot=slot)
            self._pool[slot] = _Worker(self._mp_ctx)


# ----------------------------------------------------------------------
# Process-wide registry: one pool per worker count, created lazily on
# first use and shut down at exit (or explicitly between pipeline runs).
# ----------------------------------------------------------------------
_POOLS: dict[int, PersistentPool] = {}


def persistent_pool_enabled() -> bool:
    """Honors the ``REPRO_PERSISTENT_POOL`` escape hatch (default on)."""
    return os.environ.get("REPRO_PERSISTENT_POOL", "1") != "0"


def get_pool(workers: int) -> PersistentPool | None:
    """The shared pool for ``workers``, or ``None`` when unavailable.

    Returns ``None`` when the feature is disabled, when the pressure
    guard's degradation ladder has demoted pooling for this run, when
    called from a forked child (a child must never talk to its parent's
    pipes), or when worker processes cannot be spawned at all.
    """
    if not persistent_pool_enabled():
        return None
    from repro.resilience.guard import pool_allowed

    if not pool_allowed():
        return None
    pool = _POOLS.get(workers)
    if pool is not None and pool.alive:
        return pool
    if pool is not None and os.getpid() != pool._parent_pid:
        return None  # inherited registry inside a forked child
    try:
        pool = PersistentPool(workers)
    except (OSError, PermissionError, ValueError):
        return None
    _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Tear down every pooled worker (idempotent; used at run/exit)."""
    for workers in list(_POOLS):
        pool = _POOLS.pop(workers)
        pool.shutdown()


atexit.register(shutdown_pools)
