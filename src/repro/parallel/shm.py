"""Shared-memory numpy arrays with a strict create/attach/cleanup lifecycle.

The Hogwild trainer and the zero-copy walk handoff both need the same
primitive: a numpy array whose buffer lives in a POSIX shared-memory
segment (``multiprocessing.shared_memory``), visible to every process
that knows its name. This module wraps that primitive so the rest of the
codebase never touches raw segments:

- :class:`SharedArray` — an ndarray view over a shared segment. Exactly
  one process *owns* the segment (the one that called :meth:`create` /
  :meth:`from_array`); owners unlink on :meth:`destroy`, attachers only
  close their mapping.
- :class:`SharedArraySpec` — the picklable handle ``(name, shape,
  dtype)`` a worker needs to :meth:`~SharedArray.attach`.
- :func:`shared_arrays` — a context manager that owns any number of
  segments and guarantees they are unlinked on exit, **including on
  exceptions** — the property the no-leaked-``/dev/shm`` tests assert.

Worker processes that die hard (SIGKILL / ``os._exit``) cannot corrupt
the lifecycle: their mapping disappears with the process, and the owner
still unlinks the name. Python's ``resource_tracker`` is shared between
a pool's parent and its workers, so an attach in a worker does not
schedule a duplicate unlink.

Segments are named ``repro-<pid>-<hex>`` — the creating process's pid is
embedded in the name so a *later* run can attribute every leftover
segment to its creator and reclaim the ones whose process is gone
(:func:`sweep_orphan_segments`, called by the run-registry startup
sweeper). The only unattributable case left is a SIGKILL of the whole
process tree before any sweep, and the next run cleans that up too.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import re
import secrets
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    _shared_memory = None
    SHM_AVAILABLE = False

__all__ = [
    "SHM_AVAILABLE",
    "SharedArray",
    "SharedArraySpec",
    "attach_cached",
    "release_cached",
    "shared_arrays",
    "sweep_orphan_segments",
]

#: Directory where POSIX shared memory surfaces as files on Linux.
SHM_MOUNT = "/dev/shm"

#: Segment names this package creates: ``repro-<creator pid>-<hex>``.
SEGMENT_RE = re.compile(r"^repro-(\d+)-[0-9a-f]+$")


def _segment_name() -> str:
    return f"repro-{os.getpid()}-{secrets.token_hex(4)}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def sweep_orphan_segments() -> list[str]:
    """Unlink ``repro-<pid>-*`` /dev/shm segments whose pid is dead.

    The crash-recovery path: a run killed with SIGKILL never reaches its
    atexit sweep, leaving named segments pinned in RAM. Any later run
    calls this at startup; segments belonging to live processes are left
    alone. Returns the names removed. A no-op (empty list) where
    ``/dev/shm`` does not exist.
    """
    mount = Path(SHM_MOUNT)
    removed: list[str] = []
    try:
        entries = list(mount.iterdir())
    except OSError:  # pragma: no cover - non-Linux
        return removed
    for entry in entries:
        match = SEGMENT_RE.match(entry.name)
        if match is None or _pid_alive(int(match.group(1))):
            continue
        # Direct unlink, not SharedMemory(name=...).unlink(): attaching
        # would register the segment with this process's resource
        # tracker and double-unlink at exit.
        with contextlib.suppress(OSError):
            entry.unlink()
            removed.append(entry.name)
    return removed


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable identity of a shared array: pass this to workers."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SharedArray:
    """A numpy array backed by a named shared-memory segment.

    Use the classmethods — the constructor is internal. The ``owner``
    flag decides what :meth:`destroy` does: owners unlink the segment,
    attachers only close their own mapping.
    """

    def __init__(
        self, shm: "_shared_memory.SharedMemory", spec: SharedArraySpec, *, owner: bool
    ) -> None:
        self._shm = shm
        self.spec = spec
        self.owner = owner
        self._array: np.ndarray | None = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
        )
        # Safety net: a SharedArray dropped without destroy() still
        # releases its OS resources at GC time instead of leaking the
        # segment until interpreter shutdown.
        self._finalizer = weakref.finalize(
            self, _release, shm, owner, spec.name
        )
        # Second safety net for *abnormal* exits that never drop the
        # reference (an exception unwinding past a bare create(), a
        # KeyboardInterrupt outside any scope): owned segments are swept
        # at interpreter exit. The pid pins the sweep to the creating
        # process — a forked worker inheriting the set must not unlink
        # names its parent still uses.
        if owner:
            self._creator_pid = os.getpid()
            _LIVE_OWNED.add(self)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, shape: tuple[int, ...], dtype) -> "SharedArray":
        """Allocate a fresh owned segment of the given shape/dtype."""
        _require_shm()
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        shm = None
        for _ in range(8):  # token collisions are ~2**-32; retry anyway
            try:
                shm = _shared_memory.SharedMemory(
                    name=_segment_name(), create=True, size=nbytes
                )
                break
            except FileExistsError:  # pragma: no cover - astronomically rare
                continue
        if shm is None:  # pragma: no cover - fall back to an anonymous name
            shm = _shared_memory.SharedMemory(create=True, size=nbytes)
        spec = SharedArraySpec(name=shm.name, shape=tuple(shape), dtype=dt.str)
        return cls(shm, spec, owner=True)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedArray":
        """Allocate an owned segment holding a copy of ``array``."""
        array = np.asarray(array)
        shared = cls.create(array.shape, array.dtype)
        shared.array[...] = array
        return shared

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedArray":
        """Map an existing segment created elsewhere (non-owning)."""
        _require_shm()
        shm = _shared_memory.SharedMemory(name=spec.name)
        return cls(shm, spec, owner=False)

    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        if self._array is None:
            raise ValueError("shared array has been released")
        return self._array

    @property
    def released(self) -> bool:
        return self._array is None

    def copy(self) -> np.ndarray:
        """A private heap copy of the current contents."""
        return self.array.copy()

    def destroy(self) -> None:
        """Release the mapping; owners also unlink the segment name.

        Idempotent. After this the :attr:`array` view is invalid — take
        a :meth:`copy` first if the data must outlive the segment.
        """
        if self._array is None:
            return
        self._array = None
        self._finalizer.detach()
        _release(self._shm, self.owner, self.spec.name)

    close = destroy  # attach-side alias: closing a mapping you don't own

    # ------------------------------------------------------------------
    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self.released else ("owner" if self.owner else "attached")
        return f"SharedArray({self.spec.name!r}, {self.spec.shape}, {state})"


def _release(shm, owner: bool, name: str) -> None:
    """Close (and for owners unlink) a segment, tolerating repeats."""
    with contextlib.suppress(BufferError, OSError, ValueError):
        shm.close()
    if owner:
        with contextlib.suppress(FileNotFoundError, OSError):
            shm.unlink()


# Owned-but-unreleased segments, swept at interpreter exit. A WeakSet so
# membership never delays GC (the weakref.finalize above handles the
# dropped-reference case; this handles the still-referenced one).
_LIVE_OWNED: "weakref.WeakSet[SharedArray]" = weakref.WeakSet()


def _sweep_owned_segments() -> None:  # pragma: no cover - exercised via subprocess
    for shared in list(_LIVE_OWNED):
        if getattr(shared, "_creator_pid", None) != os.getpid():
            continue
        with contextlib.suppress(Exception):
            shared.destroy()


atexit.register(_sweep_owned_segments)


# ----------------------------------------------------------------------
# Attachment cache: long-lived pool workers (repro.parallel.persistent)
# attach the same segments once per *run*, not once per task. Keyed by
# segment name — names are unique per creation, so a hit can never alias
# a different array. Bounded FIFO: evicted (and stale) attachments are
# closed, which releases this process's mapping; the owner's unlink is
# unaffected.
# ----------------------------------------------------------------------
_ATTACH_CACHE: "dict[str, SharedArray]" = {}
_ATTACH_CACHE_MAX = 16


def attach_cached(spec: SharedArraySpec) -> SharedArray:
    """Attach ``spec``, reusing this process's previous attachment.

    Intended for worker-side hot paths that receive the same handful of
    segment handles in every task of a batch (walk chunk graphs, Hogwild
    weight matrices). The returned array must NOT be closed by the
    caller — the cache owns the mapping and closes it on eviction.
    """
    cached = _ATTACH_CACHE.get(spec.name)
    if cached is not None and not cached.released and cached.spec == spec:
        return cached
    if cached is not None:  # released, or a recycled name with a new shape
        _ATTACH_CACHE.pop(spec.name, None)
        cached.close()
    shared = SharedArray.attach(spec)
    _ATTACH_CACHE[spec.name] = shared
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX:
        oldest = _ATTACH_CACHE.pop(next(iter(_ATTACH_CACHE)))
        oldest.close()
    return shared


def release_cached(name: str) -> None:
    """Drop (and close) this process's cached attachment for ``name``.

    Owners call this after destroying a segment whose spec they handed
    out, so a serial-fallback execution in the owning process does not
    pin the dead segment's memory until FIFO eviction. No-op when the
    name was never cached here.
    """
    cached = _ATTACH_CACHE.pop(name, None)
    if cached is not None:
        cached.close()


def _require_shm() -> None:
    if not SHM_AVAILABLE:  # pragma: no cover - exotic platforms only
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )


@contextlib.contextmanager
def shared_arrays() -> Iterator["_SharedArrayScope"]:
    """Scope that guarantees every registered segment is destroyed.

    ::

        with shared_arrays() as scope:
            w_in = scope.from_array(model.w_in)
            ...  # segments survive worker crashes inside the block
        # everything unlinked here, even if the block raised
    """
    scope = _SharedArrayScope()
    try:
        yield scope
    finally:
        scope.destroy_all()


class _SharedArrayScope:
    """Tracks SharedArrays so teardown is a single guaranteed call."""

    def __init__(self) -> None:
        self._owned: list[SharedArray] = []

    def create(self, shape: tuple[int, ...], dtype) -> SharedArray:
        return self._track(SharedArray.create(shape, dtype))

    def from_array(self, array: np.ndarray) -> SharedArray:
        return self._track(SharedArray.from_array(array))

    def _track(self, shared: SharedArray) -> SharedArray:
        self._owned.append(shared)
        return shared

    def destroy_all(self) -> None:
        for shared in self._owned:
            shared.destroy()
        self._owned.clear()
