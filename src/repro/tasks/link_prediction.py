"""Link prediction from vertex embeddings.

Pipeline (the standard node2vec-style evaluation, implementing the
"predicting relationships between pairs of vertices" application from
the paper's conclusion):

1. :func:`train_test_edge_split` — hide a fraction of edges (positives)
   while keeping the residual graph connected enough to walk on; sample
   an equal number of non-edges (negatives).
2. Embed the *residual* graph with V2V (no peeking at test edges).
3. :func:`edge_features` — turn a vertex pair into a feature vector with
   one of the standard binary operators (hadamard, average, L1, L2).
4. Fit :class:`repro.ml.logreg.LogisticRegression` on train pairs and
   score test pairs with ROC AUC (:func:`auc_score`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import V2V, V2VConfig
from repro.graph.core import EdgeList, Graph
from repro.ml.logreg import LogisticRegression

__all__ = [
    "EDGE_OPERATORS",
    "edge_features",
    "train_test_edge_split",
    "auc_score",
    "link_prediction_experiment",
    "LinkPredictionResult",
]


def _hadamard(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


def _average(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a + b) / 2.0


def _weighted_l1(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.abs(a - b)


def _weighted_l2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a - b) ** 2


EDGE_OPERATORS = {
    "hadamard": _hadamard,
    "average": _average,
    "l1": _weighted_l1,
    "l2": _weighted_l2,
}


def edge_features(
    vectors: np.ndarray,
    pairs: np.ndarray,
    *,
    operator: str = "hadamard",
) -> np.ndarray:
    """Pair feature matrix: operator applied to the endpoint embeddings.

    ``pairs`` is (m × 2) of vertex ids; returns (m × dim).
    """
    if operator not in EDGE_OPERATORS:
        raise ValueError(f"operator must be one of {sorted(EDGE_OPERATORS)}")
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must be (m, 2)")
    return EDGE_OPERATORS[operator](vectors[pairs[:, 0]], vectors[pairs[:, 1]])


def train_test_edge_split(
    g: Graph,
    test_fraction: float = 0.3,
    *,
    seed: int | np.random.Generator | None = None,
) -> tuple[Graph, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split edges into a residual graph + train/test positives/negatives.

    Returns ``(residual_graph, train_pos, train_neg, test_pos, test_neg)``
    where each pair set is an (m × 2) int array. Test positives are the
    hidden edges; train positives are the edges kept in the residual
    graph. Negatives are uniformly sampled non-edges (disjoint between
    train and test), one per positive.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    e = g.edge_list
    m = len(e)
    if m < 4:
        raise ValueError("graph too small to split")
    n_test = max(1, int(round(test_fraction * m)))
    perm = rng.permutation(m)
    test_idx = perm[:n_test]
    keep_idx = np.sort(perm[n_test:])

    residual = Graph(
        g.n,
        EdgeList(
            e.src[keep_idx],
            e.dst[keep_idx],
            None if e.weights is None else e.weights[keep_idx],
            None if e.times is None else e.times[keep_idx],
        ),
        directed=g.directed,
        vertex_weights=g.vertex_weights,
    )
    for name in g.label_names:
        residual.set_vertex_labels(name, g.vertex_labels(name))

    test_pos = np.column_stack([e.src[test_idx], e.dst[test_idx]])
    train_pos = np.column_stack([e.src[keep_idx], e.dst[keep_idx]])

    existing = {
        (int(min(u, v)), int(max(u, v))) for u, v in zip(e.src, e.dst)
    } if not g.directed else {(int(u), int(v)) for u, v in zip(e.src, e.dst)}
    negatives = _sample_non_edges(
        g.n, len(test_idx) + len(keep_idx), existing, g.directed, rng
    )
    test_neg = negatives[: len(test_idx)]
    train_neg = negatives[len(test_idx) :]
    return residual, train_pos, train_neg, test_pos, test_neg


def _sample_non_edges(
    n: int,
    count: int,
    existing: set[tuple[int, int]],
    directed: bool,
    rng: np.random.Generator,
) -> np.ndarray:
    out = np.empty((count, 2), dtype=np.int64)
    got = 0
    seen: set[tuple[int, int]] = set()
    max_pairs = n * (n - 1) if directed else n * (n - 1) // 2
    if count > max_pairs - len(existing):
        raise ValueError("not enough non-edges to sample")
    while got < count:
        u = rng.integers(0, n, size=2 * (count - got))
        v = rng.integers(0, n, size=u.shape[0])
        for a, b in zip(u, v):
            if a == b:
                continue
            key = (int(a), int(b)) if directed else (int(min(a, b)), int(max(a, b)))
            if key in existing or key in seen:
                continue
            seen.add(key)
            out[got] = (a, b)
            got += 1
            if got == count:
                break
    return out


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC via the Mann–Whitney U statistic (ties get half credit)."""
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise ValueError("labels and scores must be matching 1-D arrays")
    pos = scores[labels]
    neg = scores[~labels]
    if pos.size == 0 or neg.size == 0:
        raise ValueError("need both positive and negative examples")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(scores.shape[0])
    ranks[order] = np.arange(1, scores.shape[0] + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    unique, inverse, counts = np.unique(
        sorted_scores, return_inverse=True, return_counts=True
    )
    if unique.shape[0] != scores.shape[0]:
        start = np.concatenate([[0], np.cumsum(counts)[:-1]])
        avg = start + (counts + 1) / 2.0
        ranks[order] = avg[inverse]
    r_pos = ranks[labels].sum()
    u = r_pos - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))


@dataclass(frozen=True)
class LinkPredictionResult:
    """AUC plus the experiment's configuration."""

    auc: float
    operator: str
    dim: int
    test_edges: int
    train_edges: int


def link_prediction_experiment(
    g: Graph,
    *,
    config: V2VConfig | None = None,
    operator: str = "hadamard",
    test_fraction: float = 0.3,
    seed: int | None = 0,
    context=None,
) -> LinkPredictionResult:
    """End-to-end link prediction on ``g``; returns ROC AUC on held-out
    edges vs sampled non-edges.

    ``context`` is an optional :class:`repro.pipeline.ExecutionContext`
    carrying runtime concerns (checkpointing, workers, supervision) into
    the embedding stage; the experiment itself stays deterministic in
    ``seed`` regardless.
    """
    config = config or V2VConfig(dim=32, seed=seed)
    residual, train_pos, train_neg, test_pos, test_neg = train_test_edge_split(
        g, test_fraction, seed=seed
    )
    model = V2V(config).fit(residual, context=context)
    vectors = model.vectors

    x_train = np.vstack(
        [
            edge_features(vectors, train_pos, operator=operator),
            edge_features(vectors, train_neg, operator=operator),
        ]
    )
    y_train = np.concatenate(
        [np.ones(len(train_pos)), np.zeros(len(train_neg))]
    )
    clf = LogisticRegression(max_iter=300).fit(x_train, y_train)

    x_test = np.vstack(
        [
            edge_features(vectors, test_pos, operator=operator),
            edge_features(vectors, test_neg, operator=operator),
        ]
    )
    y_test = np.concatenate([np.ones(len(test_pos)), np.zeros(len(test_neg))])
    scores = clf.predict_proba(x_test)[:, list(clf.classes_).index(1.0)]
    return LinkPredictionResult(
        auc=auc_score(y_test, scores),
        operator=operator,
        dim=config.dim,
        test_edges=len(test_pos),
        train_edges=len(train_pos),
    )
