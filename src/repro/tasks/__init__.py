"""Application tasks built on V2V embeddings.

The paper's conclusion lists "predicting relationships between pairs of
vertices" among V2V's applications; :mod:`repro.tasks.link_prediction`
implements that experiment end-to-end (edge split, pair features,
logistic scorer, AUC).
"""

from repro.tasks.link_prediction import (
    EDGE_OPERATORS,
    LinkPredictionResult,
    auc_score,
    edge_features,
    link_prediction_experiment,
    train_test_edge_split,
)

__all__ = [
    "EDGE_OPERATORS",
    "edge_features",
    "train_test_edge_split",
    "auc_score",
    "link_prediction_experiment",
    "LinkPredictionResult",
]
