"""Ablation: negative sampling vs hierarchical softmax output layers for
CBOW — quality and cost on the community benchmark. Both are faithful
word2vec output layers; the paper does not specify which it used, so the
reproduction ships both and shows they land in the same quality band."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml import KMeans, pairwise_precision_recall
from repro.walks.engine import RandomWalkConfig, generate_walks

ABLATION_DIM = 32


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = sorted(scale.alphas)[len(scale.alphas) // 2]
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    corpus = generate_walks(
        graph,
        RandomWalkConfig(
            walks_per_vertex=scale.walks_per_vertex,
            walk_length=scale.walk_length,
            seed=scale.seed,
        ),
    )
    records = []
    for output_layer in ("negative", "hierarchical"):
        cfg = V2VConfig(
            dim=ABLATION_DIM,
            output_layer=output_layer,
            epochs=scale.epochs,
            tol=1e-2,
            patience=2,
            seed=scale.seed,
        )
        model = V2V(cfg)
        with Timer() as t:
            model.fit_corpus(corpus)
        labels = KMeans(scale.groups, n_init=20, seed=scale.seed).fit_predict(
            model.vectors
        )
        p, r = pairwise_precision_recall(truth, labels)
        records.append(
            ExperimentRecord(
                params={"alpha": alpha, "output_layer": output_layer},
                values={
                    "precision": p,
                    "recall": r,
                    "train_s": t.seconds,
                    "epochs": float(model.result.epochs_run),
                },
            )
        )
    return records


def test_ablation_softmax(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Ablation — negative sampling vs hierarchical softmax, "
            f"dim={ABLATION_DIM} [scale={scale.name}]"
        ),
    )
    emit("ablation_softmax", records, rendered, results_dir)

    for r in records:
        assert r.values["precision"] > 0.85, r.params
