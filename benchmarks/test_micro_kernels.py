"""Microbenchmarks of the hot kernels.

Unlike the experiment benches (one-shot pedantic runs), these use
pytest-benchmark's repeated timing to track the per-call cost of the
kernels that dominate end-to-end runtime: the CBOW SGD step, the
vectorized walk step, context extraction, k-means assignment, and the
scatter-add primitive. Regressions here are regressions everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core._math import scatter_add_rows
from repro.core.cbow import CBOWNegativeSampling
from repro.core.negative import NegativeSampler
from repro.datasets.synthetic import community_benchmark
from repro.ml.kmeans import KMeans
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, generate_walks

V, D, B, C, K = 1000, 64, 512, 10, 5


@pytest.fixture(scope="module")
def graph():
    return community_benchmark(0.5, n=500, groups=10, inter_edges=100, seed=0)


@pytest.fixture(scope="module")
def cbow_batch():
    rng = np.random.default_rng(0)
    model = CBOWNegativeSampling(
        V, D, NegativeSampler(np.full(V, 1.0 / V)), negatives=K, rng=rng
    )
    centers = rng.integers(0, V, B)
    contexts = rng.integers(0, V, (B, C))
    contexts[rng.random((B, C)) < 0.2] = -1
    contexts[:, 0] = np.abs(contexts[:, 0])  # at least one real context
    return model, centers, contexts, rng


def test_cbow_batch_step(benchmark, cbow_batch):
    model, centers, contexts, rng = cbow_batch
    benchmark(model.batch_step, centers, contexts, 0.01, rng)


def test_scatter_add_rows(benchmark):
    rng = np.random.default_rng(0)
    target = np.zeros((V, D))
    idx = rng.integers(0, V, B * (K + 1))
    rows = rng.random((B * (K + 1), D))
    benchmark(scatter_add_rows, target, idx, rows)


def test_scatter_add_rows_unique_fast_path(benchmark):
    # Duplicate-free index batch: PR 2's bincount check short-circuits to
    # plain fancy-index addition instead of building the CSR selector.
    # Compare against test_scatter_add_rows to see the fast-path margin,
    # and against test_scatter_add_rows_add_at for the np.add.at baseline.
    rng = np.random.default_rng(0)
    target = np.zeros((4 * B * (K + 1), D))
    idx = rng.permutation(target.shape[0])[: B * (K + 1)]
    rows = rng.random((B * (K + 1), D))
    result = benchmark(scatter_add_rows, target, idx, rows)
    assert result is None

    # Parity gate: the fast path must agree with the ufunc reference.
    check = np.zeros_like(target)
    expect = np.zeros_like(target)
    scatter_add_rows(check, idx, rows)
    np.add.at(expect, idx, rows)
    np.testing.assert_array_equal(check, expect)


def test_scatter_add_rows_add_at(benchmark):
    # The np.add.at reference the CSR formulation replaced — kept as a
    # baseline so the selector's advantage stays visible in bench output.
    rng = np.random.default_rng(0)
    target = np.zeros((V, D))
    idx = rng.integers(0, V, B * (K + 1))
    rows = rng.random((B * (K + 1), D))
    benchmark(np.add.at, target, idx, rows)


def test_walk_generation(benchmark, graph):
    cfg = RandomWalkConfig(walks_per_vertex=2, walk_length=40, seed=0)
    corpus = benchmark(generate_walks, graph, cfg)
    assert corpus.num_walks == 2 * graph.n


def test_context_extraction(benchmark, graph):
    corpus = generate_walks(
        graph, RandomWalkConfig(walks_per_vertex=2, walk_length=40, seed=0)
    )
    centers, _ = benchmark(corpus.context_arrays, 5)
    assert centers.shape[0] == corpus.num_examples(5)


def test_kmeans_fit(benchmark):
    rng = np.random.default_rng(0)
    x = rng.random((1000, 32))
    km = KMeans(10, n_init=1, seed=0)
    result = benchmark(km.fit, x)
    assert result.labels.shape == (1000,)


def test_negative_sampling(benchmark):
    rng = np.random.default_rng(0)
    sampler = NegativeSampler(np.random.default_rng(1).random(V))
    draws = benchmark(sampler.sample, (B, K), rng)
    assert draws.shape == (B, K)
