"""Extension: V2V vs spectral embedding (Laplacian eigenmaps).

The related-work section situates V2V among embedding methods but never
compares against the classical closed-form alternative. This bench runs
both on identical graphs: community quality and wall-clock. Expected:
spectral clustering is exact and far cheaper on clean planted partitions
(it is the method of choice there); V2V's advantages — incremental
corpora, directed/temporal/weighted walk constraints, task-agnostic
reusable vectors — are qualitative, so the bench records the quality
parity rather than claiming a V2V win."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, _v2v_config
from repro import V2V
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml import KMeans, pairwise_precision_recall
from repro.ml.spectral import spectral_communities


def run(scale, community_graphs) -> list[ExperimentRecord]:
    records = []
    for alpha in (min(scale.alphas), max(scale.alphas)):
        graph = community_graphs[alpha]
        truth = graph.vertex_labels("community")

        with Timer() as t_v2v:
            model = V2V(_v2v_config(scale, 32)).fit(graph)
            labels = KMeans(
                scale.groups, n_init=20, seed=scale.seed
            ).fit_predict(model.vectors)
        p, r = pairwise_precision_recall(truth, labels)
        records.append(
            ExperimentRecord(
                params={"alpha": alpha, "method": "v2v+kmeans"},
                values={"precision": p, "recall": r, "seconds": t_v2v.seconds},
            )
        )

        with Timer() as t_spec:
            spec_labels = spectral_communities(
                graph, scale.groups, n_init=20, seed=scale.seed
            )
        p, r = pairwise_precision_recall(truth, spec_labels)
        records.append(
            ExperimentRecord(
                params={"alpha": alpha, "method": "spectral"},
                values={"precision": p, "recall": r, "seconds": t_spec.seconds},
            )
        )
    return records


def test_ext_spectral(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=f"Extension — V2V vs spectral embedding [scale={scale.name}]",
    )
    emit("ext_spectral", records, rendered, results_dir)

    by = {
        (r.params["alpha"], r.params["method"]): r.values for r in records
    }
    strong = max(scale.alphas)
    # Both methods solve the strong case; spectral is much faster.
    assert by[(strong, "v2v+kmeans")]["precision"] > 0.9
    assert by[(strong, "spectral")]["precision"] > 0.9
    assert by[(strong, "spectral")]["seconds"] < by[(strong, "v2v+kmeans")]["seconds"]
