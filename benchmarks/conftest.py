"""Shared infrastructure for the experiment benches.

Every table/figure of the paper has one bench module. Heavy artifacts
(the α × dimension sweep, the OpenFlights embeddings) are computed once
per pytest session and shared through fixtures, mirroring the paper's own
protocol of reusing one walk corpus across dimensions.

Scale control
-------------
``V2V_SCALE=fast`` (default) runs laptop-sized versions whose *shapes*
match the paper; ``V2V_SCALE=paper`` runs the published parameters
(n = 1000, dims up to 600, the full α grid — expect an hour+). Every
record the benches print and every CSV under ``benchmarks/results/``
carries the parameters used, and EXPERIMENTS.md records which scale
produced the committed numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import pytest

from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer
from repro.datasets.openflights import OpenFlightsSpec, synthetic_openflights
from repro.datasets.synthetic import community_benchmark
from repro.ml import KMeans, pairwise_precision_recall
from repro.walks.engine import RandomWalkConfig, generate_walks

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    """All experiment sizes in one place."""

    name: str
    # Community benchmark (Table I, Figs 3-7)
    n: int
    groups: int
    inter_edges: int
    alphas: tuple[float, ...]
    dims: tuple[int, ...]
    top_dim: int
    walks_per_vertex: int
    walk_length: int
    epochs: int
    table1_dim: int
    kmeans_restarts: int
    gn_sample_sources: int | None
    # OpenFlights (Figs 8-10)
    airports: int
    countries_per_continent: int
    of_walks: int
    of_walk_length: int
    of_epochs: int
    fig9_dims: tuple[int, ...]
    fig10_dims: tuple[int, ...]
    knn_ks: tuple[int, ...] = tuple(range(1, 11))
    cv_folds: int = 10
    cv_repeats: int = 2
    seed: int = 0


FAST = BenchScale(
    name="fast",
    # n=400 in 8 groups of 50 keeps the paper's per-vertex degree signal
    # (intra-degree ≈ alpha * 49 vs inter-degree 0.4) — shrinking the
    # groups themselves would make alpha=0.1 undetectable for *every*
    # method, which the paper's n=1000/100-per-group setup never is.
    n=400,
    groups=8,
    inter_edges=80,
    alphas=(0.1, 0.4, 0.7, 1.0),
    dims=(20, 50, 100),
    top_dim=100,
    walks_per_vertex=6,
    walk_length=30,
    epochs=10,
    table1_dim=10,
    kmeans_restarts=100,
    gn_sample_sources=40,
    airports=500,
    countries_per_continent=4,
    of_walks=8,
    of_walk_length=40,
    of_epochs=5,
    fig9_dims=(10, 20, 30, 50, 75, 100, 150),
    fig10_dims=(20, 50, 100),
)

PAPER = BenchScale(
    name="paper",
    n=1000,
    groups=10,
    inter_edges=200,
    alphas=tuple(round(0.1 * i, 1) for i in range(1, 11)),
    dims=(20, 50, 100, 250, 600),
    top_dim=600,
    walks_per_vertex=10,
    walk_length=80,
    epochs=10,
    table1_dim=10,
    kmeans_restarts=100,
    gn_sample_sources=100,
    airports=3000,  # memory-capped stand-in for the 10k-airport dump
    countries_per_continent=12,
    of_walks=10,
    of_walk_length=80,
    of_epochs=5,
    fig9_dims=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 300),
    fig10_dims=(10, 50, 100),
)


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return PAPER if os.environ.get("V2V_SCALE") == "paper" else FAST


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def _v2v_config(scale: BenchScale, dim: int) -> V2VConfig:
    return V2VConfig(
        dim=dim,
        walks_per_vertex=scale.walks_per_vertex,
        walk_length=scale.walk_length,
        epochs=scale.epochs,
        tol=1e-2,
        patience=2,
        seed=scale.seed,
    )


@dataclass
class SweepCell:
    """One (α, dim) point of the community sweep."""

    alpha: float
    dim: int
    precision: float
    recall: float
    train_seconds: float
    cluster_seconds: float
    epochs_run: int
    vectors: np.ndarray
    labels: np.ndarray
    truth: np.ndarray


@pytest.fixture(scope="session")
def community_graphs(scale: BenchScale):
    """One benchmark graph per α (independent seeds)."""
    graphs = {}
    seeds = np.random.SeedSequence(scale.seed).spawn(len(scale.alphas))
    for alpha, child in zip(scale.alphas, seeds):
        graphs[alpha] = community_benchmark(
            alpha,
            n=scale.n,
            groups=scale.groups,
            inter_edges=scale.inter_edges,
            seed=np.random.default_rng(child),
        )
    return graphs


@pytest.fixture(scope="session")
def alpha_dim_sweep(scale: BenchScale, community_graphs) -> list[SweepCell]:
    """The α × dim community-detection sweep behind Figs 4-7.

    One walk corpus per α, reused across dimensions (the paper's own
    protocol); k-means with the configured restarts per cell.
    """
    cells: list[SweepCell] = []
    for alpha, graph in community_graphs.items():
        truth = graph.vertex_labels("community")
        corpus = generate_walks(
            graph,
            RandomWalkConfig(
                walks_per_vertex=scale.walks_per_vertex,
                walk_length=scale.walk_length,
                seed=scale.seed,
            ),
        )
        for dim in scale.dims:
            model = V2V(_v2v_config(scale, dim))
            with Timer() as t_train:
                model.fit_corpus(corpus)
            with Timer() as t_cluster:
                km = KMeans(
                    scale.groups, n_init=scale.kmeans_restarts, seed=scale.seed
                ).fit(model.vectors)
            p, r = pairwise_precision_recall(truth, km.labels)
            cells.append(
                SweepCell(
                    alpha=alpha,
                    dim=dim,
                    precision=p,
                    recall=r,
                    train_seconds=t_train.seconds,
                    cluster_seconds=t_cluster.seconds,
                    epochs_run=model.result.epochs_run,
                    vectors=model.vectors,
                    labels=km.labels,
                    truth=truth,
                )
            )
    return cells


@dataclass
class FlightsData:
    """Synthetic OpenFlights + embeddings at several dimensions."""

    graph: object
    continents: np.ndarray
    countries: np.ndarray
    vectors_by_dim: dict[int, np.ndarray]
    train_seconds_by_dim: dict[int, float]


@pytest.fixture(scope="session")
def flights_data(scale: BenchScale) -> FlightsData:
    graph = synthetic_openflights(
        OpenFlightsSpec(
            num_airports=scale.airports,
            countries_per_continent=scale.countries_per_continent,
            seed=scale.seed,
        )
    )
    corpus = generate_walks(
        graph,
        RandomWalkConfig(
            walks_per_vertex=scale.of_walks,
            walk_length=scale.of_walk_length,
            seed=scale.seed,
        ),
    )
    dims = sorted(set(scale.fig9_dims) | set(scale.fig10_dims) | {50})
    vectors: dict[int, np.ndarray] = {}
    times: dict[int, float] = {}
    for dim in dims:
        cfg = V2VConfig(
            dim=dim,
            epochs=scale.of_epochs,
            seed=scale.seed,
            tol=1e-2,
            patience=2,
        )
        model = V2V(cfg)
        with Timer() as t:
            model.fit_corpus(corpus)
        vectors[dim] = model.vectors
        times[dim] = t.seconds
    return FlightsData(
        graph=graph,
        continents=graph.vertex_labels("continent"),
        countries=graph.vertex_labels("country"),
        vectors_by_dim=vectors,
        train_seconds_by_dim=times,
    )


def emit(
    name: str,
    records: list[ExperimentRecord],
    rendered: str,
    results_dir: Path,
) -> None:
    """Print a report and persist it (txt + csv) under results/."""
    from repro.bench.harness import write_records_csv

    print(f"\n{'=' * 72}\n{rendered}\n{'=' * 72}")
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
    write_records_csv(records, results_dir / f"{name}.csv")
