"""Ablation: constrained-walk variants (Section II-A).

Builds graphs where the constraint carries the community signal and
shows the constrained walk recovers it while the unconstrained walk
cannot:

- weighted: topology is a uniform noisy graph; only edge *weights* mark
  the communities. Weighted walks must beat uniform walks.
- vertex-weighted: walking toward heavy vertices concentrates contexts.
- temporal: time-respecting walks on a request network (validity checked
  in the example; here we measure corpus composition).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig, WalkMode
from repro.bench.harness import ExperimentRecord, format_table
from repro.graph.core import EdgeList, Graph
from repro.ml import KMeans, pairwise_precision_recall


def weighted_community_graph(n=200, groups=4, seed=0):
    """Dense uniform topology; weights 20× stronger inside communities."""
    rng = np.random.default_rng(seed)
    size = n // groups
    membership = np.repeat(np.arange(groups), size)
    iu, ju = np.triu_indices(n, k=1)
    keep = rng.random(iu.shape[0]) < 0.08
    src, dst = iu[keep], ju[keep]
    w = np.where(membership[src] == membership[dst], 20.0, 1.0)
    g = Graph(n, EdgeList(src.astype(np.int64), dst.astype(np.int64), w))
    g.set_vertex_labels("community", membership)
    return g


def run(scale) -> list[ExperimentRecord]:
    records = []
    g = weighted_community_graph(seed=scale.seed)
    truth = g.vertex_labels("community")
    for mode in (WalkMode.UNIFORM, WalkMode.WEIGHTED):
        cfg = V2VConfig(
            dim=24,
            walks_per_vertex=scale.walks_per_vertex,
            walk_length=scale.walk_length,
            epochs=scale.epochs,
            tol=1e-2,
            patience=2,
            seed=scale.seed,
            walk_mode=mode,
        )
        model = V2V(cfg).fit(g)
        labels = KMeans(4, n_init=20, seed=scale.seed).fit_predict(model.vectors)
        p, r = pairwise_precision_recall(truth, labels)
        records.append(
            ExperimentRecord(
                params={"constraint": mode.value},
                values={"precision": p, "recall": r},
            )
        )

    # Vertex-weighted: heavy vertices are visited proportionally more.
    rng = np.random.default_rng(scale.seed)
    vw = np.where(np.arange(100) < 10, 10.0, 1.0)
    gv = Graph(
        100,
        [(i, j) for i in range(100) for j in range(i + 1, min(i + 6, 100))],
        vertex_weights=vw,
    )
    from repro.walks.engine import RandomWalkConfig, generate_walks

    heavy_share = {}
    for mode in (WalkMode.UNIFORM, WalkMode.VERTEX_WEIGHTED):
        corpus = generate_walks(
            gv,
            RandomWalkConfig(
                walks_per_vertex=5, walk_length=30, seed=scale.seed, mode=mode
            ),
        )
        counts = corpus.token_counts()
        heavy_share[mode] = counts[:10].sum() / counts.sum()
        records.append(
            ExperimentRecord(
                params={"constraint": f"visits/{mode.value}"},
                values={"heavy_vertex_token_share": float(heavy_share[mode])},
            )
        )
    return records


def test_ablation_constraints(benchmark, scale, results_dir):
    records = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    rendered = format_table(
        records,
        title=f"Ablation — constrained walk variants [scale={scale.name}]",
    )
    emit("ablation_constraints", records, rendered, results_dir)

    by_constraint = {r.params["constraint"]: r.values for r in records}
    # Weight-encoded communities: invisible to uniform, visible to weighted.
    assert (
        by_constraint["weighted"]["precision"]
        > by_constraint["uniform"]["precision"] + 0.1
    )
    # Vertex-weighted walks visit heavy vertices more often.
    assert (
        by_constraint["visits/vertex_weighted"]["heavy_vertex_token_share"]
        > by_constraint["visits/uniform"]["heavy_vertex_token_share"]
    )
