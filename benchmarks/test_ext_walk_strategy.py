"""Extension: walk strategy — V2V's uniform walk vs node2vec (p, q).

Related work (§VI) contrasts V2V with node2vec's biased second-order
walks. This bench runs both on the same graph/budget: community
detection quality across a small (p, q) grid. Expected: on a planted-
partition graph all strategies succeed at strong α — the paper's uniform
walk is not leaving quality on the table for this task — while extreme
outward bias (q ≪ 1) can dilute community signal at weak α."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig, WalkMode
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml import KMeans, pairwise_precision_recall

GRID = (
    ("uniform", None, None),
    ("node2vec", 1.0, 1.0),
    ("node2vec", 0.25, 4.0),   # BFS-ish: stay local
    ("node2vec", 4.0, 0.25),   # DFS-ish: push outward
)


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = min(scale.alphas)
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    records = []
    for mode, p, q in GRID:
        cfg = V2VConfig(
            dim=32,
            walks_per_vertex=scale.walks_per_vertex,
            walk_length=scale.walk_length,
            epochs=scale.epochs,
            tol=1e-2,
            patience=2,
            seed=scale.seed,
            walk_mode=WalkMode.NODE2VEC if mode == "node2vec" else WalkMode.UNIFORM,
            p=p if p is not None else 1.0,
            q=q if q is not None else 1.0,
        )
        with Timer() as t:
            model = V2V(cfg).fit(graph)
        labels = KMeans(scale.groups, n_init=20, seed=scale.seed).fit_predict(
            model.vectors
        )
        prec, rec = pairwise_precision_recall(truth, labels)
        records.append(
            ExperimentRecord(
                params={"strategy": mode, "p": p or 1.0, "q": q or 1.0},
                values={"precision": prec, "recall": rec, "seconds": t.seconds},
            )
        )
    return records


def test_ext_walk_strategy(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Extension — uniform vs node2vec walks at alpha={min(scale.alphas)} "
            f"[scale={scale.name}]"
        ),
    )
    emit("ext_walk_strategy", records, rendered, results_dir)

    by = {
        (r.params["strategy"], r.params["p"], r.params["q"]): r.values
        for r in records
    }
    # The paper's uniform walk is competitive with neutral node2vec.
    assert (
        by[("uniform", 1.0, 1.0)]["precision"]
        >= by[("node2vec", 1.0, 1.0)]["precision"] - 0.05
    )
    # All strategies must find structure.
    for values in by.values():
        assert values["precision"] > 0.7
