"""Extension: principled parameter selection (paper §VII open question).

Runs the unsupervised dimension selector and the walk-budget search on
the community benchmark and checks they land in the regime the
supervised sweeps (Figs 5-7 and the walk-budget ablation) found to be
sufficient — i.e. the procedures answer the paper's open question
without ever seeing ground truth."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.core.selection import select_dimension, select_walk_budget
from repro.ml import KMeans, pairwise_precision_recall
from repro.core.model import V2V


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = sorted(scale.alphas)[len(scale.alphas) // 2]
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    base = V2VConfig(
        walks_per_vertex=scale.walks_per_vertex,
        walk_length=scale.walk_length,
        epochs=scale.epochs,
        tol=1e-2,
        patience=2,
        seed=scale.seed,
    )
    records = []

    with Timer() as t_dim:
        best_dim, dim_scores = select_dimension(
            graph, dims=(8, 32, 128), k=scale.groups, config=base, seed=scale.seed
        )
    for s in dim_scores:
        records.append(
            ExperimentRecord(
                params={"stage": "dimension", "candidate": s.dim},
                values={"criterion_score": s.score, "train_s": s.train_seconds},
            )
        )
    records.append(
        ExperimentRecord(
            params={"stage": "dimension", "candidate": "chosen"},
            values={"criterion_score": float(best_dim), "train_s": t_dim.seconds},
        )
    )

    with Timer() as t_budget:
        budget, steps = select_walk_budget(
            graph,
            walk_length=scale.walk_length,
            start=1,
            max_walks_per_vertex=16,
            stability_threshold=0.5,
            dim=best_dim,
            seed=scale.seed,
        )
    for s in steps:
        records.append(
            ExperimentRecord(
                params={"stage": "budget", "candidate": s.walks_per_vertex},
                values={
                    "criterion_score": (
                        0.0
                        if np.isnan(s.overlap_with_previous)
                        else s.overlap_with_previous
                    ),
                    "tokens": float(s.tokens),
                },
            )
        )
    records.append(
        ExperimentRecord(
            params={"stage": "budget", "candidate": "chosen"},
            values={"criterion_score": float(budget), "train_s": t_budget.seconds},
        )
    )

    # Validate the unsupervised choice against ground truth.
    chosen_cfg = V2VConfig(
        **{**base.__dict__, "dim": best_dim, "walks_per_vertex": budget}
    )
    model = V2V(chosen_cfg).fit(graph)
    labels = KMeans(scale.groups, n_init=20, seed=scale.seed).fit_predict(
        model.vectors
    )
    p, r = pairwise_precision_recall(truth, labels)
    records.append(
        ExperimentRecord(
            params={"stage": "validation", "candidate": f"dim={best_dim},t={budget}"},
            values={"precision": p, "recall": r},
        )
    )
    return records


def test_ext_selection(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title="Extension — unsupervised parameter selection [scale=" + scale.name + "]",
    )
    emit("ext_selection", records, rendered, results_dir)

    validation = next(r for r in records if r.params["stage"] == "validation")
    # Parameters chosen without labels must still solve the task.
    assert validation.values["precision"] > 0.9
    assert validation.values["recall"] > 0.9
