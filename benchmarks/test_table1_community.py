"""Table I: community detection — V2V (10-d) vs CNM vs Girvan–Newman.

Paper's columns per α: V2V precision / recall / training time / clustering
time; CNM precision / recall / runtime; GN precision / recall / runtime.

Expected shape (paper): CNM and GN are (near-)exact; V2V averages ≈0.95
precision / ≈0.99 recall; V2V *clustering* takes milliseconds while the
graph algorithms take orders of magnitude longer — and the graph
algorithms' runtime grows with α (edge count) while V2V training time
shrinks.

Known deviation (documented in EXPERIMENTS.md): the paper benchmarked
SNAP's CNM build, which took 464–11693 s at n = 1000; an efficient CNM is
far faster, so here only Girvan–Newman exhibits the "hours vs
milliseconds" gap. The V2V-vs-GN ratio and all accuracy shapes hold.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, _v2v_config
from repro import V2V
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.community import cnm_communities, girvan_newman_communities
from repro.ml import KMeans, pairwise_precision_recall


def run_table1(scale, community_graphs) -> list[ExperimentRecord]:
    records = []
    for alpha, graph in community_graphs.items():
        truth = graph.vertex_labels("community")

        model = V2V(_v2v_config(scale, scale.table1_dim))
        with Timer() as t_train:
            model.fit(graph)
        with Timer() as t_cluster:
            km = KMeans(
                scale.groups, n_init=scale.kmeans_restarts, seed=scale.seed
            ).fit(model.vectors)
        v2v_p, v2v_r = pairwise_precision_recall(truth, km.labels)

        with Timer() as t_cnm:
            cnm = cnm_communities(graph, target_communities=scale.groups)
        cnm_p, cnm_r = pairwise_precision_recall(truth, cnm)

        with Timer() as t_gn:
            gn = girvan_newman_communities(
                graph,
                target_communities=scale.groups,
                sample_sources=scale.gn_sample_sources,
                seed=scale.seed,
            )
        gn_p, gn_r = pairwise_precision_recall(truth, gn)

        records.append(
            ExperimentRecord(
                params={"alpha": alpha},
                values={
                    "v2v_precision": v2v_p,
                    "v2v_recall": v2v_r,
                    "v2v_train_s": t_train.seconds,
                    "v2v_cluster_s": t_cluster.seconds,
                    "cnm_precision": cnm_p,
                    "cnm_recall": cnm_r,
                    "cnm_s": t_cnm.seconds,
                    "gn_precision": gn_p,
                    "gn_recall": gn_r,
                    "gn_s": t_gn.seconds,
                },
            )
        )
    return records


def test_table1(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run_table1, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Table I — community detection, V2V dim={scale.table1_dim}, "
            f"n={scale.n}, k-means restarts={scale.kmeans_restarts} "
            f"[scale={scale.name}]"
        ),
    )
    emit("table1_community", records, rendered, results_dir)

    # --- shape assertions -------------------------------------------------
    v2v_p = np.asarray([r.values["v2v_precision"] for r in records])
    v2v_r = np.asarray([r.values["v2v_recall"] for r in records])
    gn_p = np.asarray([r.values["gn_precision"] for r in records])
    cluster_t = np.asarray([r.values["v2v_cluster_s"] for r in records])
    gn_t = np.asarray([r.values["gn_s"] for r in records])

    # V2V accuracy high but graph algorithms at least comparable.
    assert v2v_p.mean() > 0.85
    assert v2v_r.mean() > 0.85
    assert gn_p.mean() >= v2v_p.mean() - 0.1
    # Clustering is orders of magnitude faster than Girvan–Newman.
    assert np.all(cluster_t < gn_t)
    # GN runtime grows with alpha (edge count), the paper's scaling claim.
    assert gn_t[-1] > gn_t[0]
