"""Extension: which problems do embeddings solve? (paper §I and §VII).

The paper asserts in its introduction that the embedding "captures
certain aspects of the global structure" (communities) but that "we
cannot exactly find the 1-hop neighbors for a given vertex, and there is
not much reason to expect this representation to help identify shortest
paths". §VII lists characterizing the solvable problem class as open
work. This bench measures all three claims on one embedding:

- community detection — pairwise F1 (expected: high);
- 1-hop neighbor retrieval — precision@degree of cosine-nearest
  vertices against the true adjacency list (expected: far from exact,
  but above chance because neighbors share communities);
- shortest-path estimation — Spearman correlation between embedding
  distance and BFS hop distance (expected: moderate at best, driven by
  the community block structure rather than path geometry).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, _v2v_config
from repro import V2V
from repro.bench.harness import ExperimentRecord, format_table
from repro.graph.traversal import shortest_path_lengths
from repro.ml import KMeans, pairwise_f1


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    def ranks(x):
        order = np.argsort(x, kind="stable")
        r = np.empty_like(order, dtype=np.float64)
        r[order] = np.arange(x.shape[0])
        return r

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    return float((ra * rb).sum() / denom) if denom else 0.0


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = sorted(scale.alphas)[len(scale.alphas) // 2]
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    model = V2V(_v2v_config(scale, 32)).fit(graph)
    x = model.vectors
    xn = x / np.linalg.norm(x, axis=1, keepdims=True)
    sims = xn @ xn.T
    np.fill_diagonal(sims, -np.inf)

    # --- community detection ------------------------------------------
    labels = KMeans(scale.groups, n_init=20, seed=scale.seed).fit_predict(x)
    community_f1 = pairwise_f1(truth, labels)

    # --- 1-hop neighbor retrieval --------------------------------------
    degrees = graph.out_degrees()
    hits = total = 0
    for v in range(graph.n):
        d = int(degrees[v])
        if d == 0:
            continue
        top = np.argpartition(-sims[v], d - 1)[:d]
        hits += np.isin(top, graph.neighbors(v)).sum()
        total += d
    neighbor_precision = hits / total
    neighbor_chance = degrees.mean() / (graph.n - 1)

    # --- shortest-path estimation --------------------------------------
    rng = np.random.default_rng(scale.seed)
    sources = rng.choice(graph.n, size=min(40, graph.n), replace=False)
    hop = shortest_path_lengths(graph, sources=sources)
    emb_dist = np.linalg.norm(
        x[sources][:, None, :] - x[None, :, :], axis=2
    )
    mask = hop > 0  # skip self and unreachable
    path_spearman = _spearman(hop[mask].astype(float), emb_dist[mask])

    return [
        ExperimentRecord(
            params={"task": "community_detection"},
            values={"score": community_f1, "baseline": 1.0 / scale.groups},
        ),
        ExperimentRecord(
            params={"task": "one_hop_retrieval"},
            values={
                "score": float(neighbor_precision),
                "baseline": float(neighbor_chance),
            },
        ),
        ExperimentRecord(
            params={"task": "shortest_path_spearman"},
            values={"score": path_spearman, "baseline": 0.0},
        ),
    ]


def test_ext_characterization(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            "Extension — task characterization: what the embedding is "
            f"(not) good for [scale={scale.name}]"
        ),
    )
    emit("ext_characterization", records, rendered, results_dir)

    by = {r.params["task"]: r.values for r in records}
    # Global structure: excellent.
    assert by["community_detection"]["score"] > 0.9
    # 1-hop neighbors: not exact (the paper's claim) ...
    assert by["one_hop_retrieval"]["score"] < 0.9
    # ... though above chance (neighbors share communities).
    assert (
        by["one_hop_retrieval"]["score"]
        > by["one_hop_retrieval"]["baseline"]
    )
    # Shortest paths: correlation exists via block structure but is far
    # from the rank-1 correspondence a distance oracle would need.
    assert by["shortest_path_spearman"]["score"] < 0.95
