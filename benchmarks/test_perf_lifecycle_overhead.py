"""PR 6 perf guard: cooperative cancel checks cost < 1% of the hot loop.

Run lifecycle control threads a ``scope.check()`` poll through the
serial trainer's batch loop — once per batch, never per example. The
guard mirrors ``test_perf_obs_overhead``: measure the real per-epoch
wall time of a dense training run (which already contains the live
check calls), microbench the exact check the loop executes against a
fully-armed scope (token *and* deadline present — the worst case), and
assert ``check_cost × batches_per_epoch / epoch_seconds`` stays under
the ISSUE's 1% budget. Bitwise identity of a run with and without an
armed (never-cancelled) scope is asserted alongside: lifecycle polling
must not touch the RNG or float streams.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.core.trainer import TrainConfig, train_embeddings
from repro.datasets.synthetic import community_benchmark
from repro.resilience.lifecycle import (
    CancellationToken,
    Deadline,
    cancel_scope,
    current_cancel_scope,
)
from repro.walks.engine import RandomWalkConfig, generate_walks

OVERHEAD_BUDGET = 0.01  # the ISSUE's < 1% guard
MICROBENCH_ITERS = 200_000


def run(scale) -> tuple[list[ExperimentRecord], float]:
    graph = community_benchmark(
        0.5, n=scale.n, groups=scale.groups, inter_edges=scale.inter_edges,
        seed=scale.seed,
    )
    corpus = generate_walks(
        graph,
        RandomWalkConfig(
            walks_per_vertex=scale.walks_per_vertex,
            walk_length=scale.walk_length,
            seed=scale.seed,
        ),
    )
    config = TrainConfig(
        dim=scale.table1_dim, epochs=scale.epochs, seed=scale.seed,
        early_stop=False,
    )
    batches_per_epoch = max(
        1, int(np.ceil(corpus.num_examples(config.window) / config.batch_size))
    )

    # The shipped path (ambient NULL_SCOPE): min-of-3 against noise.
    plain_seconds = []
    plain_vectors = None
    for _ in range(3):
        with Timer() as t:
            plain_vectors = train_embeddings(corpus, config).vectors
        plain_seconds.append(t.seconds)
    epoch_seconds = min(plain_seconds) / config.epochs

    # Armed scope (token + deadline live, never tripped): same numbers.
    with cancel_scope(CancellationToken(), Deadline(3600.0)):
        with Timer() as t:
            armed_vectors = train_embeddings(corpus, config).vectors
    armed_seconds = t.seconds
    np.testing.assert_array_equal(plain_vectors, armed_vectors)

    # Microbench the exact per-batch poll against the worst-case scope.
    with cancel_scope(CancellationToken(), Deadline(3600.0)):
        scope = current_cancel_scope()
        start = time.perf_counter()
        for _ in range(MICROBENCH_ITERS):
            scope.check()
        check_seconds = (time.perf_counter() - start) / MICROBENCH_ITERS
    overhead_fraction = (
        check_seconds * batches_per_epoch / max(epoch_seconds, 1e-12)
    )

    records = [
        ExperimentRecord(
            params={"path": "ambient NULL_SCOPE (default)"},
            values={
                "train_seconds": min(plain_seconds),
                "epoch_seconds": epoch_seconds,
            },
        ),
        ExperimentRecord(
            params={"path": "armed token+deadline"},
            values={
                "train_seconds": armed_seconds,
                "epoch_seconds": armed_seconds / config.epochs,
            },
        ),
        ExperimentRecord(
            params={"path": "scope.check() / batch"},
            values={
                "check_seconds": check_seconds,
                "batches_per_epoch": batches_per_epoch,
                "overhead_fraction": overhead_fraction,
            },
        ),
    ]
    return records, overhead_fraction


def test_perf_lifecycle_overhead(benchmark, scale, results_dir):
    records, overhead_fraction = benchmark.pedantic(
        run, args=(scale,), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"PR 6 — lifecycle cancel-check overhead on the dense trainer "
            f"[scale={scale.name}]"
        ),
    )
    emit("perf_lifecycle_overhead", records, rendered, results_dir)
    assert overhead_fraction < OVERHEAD_BUDGET, (
        f"cancel checks cost {overhead_fraction:.2%} of an epoch, "
        f"budget is {OVERHEAD_BUDGET:.0%}"
    )
