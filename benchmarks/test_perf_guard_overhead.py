"""PR 9 perf guard: resource guardrails cost < 1% of a training epoch.

The pressure guard touches a run in exactly two places: one
:func:`~repro.resilience.guard.preflight` footprint estimate before the
first stage, and one watchdog ``poll_once()`` (a /proc read + two
``statvfs`` calls) every ``interval`` seconds on a daemon thread. The
hot loops only read a plain int (``_STATE.level``), which the PR 7
bench already prices at nothing.

The guard mirrors ``test_perf_lifecycle_overhead``: measure the real
per-epoch wall time of a dense run, microbench both guard entry points,
and assert the stolen fraction — ``poll_cost / interval`` (the daemon
competes for the same core) plus the one-shot preflight charged fully
to a single epoch — stays under 1%. Bitwise identity of a run executed
under a live, never-breaching watchdog is asserted alongside: sampling
must not touch the RNG or float streams.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.core.trainer import TrainConfig, train_embeddings
from repro.datasets.synthetic import community_benchmark
from repro.obs.recorder import Recorder, use
from repro.pipeline import ExecutionContext
from repro.resilience.guard import (
    PressureWatchdog,
    ResourceBudget,
    preflight,
    reset_guard,
)
from repro.walks.engine import RandomWalkConfig, generate_walks

OVERHEAD_BUDGET = 0.01  # the ISSUE's < 1% guard
POLL_ITERS = 2_000
PREFLIGHT_ITERS = 2_000

#: A budget no sane container breaches: the watchdog runs its full
#: sampling path but never escalates.
HUGE = ResourceBudget(memory_bytes=1 << 50, disk_bytes=1 << 50)


def run(scale, results_dir) -> tuple[list[ExperimentRecord], float]:
    graph = community_benchmark(
        0.5, n=scale.n, groups=scale.groups, inter_edges=scale.inter_edges,
        seed=scale.seed,
    )
    walk_cfg = RandomWalkConfig(
        walks_per_vertex=scale.walks_per_vertex,
        walk_length=scale.walk_length,
        seed=scale.seed,
    )
    corpus = generate_walks(graph, walk_cfg)
    config = TrainConfig(
        dim=scale.table1_dim, epochs=scale.epochs, seed=scale.seed,
        early_stop=False,
    )

    # The shipped path (no budget armed): min-of-3 against noise.
    plain_seconds = []
    plain_vectors = None
    for _ in range(3):
        with Timer() as t:
            plain_vectors = train_embeddings(corpus, config).vectors
        plain_seconds.append(t.seconds)
    epoch_seconds = min(plain_seconds) / config.epochs

    # Same run under a live watchdog sampling aggressively but never
    # breaching: identical bits, and the wall time for the record.
    reset_guard()
    try:
        fast = ResourceBudget(
            memory_bytes=1 << 50, disk_bytes=1 << 50, interval=0.02
        )
        with use(Recorder()):
            with PressureWatchdog(fast, checkpoint_dir=results_dir):
                with Timer() as t:
                    guarded_vectors = train_embeddings(corpus, config).vectors
        guarded_seconds = t.seconds
        np.testing.assert_array_equal(plain_vectors, guarded_vectors)

        # Microbench one watchdog tick: /proc RSS read, two statvfs
        # calls, gauge updates, pressure-record append.
        dog = PressureWatchdog(HUGE, checkpoint_dir=results_dir)
        with use(Recorder()):
            start = time.perf_counter()
            for _ in range(POLL_ITERS):
                dog.poll_once()
            poll_seconds = (time.perf_counter() - start) / POLL_ITERS
    finally:
        reset_guard()

    # Microbench the one-shot preflight estimate over the real configs.
    ctx = ExecutionContext(workers=1, budget=HUGE)
    stages = [SimpleNamespace(config=walk_cfg), SimpleNamespace(config=config)]
    with use(Recorder()):
        start = time.perf_counter()
        for _ in range(PREFLIGHT_ITERS):
            preflight(ctx, stages, graph)
        preflight_seconds = (time.perf_counter() - start) / PREFLIGHT_ITERS

    # Worst-case accounting: the daemon steals poll_cost/interval of the
    # core, and the whole preflight lands inside one epoch.
    poll_fraction = poll_seconds / HUGE.interval
    preflight_fraction = preflight_seconds / max(epoch_seconds, 1e-12)
    overhead_fraction = poll_fraction + preflight_fraction

    records = [
        ExperimentRecord(
            params={"path": "no budget (default)"},
            values={
                "train_seconds": min(plain_seconds),
                "epoch_seconds": epoch_seconds,
            },
        ),
        ExperimentRecord(
            params={"path": "armed watchdog @20ms"},
            values={
                "train_seconds": guarded_seconds,
                "epoch_seconds": guarded_seconds / config.epochs,
            },
        ),
        ExperimentRecord(
            params={"path": "watchdog poll_once()"},
            values={
                "poll_seconds": poll_seconds,
                "poll_fraction": poll_fraction,
            },
        ),
        ExperimentRecord(
            params={"path": "preflight estimate"},
            values={
                "preflight_seconds": preflight_seconds,
                "preflight_fraction": preflight_fraction,
                "overhead_fraction": overhead_fraction,
            },
        ),
    ]
    return records, overhead_fraction


def test_perf_guard_overhead(benchmark, scale, results_dir):
    records, overhead_fraction = benchmark.pedantic(
        run, args=(scale, results_dir), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"PR 9 — resource-guard overhead on the dense trainer "
            f"[scale={scale.name}]"
        ),
    )
    emit("perf_guard_overhead", records, rendered, results_dir)
    assert overhead_fraction < OVERHEAD_BUDGET, (
        f"resource guard costs {overhead_fraction:.2%} of an epoch, "
        f"budget is {OVERHEAD_BUDGET:.0%}"
    )
