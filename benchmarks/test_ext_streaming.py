"""Extension: streaming trainer memory profile.

The paper's walk budget (t = ℓ = 1000) implies ~10¹⁰ context slots if
materialized — hundreds of GB. The streaming trainer bounds peak memory
by chunked context extraction + a shuffle buffer. This bench measures
actual peak allocations (tracemalloc, which numpy feeds) for the batch
vs streaming paths on the same corpus and verifies the quality is
unchanged."""

from __future__ import annotations

import tracemalloc

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.core.trainer import TrainConfig, train_embeddings
from repro.datasets.synthetic import community_benchmark
from repro.ml import KMeans, pairwise_f1
from repro.walks.engine import RandomWalkConfig, generate_walks


def run(scale) -> list[ExperimentRecord]:
    graph = community_benchmark(
        0.5,
        n=scale.n,
        groups=scale.groups,
        inter_edges=scale.inter_edges,
        seed=scale.seed,
    )
    truth = graph.vertex_labels("community")
    # A long-walk corpus exaggerates the materialization cost.
    corpus = generate_walks(
        graph,
        RandomWalkConfig(walks_per_vertex=10, walk_length=100, seed=scale.seed),
    )
    records = []
    for streaming, stream_rows in ((False, 0), (True, 128)):
        cfg = TrainConfig(
            dim=32,
            epochs=3,
            seed=scale.seed,
            early_stop=False,
            streaming=streaming,
            stream_rows=max(stream_rows, 1),
        )
        tracemalloc.start()
        with Timer() as t:
            result = train_embeddings(corpus, cfg)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        labels = KMeans(scale.groups, n_init=10, seed=scale.seed).fit_predict(
            result.vectors
        )
        records.append(
            ExperimentRecord(
                params={
                    "mode": "streaming" if streaming else "batch",
                    "stream_rows": stream_rows,
                },
                values={
                    "peak_mb": peak / 1e6,
                    "train_s": t.seconds,
                    "f1": pairwise_f1(truth, labels),
                },
            )
        )
    return records


def test_ext_streaming(benchmark, scale, results_dir):
    records = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    rendered = format_table(
        records,
        title=(
            f"Extension — batch vs streaming trainer memory "
            f"(walks=10×100, dim=32) [scale={scale.name}]"
        ),
    )
    emit("ext_streaming", records, rendered, results_dir)

    by = {r.params["mode"]: r.values for r in records}
    # Streaming caps peak memory well below full materialization.
    assert by["streaming"]["peak_mb"] < by["batch"]["peak_mb"]
    # Quality parity.
    assert by["streaming"]["f1"] > by["batch"]["f1"] - 0.1
    assert by["streaming"]["f1"] > 0.85
