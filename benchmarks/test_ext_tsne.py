"""Extension: t-SNE vs PCA for embedding visualization (§IV).

The paper names t-SNE alongside PCA as a principled projection but only
shows PCA figures. This bench projects the same flight embeddings both
ways and compares continent separation — t-SNE typically yields the
visually tighter clusters at the cost of far more compute."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml.tsne import TSNE
from repro.viz.projection import pca_projection, projection_to_csv, separation_ratio

TSNE_DIM = 50
MAX_POINTS = 400  # exact t-SNE is O(n²); subsample for the bench


def run(scale, flights, results_dir) -> list[ExperimentRecord]:
    rng = np.random.default_rng(scale.seed)
    vectors = flights.vectors_by_dim[TSNE_DIM]
    continents = flights.continents
    if vectors.shape[0] > MAX_POINTS:
        idx = rng.choice(vectors.shape[0], MAX_POINTS, replace=False)
        vectors, continents = vectors[idx], continents[idx]

    records = []
    with Timer() as t_pca:
        pca_proj = pca_projection(vectors, 2)
    records.append(
        ExperimentRecord(
            params={"method": "pca"},
            values={
                "separation_ratio": separation_ratio(pca_proj, continents),
                "seconds": t_pca.seconds,
            },
        )
    )
    with Timer() as t_tsne:
        tsne_proj = TSNE(
            2, perplexity=25, n_iter=400, seed=scale.seed
        ).fit_transform(vectors)
    records.append(
        ExperimentRecord(
            params={"method": "tsne"},
            values={
                "separation_ratio": separation_ratio(tsne_proj, continents),
                "seconds": t_tsne.seconds,
            },
        )
    )
    projection_to_csv(
        tsne_proj, continents, results_dir / "ext_tsne_projection.csv",
        label_name="continent",
    )
    return records


def test_ext_tsne(benchmark, scale, flights_data, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, flights_data, results_dir), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Extension — PCA vs t-SNE projection of flight embeddings, "
            f"dim={TSNE_DIM} [scale={scale.name}]"
        ),
    )
    emit("ext_tsne", records, rendered, results_dir)

    by = {r.params["method"]: r.values for r in records}
    # Both produce visible continent structure; t-SNE costs far more.
    assert by["pca"]["separation_ratio"] > 0.8
    assert by["tsne"]["separation_ratio"] > 0.8
    assert by["tsne"]["seconds"] > by["pca"]["seconds"]
