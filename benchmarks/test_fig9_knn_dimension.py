"""Fig 9: k-NN country-prediction accuracy vs embedding dimension.

Paper shape: accuracy rises from low dimensions, peaks around 40-70
(best ≈0.90 at dim 50, k = 3), then declines at large dimensions —
overfitting a fixed walk corpus. All dimensions are trained on *the
same* walks, exactly as in Section V.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, format_series
from repro.ml import cross_validate_knn

FIG9_KS = (1, 3, 5)


def run_fig9(scale, flights) -> list[ExperimentRecord]:
    records = []
    for k in FIG9_KS:
        for dim in scale.fig9_dims:
            acc = cross_validate_knn(
                flights.vectors_by_dim[dim],
                flights.countries,
                k=k,
                metric="cosine",
                n_splits=scale.cv_folds,
                repeats=scale.cv_repeats,
                seed=scale.seed,
            )
            records.append(
                ExperimentRecord(
                    params={"k": k, "dim": dim}, values={"accuracy": acc}
                )
            )
    return records


def test_fig9(benchmark, scale, flights_data, results_dir):
    records = benchmark.pedantic(
        run_fig9, args=(scale, flights_data), rounds=1, iterations=1
    )
    rendered = format_series(
        "dim",
        records,
        series_key="k",
        value="accuracy",
        title=(
            f"Fig 9 — country k-NN accuracy vs dimension, "
            f"airports={scale.airports} [scale={scale.name}]"
        ),
    )
    emit("fig9_knn_dimension", records, rendered, results_dir)

    k3 = sorted(
        ((r.params["dim"], r.values["accuracy"]) for r in records if r.params["k"] == 3)
    )
    dims = [d for d, _ in k3]
    accs = np.asarray([a for _, a in k3])
    best_dim = dims[int(np.argmax(accs))]
    # Peak at a moderate dimension: strictly above the smallest dim...
    assert accs.max() > accs[0] + 0.01
    # ...and the largest dimension does not beat the peak (decline side).
    assert accs[-1] <= accs.max() + 1e-9
    assert best_dim < dims[-1]
    # Headline accuracy comparable to the paper's 85-90% band.
    assert accs.max() > 0.75
