"""Extension: multi-process walk generation (the IPDPSW angle).

Measures walk-corpus generation across worker counts. The point is
correctness-at-scale and the measured overhead/throughput trade — at
small graph sizes process startup dominates, so the assertion only
requires that parallel output is complete and equivalent in
distributional terms, with timings reported for the record."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.datasets.synthetic import community_benchmark
from repro.walks.engine import RandomWalkConfig, generate_walks

WORKER_COUNTS = (1, 2, 4)


def run(scale) -> list[ExperimentRecord]:
    graph = community_benchmark(
        0.5,
        n=scale.n,
        groups=scale.groups,
        inter_edges=scale.inter_edges,
        seed=scale.seed,
    )
    cfg = RandomWalkConfig(
        walks_per_vertex=max(scale.walks_per_vertex, 10),
        walk_length=max(scale.walk_length, 60),
        seed=scale.seed,
    )
    records = []
    reference_counts = None
    for workers in WORKER_COUNTS:
        with Timer() as t:
            corpus = generate_walks(graph, cfg, workers=workers)
        counts = corpus.token_counts()
        if reference_counts is None:
            reference_counts = counts
        # Distributional equivalence: token-frequency correlation with
        # the serial corpus (same walk statistics, different streams).
        corr = float(np.corrcoef(reference_counts, counts)[0, 1])
        records.append(
            ExperimentRecord(
                params={"workers": workers},
                values={
                    "seconds": t.seconds,
                    "walks": float(corpus.num_walks),
                    "tokens": float(corpus.num_tokens),
                    "freq_corr_vs_serial": corr,
                },
            )
        )
    return records


def test_ext_parallel_walks(benchmark, scale, results_dir):
    records = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    rendered = format_table(
        records,
        title=f"Extension — parallel walk generation [scale={scale.name}]",
    )
    emit("ext_parallel_walks", records, rendered, results_dir)

    walks = {r.params["workers"]: r.values["walks"] for r in records}
    # Every worker count produces the complete corpus.
    assert len(set(walks.values())) == 1
    for r in records:
        # High but not perfect: different seed streams sample different
        # walks; the visit-frequency profile must still agree.
        assert r.values["freq_corr_vs_serial"] > 0.8
