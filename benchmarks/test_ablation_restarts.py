"""Ablation: k-means restart count (the paper repeats Lloyd 100×).

Measures solution quality (inertia, pairwise precision) and cost across
n_init ∈ {1, 10, 100} on one fixed embedding: how much do the paper's
100 restarts actually buy?"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml import KMeans, pairwise_precision_recall

RESTARTS = (1, 10, 100)
ABLATION_DIM = 50


def run(scale, cells) -> list[ExperimentRecord]:
    alpha = min(scale.alphas)
    cell = next(
        c for c in cells if c.alpha == alpha and c.dim == ABLATION_DIM
    )
    records = []
    for n_init in RESTARTS:
        with Timer() as t:
            result = KMeans(
                scale.groups, n_init=n_init, seed=scale.seed
            ).fit(cell.vectors)
        p, r = pairwise_precision_recall(cell.truth, result.labels)
        records.append(
            ExperimentRecord(
                params={"n_init": n_init},
                values={
                    "inertia": result.inertia,
                    "precision": p,
                    "recall": r,
                    "cluster_s": t.seconds,
                },
            )
        )
    return records


def test_ablation_restarts(benchmark, scale, alpha_dim_sweep, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, alpha_dim_sweep), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Ablation — k-means restarts at alpha={min(scale.alphas)}, "
            f"dim={ABLATION_DIM} [scale={scale.name}]"
        ),
    )
    emit("ablation_restarts", records, rendered, results_dir)

    inertias = [r.values["inertia"] for r in records]
    # More restarts never worsen the k-means objective.
    assert inertias[2] <= inertias[0] + 1e-9
    assert inertias[2] <= inertias[1] + 1e-9
