"""Fig 8: PCA 2-D / 3-D visualization of OpenFlights embeddings.

The paper embeds the directed route graph with no geographic features
and shows airports grouping by continent in the top-2 and top-3
principal components. We regenerate both projections (CSV + ASCII) and
quantify the grouping: continent separation ratio and silhouette, and —
the operational version of "the grouping is real" — a k-NN continent
classifier on the projected coordinates far exceeding the majority-class
baseline.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, format_table
from repro.ml import cross_validate_knn, silhouette_score
from repro.viz.ascii import render_scatter
from repro.viz.projection import pca_projection, projection_to_csv, separation_ratio

FIG8_DIM = 50


def run_fig8(flights, results_dir):
    vectors = flights.vectors_by_dim[FIG8_DIM]
    continents = flights.continents
    records = []
    scatter = ""
    for ncomp, tag in ((2, "fig8a_pca2d"), (3, "fig8b_pca3d")):
        proj = pca_projection(vectors, ncomp)
        projection_to_csv(
            proj, continents, results_dir / f"{tag}.csv", label_name="continent"
        )
        majority = max(
            (continents == c).mean() for c in set(continents.tolist())
        )
        acc = cross_validate_knn(
            proj, continents, k=3, metric="euclidean", n_splits=5, seed=0
        )
        records.append(
            ExperimentRecord(
                params={"components": ncomp},
                values={
                    "separation_ratio": separation_ratio(proj, continents),
                    "knn_acc_on_projection": acc,
                    "majority_baseline": float(majority),
                },
            )
        )
        if ncomp == 2:
            scatter = render_scatter(proj, continents, width=72, height=22)
    full_sil = silhouette_score(vectors, continents)
    records.append(
        ExperimentRecord(
            params={"components": "full"},
            values={"silhouette_full_space": full_sil},
        )
    )
    return records, scatter


def test_fig8(benchmark, scale, flights_data, results_dir):
    records, scatter = benchmark.pedantic(
        run_fig8, args=(flights_data, results_dir), rounds=1, iterations=1
    )
    rendered = (
        format_table(
            records,
            title=(
                f"Fig 8 — OpenFlights PCA, dim={FIG8_DIM}, "
                f"airports={scale.airports} [scale={scale.name}]"
            ),
        )
        + "\n\n"
        + scatter
    )
    emit("fig8_openflights_pca", records, rendered, results_dir)

    for r in records[:2]:
        # Continents recoverable from the projection alone, well above
        # the majority-class baseline — the figure's "well grouped" claim.
        assert (
            r.values["knn_acc_on_projection"]
            > r.values["majority_baseline"] + 0.15
        )
        assert r.values["separation_ratio"] > 0.8
