"""Fig 5: pairwise precision of V2V community detection vs α, one curve
per embedding dimension.

Paper shape: precision in roughly [0.70, 1.0], increasing with α for
every dimension (stronger communities are easier to find).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, format_series


def extract(cells) -> list[ExperimentRecord]:
    return [
        ExperimentRecord(
            params={"dim": c.dim, "alpha": c.alpha},
            values={"precision": c.precision},
        )
        for c in sorted(cells, key=lambda c: (c.dim, c.alpha))
    ]


def test_fig5(benchmark, scale, alpha_dim_sweep, results_dir):
    records = benchmark.pedantic(
        extract, args=(alpha_dim_sweep,), rounds=1, iterations=1
    )
    rendered = format_series(
        "alpha",
        records,
        series_key="dim",
        value="precision",
        title=(
            f"Fig 5 — precision vs alpha per dimension, n={scale.n} "
            f"[scale={scale.name}]"
        ),
    )
    emit("fig5_precision", records, rendered, results_dir)

    by_dim: dict[int, list[tuple[float, float]]] = {}
    for r in records:
        by_dim.setdefault(r.params["dim"], []).append(
            (r.params["alpha"], r.values["precision"])
        )
    for dim, series in by_dim.items():
        series.sort()
        values = np.asarray([v for _, v in series])
        # Increasing trend: the strongest-α point beats the weakest-α
        # point (allowing per-point noise in between), and the weakest
        # point still clears the paper's 0.70 floor.
        assert values[-1] >= values[0] - 0.02, f"dim={dim}"
        assert values.min() > 0.60, f"dim={dim}"
        assert values[-1] > 0.9, f"dim={dim}"
