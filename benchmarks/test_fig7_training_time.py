"""Fig 7: V2V training time and accuracy vs α at the largest dimension.

Paper shape (600 dimensions): as α grows, training time *decreases*
(strong structure → the loss plateaus sooner → early stopping kicks in)
while precision and recall stay high / increase. We assert the ends of
both trends; the convergence mechanism itself is unit-tested in
tests/core/test_trainer.py.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, format_series, format_table


def extract(cells, top_dim) -> list[ExperimentRecord]:
    return [
        ExperimentRecord(
            params={"alpha": c.alpha},
            values={
                "train_seconds": c.train_seconds,
                "epochs_run": float(c.epochs_run),
                "precision": c.precision,
                "recall": c.recall,
            },
        )
        for c in sorted(
            (c for c in cells if c.dim == top_dim), key=lambda c: c.alpha
        )
    ]


def test_fig7(benchmark, scale, alpha_dim_sweep, results_dir):
    records = benchmark.pedantic(
        extract, args=(alpha_dim_sweep, scale.top_dim), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Fig 7 — training time & accuracy vs alpha, dim={scale.top_dim} "
            f"[scale={scale.name}]"
        ),
    )
    emit("fig7_training_time", records, rendered, results_dir)

    epochs = np.asarray([r.values["epochs_run"] for r in records])
    precision = np.asarray([r.values["precision"] for r in records])
    # Strong structure converges at least as fast as weak structure
    # (epoch count is the seconds-robust proxy for training time).
    assert epochs[-1] <= epochs[0]
    assert precision[-1] >= precision[0] - 0.02
