"""Extension: heterogeneous benchmark (LFR-style graphs).

The paper's planted partition has uniform degrees and equal community
sizes — unrealistically clean. This bench sweeps the LFR mixing
parameter μ on power-law-degree graphs with power-law community sizes
and compares V2V + k-means (k = true count), the k-free hybrid
(kNN + Louvain), and graph-native Louvain. Expected: quality degrades
with μ for all methods; V2V remains competitive on the realistic
degree structure."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.community import louvain_communities
from repro.graph.lfr import lfr_benchmark
from repro.ml import KMeans, knn_graph, pairwise_f1

MUS = (0.1, 0.3, 0.5)
LFR_N = 400
LFR_DIM = 32


def run(scale) -> list[ExperimentRecord]:
    records = []
    for mu in MUS:
        graph = lfr_benchmark(LFR_N, mu=mu, seed=scale.seed)
        truth = graph.vertex_labels("community")
        k = int(truth.max()) + 1
        cfg = V2VConfig(
            dim=LFR_DIM,
            walks_per_vertex=scale.walks_per_vertex,
            walk_length=scale.walk_length,
            epochs=scale.epochs,
            tol=1e-2,
            patience=2,
            seed=scale.seed,
        )
        with Timer() as t:
            model = V2V(cfg).fit(graph)
        kmeans_labels = KMeans(k, n_init=20, seed=scale.seed).fit_predict(
            model.vectors
        )
        hybrid_labels = louvain_communities(
            knn_graph(model.vectors, k=10), seed=scale.seed
        )
        louvain_labels = louvain_communities(graph, seed=scale.seed)
        records.append(
            ExperimentRecord(
                params={"mu": mu, "communities": k, "edges": graph.num_edges},
                values={
                    "v2v_kmeans_f1": pairwise_f1(truth, kmeans_labels),
                    "v2v_hybrid_f1": pairwise_f1(truth, hybrid_labels),
                    "louvain_f1": pairwise_f1(truth, louvain_labels),
                    "train_s": t.seconds,
                },
            )
        )
    return records


def test_ext_lfr(benchmark, scale, results_dir):
    records = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    rendered = format_table(
        records,
        title=(
            f"Extension — LFR-style heterogeneous benchmark, n={LFR_N}, "
            f"dim={LFR_DIM} [scale={scale.name}]"
        ),
    )
    emit("ext_lfr", records, rendered, results_dir)

    by_mu = {r.params["mu"]: r.values for r in records}
    # Clean mixing: V2V solves the heterogeneous benchmark too.
    assert by_mu[0.1]["v2v_kmeans_f1"] > 0.7
    # Quality decreases with mixing for the V2V route.
    assert by_mu[0.5]["v2v_kmeans_f1"] <= by_mu[0.1]["v2v_kmeans_f1"] + 0.02
