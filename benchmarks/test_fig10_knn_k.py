"""Fig 10: k-NN country-prediction accuracy vs k (votes), per dimension.

Paper shape: accuracy varies mildly with k; small k (≈3) is best for
most dimensions, with a slow decline toward k = 10.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, format_series
from repro.ml import cross_validate_knn


def run_fig10(scale, flights) -> list[ExperimentRecord]:
    records = []
    for dim in scale.fig10_dims:
        for k in scale.knn_ks:
            acc = cross_validate_knn(
                flights.vectors_by_dim[dim],
                flights.countries,
                k=k,
                metric="cosine",
                n_splits=scale.cv_folds,
                repeats=scale.cv_repeats,
                seed=scale.seed,
            )
            records.append(
                ExperimentRecord(
                    params={"dim": dim, "k": k}, values={"accuracy": acc}
                )
            )
    return records


def test_fig10(benchmark, scale, flights_data, results_dir):
    records = benchmark.pedantic(
        run_fig10, args=(scale, flights_data), rounds=1, iterations=1
    )
    rendered = format_series(
        "k",
        records,
        series_key="dim",
        value="accuracy",
        title=(
            f"Fig 10 — country k-NN accuracy vs k, "
            f"airports={scale.airports} [scale={scale.name}]"
        ),
    )
    emit("fig10_knn_k", records, rendered, results_dir)

    for dim in scale.fig10_dims:
        series = sorted(
            (r.params["k"], r.values["accuracy"])
            for r in records
            if r.params["dim"] == dim
        )
        accs = np.asarray([a for _, a in series])
        ks = [k for k, _ in series]
        best_k = ks[int(np.argmax(accs))]
        # Small-k optimum, as in the paper (best k=3 there).
        assert best_k <= 6, f"dim={dim}: best k {best_k}"
        # Variation with k is mild (no cliff), matching the figure.
        assert accs.max() - accs.min() < 0.15, f"dim={dim}"
