"""Fig 4: PCA scatter of V2V embeddings (α = 0.1, dim = 50, k = 10),
with k-means centroids and cluster boundaries.

The figure shows that even at the weakest community strength the vectors
separate into 10 clusters visible in a 2-D projection. We regenerate the
projected coordinates + centroids (CSV) and assert the separation
quantitatively: positive Voronoi margins for most points and a
separation ratio > 1 under the *ground-truth* coloring.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, format_table
from repro.viz.ascii import render_scatter
from repro.viz.projection import (
    cluster_boundaries,
    pca_projection,
    projection_to_csv,
    separation_ratio,
)

FIG4_DIM = 50


def run_fig4(cells, results_dir, k):
    alpha = min(c.alpha for c in cells)  # the weakest community strength
    cell = next(c for c in cells if c.alpha == alpha and c.dim == FIG4_DIM)
    proj = pca_projection(cell.vectors, 2)
    # The figure's centroids/boundaries live in the 2-D projection: the
    # k-means cells drawn there are cells of the projected points.
    from repro.ml import KMeans

    labels_2d = KMeans(k, n_init=100, seed=0).fit_predict(proj)
    centroids, margins = cluster_boundaries(proj, labels_2d)
    ratio_truth = separation_ratio(proj, cell.truth)
    ratio_clusters = separation_ratio(proj, cell.labels)
    projection_to_csv(
        proj, cell.truth, results_dir / "fig4_pca_points.csv",
        label_name="community",
    )
    projection_to_csv(
        centroids,
        np.arange(centroids.shape[0]),
        results_dir / "fig4_pca_centroids.csv",
        label_name="cluster",
    )
    record = ExperimentRecord(
        params={"alpha": alpha, "dim": FIG4_DIM},
        values={
            "separation_ratio_truth": ratio_truth,
            "separation_ratio_clusters": ratio_clusters,
            "positive_margin_fraction": float((margins > 0).mean()),
        },
    )
    scatter = render_scatter(proj, cell.truth, width=70, height=20)
    return record, scatter, proj, cell


def test_fig4(benchmark, scale, alpha_dim_sweep, results_dir):
    record, scatter, proj, cell = benchmark.pedantic(
        run_fig4,
        args=(alpha_dim_sweep, results_dir, scale.groups),
        rounds=1,
        iterations=1,
    )
    rendered = (
        format_table([record], title=f"Fig 4 — PCA of embeddings [scale={scale.name}]")
        + "\n\n"
        + scatter
    )
    emit("fig4_pca", [record], rendered, results_dir)

    # The clusters the paper draws exist: most points sit inside their
    # own k-means cell, and true communities are separated in 2-D.
    assert record.values["positive_margin_fraction"] > 0.9
    assert record.values["separation_ratio_truth"] > 1.0
