"""PR 2 perf bench: Hogwild training and shared-memory walk transfer.

Measures end-to-end training throughput (epochs/sec) across trainer
worker counts on one fixed walk corpus, plus walk-generation throughput
(walks/sec) with the zero-copy shared-memory handoff. The point of
record is the measured numbers, not a pass/fail speedup gate: on
multicore hardware 2 workers land ≥ the serial rate, but CI runners and
single-core containers legitimately show parallel slowdown (process
startup + interleaving), so the assertions check correctness invariants
— completeness, finite vectors, workers=1 bitwise identity — and leave
throughput to the emitted table / BENCH_PR2.json.

``scripts/bench_report.py`` runs the same measurement standalone and
writes the JSON artifact CI uploads.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.core.trainer import TrainConfig, train_embeddings
from repro.datasets.synthetic import community_benchmark
from repro.walks.engine import RandomWalkConfig, generate_walks

WORKER_COUNTS = (1, 2, 4)


def run(scale) -> list[ExperimentRecord]:
    graph = community_benchmark(
        0.5,
        n=scale.n,
        groups=scale.groups,
        inter_edges=scale.inter_edges,
        seed=scale.seed,
    )
    walk_cfg = RandomWalkConfig(
        walks_per_vertex=scale.walks_per_vertex,
        walk_length=scale.walk_length,
        seed=scale.seed,
    )
    records = []

    # Walk stage: serial vs shared-memory parallel transfer.
    for workers in WORKER_COUNTS:
        with Timer() as t:
            corpus = generate_walks(graph, walk_cfg, workers=workers)
        records.append(
            ExperimentRecord(
                params={"stage": "walks", "workers": workers},
                values={
                    "seconds": t.seconds,
                    "walks_per_sec": corpus.num_walks / max(t.seconds, 1e-9),
                },
            )
        )

    # Train stage: one corpus, same config, varying Hogwild worker count.
    corpus = generate_walks(graph, walk_cfg)
    serial_vectors = None
    serial_seconds = None
    for workers in WORKER_COUNTS:
        cfg = TrainConfig(
            dim=scale.table1_dim,
            epochs=scale.epochs,
            seed=scale.seed,
            early_stop=False,
            workers=workers,
        )
        with Timer() as t:
            result = train_embeddings(corpus, cfg)
        assert result.epochs_run == cfg.epochs
        assert np.all(np.isfinite(result.vectors))
        if workers == 1:
            serial_vectors = result.vectors
            serial_seconds = t.seconds
        records.append(
            ExperimentRecord(
                params={"stage": "train", "workers": workers},
                values={
                    "seconds": t.seconds,
                    "epochs_per_sec": result.epochs_run / max(t.seconds, 1e-9),
                    "speedup_vs_serial": serial_seconds / max(t.seconds, 1e-9),
                    "final_loss": result.loss_history[-1],
                },
            )
        )

    # Determinism invariant rides along: dispatching through the
    # workers=1 Hogwild path must reproduce the serial trainer bitwise.
    check = train_embeddings(
        corpus,
        TrainConfig(
            dim=scale.table1_dim,
            epochs=scale.epochs,
            seed=scale.seed,
            early_stop=False,
            workers=1,
        ),
    )
    np.testing.assert_array_equal(check.vectors, serial_vectors)
    return records


def test_perf_parallel_training(benchmark, scale, results_dir):
    records = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    rendered = format_table(
        records,
        title=f"PR 2 — Hogwild training / shm walk transfer [scale={scale.name}]",
    )
    emit("perf_parallel_training", records, rendered, results_dir)

    train = [r for r in records if r.params["stage"] == "train"]
    assert {r.params["workers"] for r in train} == set(WORKER_COUNTS)
    # Hogwild must stay in the serial loss regime at every worker count.
    losses = {r.params["workers"]: r.values["final_loss"] for r in train}
    for workers in WORKER_COUNTS[1:]:
        assert losses[workers] <= losses[1] * 1.5
