"""Extension: scaling with graph size (paper §VII — "experiments on
larger scale networks").

Sweeps the benchmark graph size at fixed per-vertex density and measures
wall-clock for each pipeline stage (walks, training, clustering) and
each graph-native baseline. Expected shapes: V2V stages grow roughly
linearly in n (token count is t·ℓ·n; k-means is O(nkd) per iteration);
Girvan–Newman grows much faster, which is the scalability argument the
paper makes for the embedding approach."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.community import cnm_communities, girvan_newman_communities, louvain_communities
from repro.datasets.synthetic import community_benchmark
from repro.ml import KMeans
from repro.walks.engine import RandomWalkConfig, generate_walks

SIZES = (100, 200, 400, 800)
GROUP_SIZE = 50
SCALING_ALPHA = 0.5


def run(scale) -> list[ExperimentRecord]:
    records = []
    for n in SIZES:
        groups = n // GROUP_SIZE
        graph = community_benchmark(
            SCALING_ALPHA,
            n=n,
            groups=groups,
            inter_edges=n // 5,
            seed=scale.seed,
        )
        with Timer() as t_walks:
            corpus = generate_walks(
                graph,
                RandomWalkConfig(
                    walks_per_vertex=scale.walks_per_vertex,
                    walk_length=scale.walk_length,
                    seed=scale.seed,
                ),
            )
        cfg = V2VConfig(dim=16, epochs=5, seed=scale.seed, early_stop=False)
        model = V2V(cfg)
        with Timer() as t_train:
            model.fit_corpus(corpus)
        with Timer() as t_cluster:
            KMeans(groups, n_init=10, seed=scale.seed).fit(model.vectors)
        with Timer() as t_cnm:
            cnm_communities(graph, target_communities=groups)
        with Timer() as t_louvain:
            louvain_communities(graph, seed=scale.seed)
        with Timer() as t_gn:
            girvan_newman_communities(
                graph,
                target_communities=groups,
                sample_sources=min(scale.gn_sample_sources or n, n),
                seed=scale.seed,
                max_removals=n // 2,
            )
        records.append(
            ExperimentRecord(
                params={"n": n, "edges": graph.num_edges},
                values={
                    "walks_s": t_walks.seconds,
                    "train_s": t_train.seconds,
                    "cluster_s": t_cluster.seconds,
                    "cnm_s": t_cnm.seconds,
                    "louvain_s": t_louvain.seconds,
                    "gn_s": t_gn.seconds,
                },
            )
        )
    return records


def test_ext_scaling(benchmark, scale, results_dir):
    records = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    rendered = format_table(
        records,
        title=(
            f"Extension — runtime scaling with graph size "
            f"(alpha={SCALING_ALPHA}, 50-vertex groups) [scale={scale.name}]"
        ),
    )
    emit("ext_scaling", records, rendered, results_dir)

    first, last = records[0].values, records[-1].values
    n_ratio = SIZES[-1] / SIZES[0]
    train_growth = last["train_s"] / max(first["train_s"], 1e-9)
    gn_growth = last["gn_s"] / max(first["gn_s"], 1e-9)
    # V2V training grows sub-quadratically in n; GN grows faster than V2V.
    assert train_growth < n_ratio**2
    assert gn_growth > train_growth
