"""Extension: link prediction (paper conclusion — "predicting
relationships between pairs of vertices").

Hide 30% of edges, embed the residual graph, score held-out edges vs
sampled non-edges with a logistic model over each standard pair-feature
operator. Expected: ROC AUC well above 0.5 for hadamard/L1/L2 (the
operators that encode endpoint agreement), weaker for 'average'."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, _v2v_config
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.tasks.link_prediction import link_prediction_experiment


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = sorted(scale.alphas)[len(scale.alphas) // 2]
    graph = community_graphs[alpha]
    records = []
    for operator in ("hadamard", "l1", "l2", "average"):
        with Timer() as t:
            result = link_prediction_experiment(
                graph,
                config=_v2v_config(scale, 32),
                operator=operator,
                test_fraction=0.3,
                seed=scale.seed,
            )
        records.append(
            ExperimentRecord(
                params={"operator": operator},
                values={"auc": result.auc, "seconds": t.seconds},
            )
        )
    return records


def test_ext_link_prediction(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=f"Extension — link prediction ROC AUC by operator [scale={scale.name}]",
    )
    emit("ext_link_prediction", records, rendered, results_dir)

    by_op = {r.params["operator"]: r.values["auc"] for r in records}
    assert by_op["hadamard"] > 0.8
    assert by_op["l1"] > 0.8
    assert by_op["l2"] > 0.8
