"""Extension: robustness to missing/incorrect data (paper §VII).

The paper conjectures "we can also expect the V2V approach to be less
sensitive to errors in data than the pure graph-based approaches. This
aspect needs further investigation." This bench performs that
investigation: perturb the benchmark graph (drop a fraction of edges /
rewire a fraction to random endpoints), rerun V2V k-means and CNM, and
compare pairwise-F1 degradation relative to each method's clean-graph
score."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, _v2v_config
from repro import V2V
from repro.bench.harness import ExperimentRecord, format_table
from repro.community import cnm_communities
from repro.graph.perturb import drop_edges, rewire_edges
from repro.ml import KMeans, pairwise_f1

LEVELS = (0.0, 0.2, 0.4)


def _scores(scale, graph, truth) -> tuple[float, float]:
    model = V2V(_v2v_config(scale, 32)).fit(graph)
    labels = KMeans(scale.groups, n_init=20, seed=scale.seed).fit_predict(
        model.vectors
    )
    v2v = pairwise_f1(truth, labels)
    cnm = pairwise_f1(
        truth, cnm_communities(graph, target_communities=scale.groups)
    )
    return v2v, cnm


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = sorted(scale.alphas)[len(scale.alphas) // 2]
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    records = []
    for kind, perturb in (("drop", drop_edges), ("rewire", rewire_edges)):
        for level in LEVELS:
            noisy = perturb(graph, level, seed=scale.seed)
            v2v, cnm = _scores(scale, noisy, truth)
            records.append(
                ExperimentRecord(
                    params={"perturbation": kind, "level": level},
                    values={"v2v_f1": v2v, "cnm_f1": cnm},
                )
            )
    return records


def test_ext_robustness(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            "Extension — robustness to missing/incorrect edges "
            f"(V2V dim=32 vs CNM) [scale={scale.name}]"
        ),
    )
    emit("ext_robustness", records, rendered, results_dir)

    by = {
        (r.params["perturbation"], r.params["level"]): r.values for r in records
    }
    # Clean-graph baselines must be strong for both methods.
    assert by[("drop", 0.0)]["v2v_f1"] > 0.9
    # Under 40% edge dropout V2V retains most of its F1 (the §VII claim).
    v2v_retention = by[("drop", 0.4)]["v2v_f1"] / by[("drop", 0.0)]["v2v_f1"]
    assert v2v_retention > 0.7
    # And V2V's retention is at least as good as CNM's under the
    # combined-error (rewire) model.
    cnm_ret = by[("rewire", 0.4)]["cnm_f1"] / max(by[("rewire", 0.0)]["cnm_f1"], 1e-9)
    v2v_ret = by[("rewire", 0.4)]["v2v_f1"] / max(by[("rewire", 0.0)]["v2v_f1"], 1e-9)
    assert v2v_ret >= cnm_ret - 0.1
