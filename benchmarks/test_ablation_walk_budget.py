"""Ablation: walk budget (t walks × length ℓ) vs quality and cost.

The paper sets t = ℓ = 1000 without justification and its conclusion
lists principled parameter selection as open. This bench shows the
quality/cost curve: detection quality saturates at a small fraction of
the paper's token budget (which is why the scaled benches are valid)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml import KMeans, pairwise_precision_recall
from repro.walks.engine import RandomWalkConfig, generate_walks

BUDGETS = ((1, 10), (2, 20), (6, 30), (10, 60))
ABLATION_DIM = 24


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = sorted(scale.alphas)[len(scale.alphas) // 2]
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    records = []
    for t_walks, length in BUDGETS:
        corpus = generate_walks(
            graph,
            RandomWalkConfig(
                walks_per_vertex=t_walks, walk_length=length, seed=scale.seed
            ),
        )
        cfg = V2VConfig(
            dim=ABLATION_DIM, epochs=scale.epochs, tol=1e-2, patience=2,
            seed=scale.seed,
        )
        model = V2V(cfg)
        with Timer() as t:
            model.fit_corpus(corpus)
        labels = KMeans(scale.groups, n_init=20, seed=scale.seed).fit_predict(
            model.vectors
        )
        p, r = pairwise_precision_recall(truth, labels)
        records.append(
            ExperimentRecord(
                params={"walks_per_vertex": t_walks, "walk_length": length},
                values={
                    "tokens": float(corpus.num_tokens),
                    "precision": p,
                    "recall": r,
                    "train_s": t.seconds,
                },
            )
        )
    return records


def test_ablation_walk_budget(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=f"Ablation — walk budget (t × ℓ), dim={ABLATION_DIM} [scale={scale.name}]",
    )
    emit("ablation_walk_budget", records, rendered, results_dir)

    # Quality saturates: the largest budget is no better than the
    # mid budget by a wide margin, while costing several times more.
    precisions = [r.values["precision"] for r in records]
    assert precisions[-1] <= precisions[-2] + 0.05
    assert precisions[-1] > 0.9
    # More tokens cost more time.
    times = [r.values["train_s"] for r in records]
    assert times[-1] > times[0]
