"""Extension: consensus detection across seeds.

Quantifies single-run seed variance of the V2V detector at the weakest
community strength and how much a small consensus ensemble recovers —
plus the per-pair confidence signal only the ensemble provides."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.community.consensus import consensus_communities
from repro.ml import KMeans, pairwise_f1

CONSENSUS_RUNS = 5


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = min(scale.alphas)
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    base = V2VConfig(
        dim=24,
        walks_per_vertex=scale.walks_per_vertex,
        walk_length=scale.walk_length,
        epochs=scale.epochs,
        tol=1e-2,
        patience=2,
    )
    records = []
    with Timer() as t:
        result = consensus_communities(
            graph, scale.groups, runs=CONSENSUS_RUNS, config=base,
            n_init=20, seed=scale.seed,
        )
    run_f1 = [pairwise_f1(truth, m) for m in result.run_memberships]
    for i, f1 in enumerate(run_f1):
        records.append(
            ExperimentRecord(
                params={"what": f"single_run_{i}"}, values={"f1": f1}
            )
        )
    records.append(
        ExperimentRecord(
            params={"what": "consensus"},
            values={
                "f1": pairwise_f1(truth, result.membership),
                "pair_confidence": result.mean_pair_confidence,
                "seconds": t.seconds,
            },
        )
    )
    return records


def test_ext_consensus(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Extension — consensus over {CONSENSUS_RUNS} seeds at "
            f"alpha={min(scale.alphas)} [scale={scale.name}]"
        ),
    )
    emit("ext_consensus", records, rendered, results_dir)

    singles = [
        r.values["f1"] for r in records if r.params["what"].startswith("single")
    ]
    consensus = next(r for r in records if r.params["what"] == "consensus")
    # Consensus is at least as good as the median single run.
    assert consensus.values["f1"] >= float(np.median(singles)) - 0.02
    assert consensus.values["f1"] > 0.85
