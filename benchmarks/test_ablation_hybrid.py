"""Ablation: clustering route in embedding space.

The paper clusters V2V vectors with k-means. Alternatives on the *same*
embedding: Louvain on the k-NN similarity graph (no k needed), and
label propagation on that graph. This quantifies how much of Table I's
quality comes from the embedding vs from the k-means choice."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, _v2v_config
from repro import V2V
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.community import label_propagation_communities, louvain_communities
from repro.ml import KMeans, knn_graph, pairwise_precision_recall

HYBRID_DIM = 32


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = sorted(scale.alphas)[len(scale.alphas) // 2]
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    model = V2V(_v2v_config(scale, HYBRID_DIM)).fit(graph)
    vectors = model.vectors

    records = []

    with Timer() as t:
        labels = KMeans(scale.groups, n_init=scale.kmeans_restarts, seed=scale.seed).fit_predict(vectors)
    p, r = pairwise_precision_recall(truth, labels)
    records.append(
        ExperimentRecord(
            params={"route": "kmeans", "needs_k": True},
            values={"precision": p, "recall": r, "communities": float(labels.max() + 1), "seconds": t.seconds},
        )
    )

    with Timer() as t:
        sim_graph = knn_graph(vectors, k=10)
        labels = louvain_communities(sim_graph, seed=scale.seed)
    p, r = pairwise_precision_recall(truth, labels)
    records.append(
        ExperimentRecord(
            params={"route": "knn+louvain", "needs_k": False},
            values={"precision": p, "recall": r, "communities": float(labels.max() + 1), "seconds": t.seconds},
        )
    )

    with Timer() as t:
        sim_graph = knn_graph(vectors, k=10, mutual=True)
        labels = label_propagation_communities(sim_graph, seed=scale.seed)
    p, r = pairwise_precision_recall(truth, labels)
    records.append(
        ExperimentRecord(
            params={"route": "knn+labelprop", "needs_k": False},
            values={"precision": p, "recall": r, "communities": float(labels.max() + 1), "seconds": t.seconds},
        )
    )
    return records


def test_ablation_hybrid(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Ablation — clustering route on one embedding, dim={HYBRID_DIM} "
            f"[scale={scale.name}]"
        ),
    )
    emit("ablation_hybrid", records, rendered, results_dir)

    by = {r.params["route"]: r.values for r in records}
    assert by["kmeans"]["precision"] > 0.9
    # The k-free hybrid route must also recover the structure (and the
    # right community count, within slack).
    assert by["knn+louvain"]["precision"] > 0.8
    assert abs(by["knn+louvain"]["communities"] - scale.groups) <= scale.groups
