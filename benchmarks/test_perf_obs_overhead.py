"""PR 3 perf guard: disabled observability costs < 3% of the dense hot loop.

The instrumented dense trainer touches the telemetry surface once per
*epoch* (fetch the recorder, open a ``train.epoch`` span, one
``rec.enabled`` branch) and never per batch, so the disabled-path cost
is a handful of no-op calls against an epoch of real numpy work. The
guard measures both sides directly:

- the per-epoch wall time of a real dense training run with
  observability disabled (the shipped default — this *is* the hot loop
  as users run it), and
- the per-iteration cost of the exact no-op instrumentation sequence
  the epoch loop executes,

and asserts the ratio stays under the ISSUE's 3% budget with a wide
margin (measured ~0.001%). An end-to-end enabled-vs-disabled comparison
rides along as an emitted record — wall-clock deltas between two runs on
a shared CI box are noise-bound, so the point of record is the measured
numbers, and the hard assertion stays on the deterministic microbench.
Bitwise identity of the two runs IS asserted: telemetry must not touch
the RNG or float streams.

PR 8 adds the profiler/resources surface to the same guard: with
profiling and resource accounting *disabled* (the default), the entire
per-stage cost added to ``Pipeline.execute`` is one
``_stage_obs_begin`` call that returns immediately off ``rec.enabled``
plus two ``is not None`` checks — budgeted separately at < 1% of an
epoch, measured per *stage* (stages are epoch-scale or longer).
"""

from __future__ import annotations

import io
import time

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.core.trainer import TrainConfig, train_embeddings
from repro.datasets.synthetic import community_benchmark
from repro.obs.recorder import NULL_RECORDER, ObsConfig, current_recorder, session
from repro.walks.engine import RandomWalkConfig, generate_walks

OVERHEAD_BUDGET = 0.03  # the ISSUE's < 3% guard
#: PR 8: profiler + resource accounting disabled-path surface per stage.
STAGE_SURFACE_BUDGET = 0.01
MICROBENCH_ITERS = 50_000


def _epoch_instrumentation_once(epoch: int) -> None:
    """The exact telemetry surface one dense epoch executes when disabled."""
    rec = current_recorder()
    with rec.span("train.epoch", epoch=epoch) as span:
        if rec.enabled:  # pragma: no cover - disabled path
            span.annotate(loss=0.0)


def _stage_surface_once(pipeline) -> None:
    """The disabled profiler/resources surface one pipeline stage pays."""
    rec = current_recorder()
    before, profiler = pipeline._stage_obs_begin(rec, "train")
    if profiler is not None:  # pragma: no cover - disabled path
        profiler.stop()
    if before is not None:  # pragma: no cover - disabled path
        pass
    if rec.live is not None:  # pragma: no cover - disabled path
        pass


def run(scale) -> tuple[list[ExperimentRecord], float]:
    graph = community_benchmark(
        0.5, n=scale.n, groups=scale.groups, inter_edges=scale.inter_edges,
        seed=scale.seed,
    )
    corpus = generate_walks(
        graph,
        RandomWalkConfig(
            walks_per_vertex=scale.walks_per_vertex,
            walk_length=scale.walk_length,
            seed=scale.seed,
        ),
    )
    config = TrainConfig(
        dim=scale.table1_dim, epochs=scale.epochs, seed=scale.seed,
        early_stop=False,
    )

    # Disabled path (the default): min-of-3 to shave scheduler noise.
    assert current_recorder() is NULL_RECORDER
    disabled_seconds = []
    disabled_vectors = None
    for _ in range(3):
        with Timer() as t:
            disabled_vectors = train_embeddings(corpus, config).vectors
        disabled_seconds.append(t.seconds)
    epoch_seconds = min(disabled_seconds) / config.epochs

    # Enabled path: live registry + tracer, quiet sinks, no file I/O.
    with session(ObsConfig(log_level="error"), stream=io.StringIO()):
        with Timer() as t:
            enabled_vectors = train_embeddings(corpus, config).vectors
    enabled_seconds = t.seconds

    # Telemetry never touches the RNG or float streams.
    np.testing.assert_array_equal(disabled_vectors, enabled_vectors)

    # Microbench the disabled per-epoch instrumentation surface.
    start = time.perf_counter()
    for i in range(MICROBENCH_ITERS):
        _epoch_instrumentation_once(i)
    per_epoch_overhead = (time.perf_counter() - start) / MICROBENCH_ITERS
    overhead_fraction = per_epoch_overhead / max(epoch_seconds, 1e-12)

    # Microbench the disabled profiler/resources per-stage surface.
    from repro.pipeline import Pipeline, TrainStage

    pipeline = Pipeline([TrainStage(config)])
    start = time.perf_counter()
    for _ in range(MICROBENCH_ITERS):
        _stage_surface_once(pipeline)
    per_stage_overhead = (time.perf_counter() - start) / MICROBENCH_ITERS
    stage_surface_fraction = per_stage_overhead / max(epoch_seconds, 1e-12)

    records = [
        ExperimentRecord(
            params={"path": "disabled (default)"},
            values={
                "train_seconds": min(disabled_seconds),
                "epoch_seconds": epoch_seconds,
            },
        ),
        ExperimentRecord(
            params={"path": "enabled (registry+tracer)"},
            values={
                "train_seconds": enabled_seconds,
                "epoch_seconds": enabled_seconds / config.epochs,
            },
        ),
        ExperimentRecord(
            params={"path": "noop surface / epoch"},
            values={
                "train_seconds": per_epoch_overhead,
                "overhead_fraction": overhead_fraction,
            },
        ),
        ExperimentRecord(
            params={"path": "profiler+resources off / stage"},
            values={
                "train_seconds": per_stage_overhead,
                "overhead_fraction": stage_surface_fraction,
            },
        ),
    ]
    return records, overhead_fraction, stage_surface_fraction


def test_perf_obs_overhead(benchmark, scale, results_dir):
    records, overhead_fraction, stage_surface_fraction = benchmark.pedantic(
        run, args=(scale,), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"PR 3 — observability overhead on the dense trainer "
            f"[scale={scale.name}]"
        ),
    )
    emit("perf_obs_overhead", records, rendered, results_dir)
    assert overhead_fraction < OVERHEAD_BUDGET, (
        f"disabled telemetry costs {overhead_fraction:.2%} of an epoch, "
        f"budget is {OVERHEAD_BUDGET:.0%}"
    )
    assert stage_surface_fraction < STAGE_SURFACE_BUDGET, (
        f"disabled profiler/resources surface costs "
        f"{stage_surface_fraction:.2%} of an epoch per stage, "
        f"budget is {STAGE_SURFACE_BUDGET:.0%}"
    )
