"""Ablation: context window size n (paper default n = 5).

Shows detection quality across window sizes on the same corpus — the
paper fixes n = 5 and never revisits it; this bench demonstrates the
choice is safe (flat response in a broad band)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml import KMeans, pairwise_precision_recall
from repro.walks.engine import RandomWalkConfig, generate_walks

WINDOWS = (2, 5, 10)
ABLATION_DIM = 24


def run(scale, community_graphs) -> list[ExperimentRecord]:
    alpha = sorted(scale.alphas)[len(scale.alphas) // 2]
    graph = community_graphs[alpha]
    truth = graph.vertex_labels("community")
    corpus = generate_walks(
        graph,
        RandomWalkConfig(
            walks_per_vertex=scale.walks_per_vertex,
            walk_length=scale.walk_length,
            seed=scale.seed,
        ),
    )
    records = []
    for window in WINDOWS:
        cfg = V2VConfig(
            dim=ABLATION_DIM, window=window, epochs=scale.epochs,
            tol=1e-2, patience=2, seed=scale.seed,
        )
        model = V2V(cfg)
        with Timer() as t:
            model.fit_corpus(corpus)
        labels = KMeans(scale.groups, n_init=20, seed=scale.seed).fit_predict(
            model.vectors
        )
        p, r = pairwise_precision_recall(truth, labels)
        records.append(
            ExperimentRecord(
                params={"window": window},
                values={"precision": p, "recall": r, "train_s": t.seconds},
            )
        )
    return records


def test_ablation_window(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=f"Ablation — context window n, dim={ABLATION_DIM} [scale={scale.name}]",
    )
    emit("ablation_window", records, rendered, results_dir)

    for r in records:
        assert r.values["precision"] > 0.85, r.params
