"""Fig 3: ForceAtlas layouts of the synthetic graphs at α ∈ {0.1, 0.5, 1.0}.

The figure's claim is visual: the 10 planted communities appear as knots
whose tightness grows with α. We regenerate the layout coordinates,
export them as CSV figure data, and quantify the claim via the
separation ratio (inter-centroid distance / within-community spread),
which must increase with α.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.datasets.synthetic import community_benchmark
from repro.viz.forceatlas import force_atlas_layout
from repro.viz.projection import projection_to_csv, separation_ratio

FIG3_ALPHAS = (0.1, 0.5, 1.0)


def run_fig3(scale, results_dir) -> list[ExperimentRecord]:
    records = []
    for alpha in FIG3_ALPHAS:
        graph = community_benchmark(
            alpha,
            n=scale.n,
            groups=scale.groups,
            inter_edges=scale.inter_edges,
            seed=scale.seed,
        )
        truth = graph.vertex_labels("community")
        with Timer() as t:
            layout = force_atlas_layout(graph, iterations=200, seed=scale.seed)
        ratio = separation_ratio(layout.positions, truth)
        projection_to_csv(
            layout.positions,
            truth,
            results_dir / f"fig3_layout_alpha{alpha}.csv",
            label_name="community",
        )
        records.append(
            ExperimentRecord(
                params={"alpha": alpha},
                values={
                    "separation_ratio": ratio,
                    "layout_seconds": t.seconds,
                    "edges": float(graph.num_edges),
                },
            )
        )
    return records


def test_fig3(benchmark, scale, results_dir):
    records = benchmark.pedantic(
        run_fig3, args=(scale, results_dir), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=f"Fig 3 — ForceAtlas layouts, n={scale.n} [scale={scale.name}]",
    )
    emit("fig3_layout", records, rendered, results_dir)

    ratios = [r.values["separation_ratio"] for r in records]
    # Communities visually separate, increasingly so with α.
    assert ratios[0] > 0.8
    assert ratios[-1] > ratios[0]
