"""Fig 6: pairwise recall of V2V community detection vs α, one curve per
embedding dimension.

Paper shape: recall in roughly [0.90, 1.0], increasing with α.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, format_series


def extract(cells) -> list[ExperimentRecord]:
    return [
        ExperimentRecord(
            params={"dim": c.dim, "alpha": c.alpha},
            values={"recall": c.recall},
        )
        for c in sorted(cells, key=lambda c: (c.dim, c.alpha))
    ]


def test_fig6(benchmark, scale, alpha_dim_sweep, results_dir):
    records = benchmark.pedantic(
        extract, args=(alpha_dim_sweep,), rounds=1, iterations=1
    )
    rendered = format_series(
        "alpha",
        records,
        series_key="dim",
        value="recall",
        title=(
            f"Fig 6 — recall vs alpha per dimension, n={scale.n} "
            f"[scale={scale.name}]"
        ),
    )
    emit("fig6_recall", records, rendered, results_dir)

    by_dim: dict[int, list[tuple[float, float]]] = {}
    for r in records:
        by_dim.setdefault(r.params["dim"], []).append(
            (r.params["alpha"], r.values["recall"])
        )
    for dim, series in by_dim.items():
        series.sort()
        values = np.asarray([v for _, v in series])
        assert values[-1] >= values[0] - 0.02, f"dim={dim}"
        assert values.min() > 0.60, f"dim={dim}"
        assert values[-1] > 0.9, f"dim={dim}"
