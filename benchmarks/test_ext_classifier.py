"""Extension: classifier choice for feature prediction (§V).

The paper concedes k-NN is "not the best accuracy classification
algorithm". This bench swaps in the from-scratch softmax regression on
the same embeddings and CV protocol: how much accuracy was left on the
table?"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml import KNNClassifier, LogisticRegression
from repro.ml.cross_validation import KFold

CLASSIFIER_DIM = 50


def _cv_accuracy(make_clf, x, y, folds, seed) -> float:
    accs = []
    for train, test in KFold(folds, seed=seed).split(x.shape[0]):
        clf = make_clf().fit(x[train], y[train])
        accs.append(float((clf.predict(x[test]) == y[test]).mean()))
    return float(np.mean(accs))


def run(scale, flights) -> list[ExperimentRecord]:
    x = flights.vectors_by_dim[CLASSIFIER_DIM]
    y = flights.countries
    records = []
    for name, make in (
        ("knn_k3_cosine", lambda: KNNClassifier(k=3, metric="cosine")),
        ("knn_k3_euclid", lambda: KNNClassifier(k=3, metric="euclidean")),
        ("logreg", lambda: LogisticRegression(max_iter=2000, lr=1.0, l2=1e-6)),
    ):
        with Timer() as t:
            acc = _cv_accuracy(make, x, y, scale.cv_folds, scale.seed)
        records.append(
            ExperimentRecord(
                params={"classifier": name},
                values={"accuracy": acc, "seconds": t.seconds},
            )
        )
    return records


def test_ext_classifier(benchmark, scale, flights_data, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, flights_data), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=(
            f"Extension — classifier comparison on country prediction, "
            f"dim={CLASSIFIER_DIM} [scale={scale.name}]"
        ),
    )
    emit("ext_classifier", records, rendered, results_dir)

    by = {r.params["classifier"]: r.values["accuracy"] for r in records}
    # Everything beats the majority baseline by a wide margin...
    for acc in by.values():
        assert acc > 0.5
    # ...and logreg is at least competitive with the paper's k-NN.
    assert by["logreg"] > by["knn_k3_cosine"] - 0.05
