"""Ablation: CBOW (the paper's objective) vs SkipGram (DeepWalk/node2vec)
on identical walk corpora, measured on community detection quality and
training cost. Section VI positions V2V's CBOW choice against the
SkipGram line of work; this bench quantifies the trade."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro import V2V, V2VConfig
from repro.bench.harness import ExperimentRecord, Timer, format_table
from repro.ml import KMeans, pairwise_precision_recall
from repro.walks.engine import RandomWalkConfig, generate_walks

ABLATION_DIM = 32


def run(scale, community_graphs) -> list[ExperimentRecord]:
    records = []
    for alpha in (min(scale.alphas), max(scale.alphas)):
        graph = community_graphs[alpha]
        truth = graph.vertex_labels("community")
        corpus = generate_walks(
            graph,
            RandomWalkConfig(
                walks_per_vertex=scale.walks_per_vertex,
                walk_length=scale.walk_length,
                seed=scale.seed,
            ),
        )
        for objective in ("cbow", "skipgram"):
            cfg = V2VConfig(
                dim=ABLATION_DIM,
                objective=objective,
                epochs=scale.epochs,
                tol=1e-2,
                patience=2,
                seed=scale.seed,
            )
            model = V2V(cfg)
            with Timer() as t:
                model.fit_corpus(corpus)
            labels = KMeans(scale.groups, n_init=20, seed=scale.seed).fit_predict(
                model.vectors
            )
            p, r = pairwise_precision_recall(truth, labels)
            records.append(
                ExperimentRecord(
                    params={"alpha": alpha, "objective": objective},
                    values={
                        "precision": p,
                        "recall": r,
                        "train_s": t.seconds,
                        "epochs": float(model.result.epochs_run),
                    },
                )
            )
    return records


def test_ablation_objective(benchmark, scale, community_graphs, results_dir):
    records = benchmark.pedantic(
        run, args=(scale, community_graphs), rounds=1, iterations=1
    )
    rendered = format_table(
        records,
        title=f"Ablation — CBOW vs SkipGram, dim={ABLATION_DIM} [scale={scale.name}]",
    )
    emit("ablation_objective", records, rendered, results_dir)

    # Both objectives must solve the strong-structure case.
    strong = [r for r in records if r.params["alpha"] == max(scale.alphas)]
    for r in strong:
        assert r.values["precision"] > 0.9, r.params
