"""Setup shim for legacy editable installs (offline environment ships
setuptools without the `wheel` package, so PEP 660 editables are
unavailable; `pip install -e .` falls back to `setup.py develop`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "V2V: Vector Embedding of a Graph and Applications — full "
        "reproduction (Nguyen & Tirthapura, IPDPSW 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
