"""SharedArray lifecycle: create/attach/cleanup, and no leaked segments."""

import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.parallel.pool import parallel_map
from repro.parallel.shm import (
    SHM_AVAILABLE,
    SharedArray,
    SharedArraySpec,
    shared_arrays,
)

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="platform has no multiprocessing.shared_memory"
)

SHM_DIR = Path("/dev/shm")


def shm_entries() -> set:
    """Names currently present in /dev/shm (empty set if unsupported)."""
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.iterdir()}


@pytest.fixture()
def no_leaks():
    """Assert the test leaves no new /dev/shm entries behind."""
    before = shm_entries()
    yield
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


class TestSharedArray:
    def test_roundtrip_from_array(self, no_leaks):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        with SharedArray.from_array(data) as shared:
            np.testing.assert_array_equal(shared.array, data)
            assert shared.owner
            assert shared.spec.shape == (3, 4)

    def test_attach_sees_owner_writes(self, no_leaks):
        with SharedArray.create((5,), np.int64) as shared:
            shared.array[:] = 7
            attached = SharedArray.attach(shared.spec)
            try:
                assert not attached.owner
                np.testing.assert_array_equal(attached.array, shared.array)
                attached.array[0] = 99
                assert shared.array[0] == 99
            finally:
                attached.close()

    def test_spec_is_picklable(self, no_leaks):
        with SharedArray.create((2, 2), np.float32) as shared:
            spec = pickle.loads(pickle.dumps(shared.spec))
            assert spec == shared.spec
            assert isinstance(spec, SharedArraySpec)
            assert spec.nbytes() == 16

    def test_destroy_is_idempotent_and_invalidates(self, no_leaks):
        shared = SharedArray.from_array(np.zeros(3))
        shared.destroy()
        shared.destroy()
        assert shared.released
        with pytest.raises(ValueError, match="released"):
            _ = shared.array

    def test_copy_outlives_segment(self, no_leaks):
        shared = SharedArray.from_array(np.arange(4))
        copy = shared.copy()
        shared.destroy()
        np.testing.assert_array_equal(copy, np.arange(4))

    def test_gc_finalizer_unlinks(self):
        before = shm_entries()
        SharedArray.create((64,), np.float64)  # dropped immediately
        import gc

        gc.collect()
        assert shm_entries() - before == set()

    def test_segment_visible_in_dev_shm_until_destroy(self):
        if not SHM_DIR.is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = shm_entries()
        shared = SharedArray.create((8,), np.int64)
        created = shm_entries() - before
        assert len(created) == 1
        shared.destroy()
        assert shm_entries() - before == set()


class TestSharedArrayScope:
    def test_scope_destroys_on_exception(self):
        before = shm_entries()
        with pytest.raises(RuntimeError, match="boom"):
            with shared_arrays() as scope:
                scope.create((16,), np.float64)
                scope.from_array(np.ones((4, 4)))
                raise RuntimeError("boom")
        assert shm_entries() - before == set()

    def test_scope_destroys_on_normal_exit(self):
        before = shm_entries()
        with shared_arrays() as scope:
            shared = scope.create((16,), np.float64)
        assert shared.released
        assert shm_entries() - before == set()


def _pool_write(args):
    spec, i = args
    shared = SharedArray.attach(spec)
    try:
        shared.array[i] = i * 10
    finally:
        shared.close()
    return i


class TestCrossProcess:
    def test_pool_workers_write_into_segment(self, no_leaks):
        with SharedArray.create((4,), np.int64) as shared:
            shared.array[:] = -1
            parallel_map(
                _pool_write, [(shared.spec, i) for i in range(4)], workers=2
            )
            np.testing.assert_array_equal(shared.array, [0, 10, 20, 30])
